//! A minimal recursive-descent JSON parser and a Chrome trace-event
//! schema validator, used to check that the observability exporters emit
//! well-formed documents. Dependency-free by design: the repository
//! hand-rolls all JSON, so the validator must not rely on the same code
//! paths it is checking.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; later duplicate keys win, as in `JSON.parse`.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// A parse or validation failure, with a byte offset where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the document (0 for schema-level failures).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(format!("unexpected byte '{}'", b as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or(JsonError {
                        message: "unterminated escape".into(),
                        offset: self.pos,
                    })?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // exporters; map lone surrogates to the
                            // replacement character like JSON.parse.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return self.err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return self.err("unescaped control character"),
                Some(_) => {
                    // Copy one UTF-8 scalar as-is.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first syntax error, or of
/// trailing garbage after the top-level value.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters after document");
    }
    Ok(value)
}

fn require_num(event: &Json, field: &str, index: usize) -> Result<(), JsonError> {
    if event.get(field).and_then(Json::as_num).is_none() {
        return Err(JsonError {
            message: format!("traceEvents[{index}] lacks numeric \"{field}\""),
            offset: 0,
        });
    }
    Ok(())
}

/// Validates a Chrome trace-event / Perfetto JSON document as produced by
/// the observability exporters: a top-level object with a `traceEvents`
/// array, every event an object with a `name` string, a one-character
/// phase `ph`, and numeric `pid`/`tid`; complete spans (`ph:"X"`) must
/// carry numeric `ts` and `dur`, instants (`ph:"i"`) numeric `ts` and a
/// scope `s` in `g`/`p`/`t`, metadata (`ph:"M"`) an `args` object.
/// Returns the number of events.
///
/// # Errors
///
/// [`JsonError`] naming the first malformed event (offset 0 for schema
/// failures, the byte offset for syntax failures).
pub fn validate_trace_event_json(text: &str) -> Result<usize, JsonError> {
    let doc = parse(text)?;
    let schema_err = |message: String| JsonError { message, offset: 0 };
    if !doc.is_obj() {
        return Err(schema_err("top level is not an object".into()));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing \"traceEvents\" array".into()))?;
    for (index, event) in events.iter().enumerate() {
        if !event.is_obj() {
            return Err(schema_err(format!("traceEvents[{index}] is not an object")));
        }
        if event.get("name").and_then(Json::as_str).is_none() {
            return Err(schema_err(format!(
                "traceEvents[{index}] lacks a \"name\" string"
            )));
        }
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_err(format!("traceEvents[{index}] lacks a \"ph\" string")))?;
        if ph.chars().count() != 1 {
            return Err(schema_err(format!(
                "traceEvents[{index}] phase \"{ph}\" is not one character"
            )));
        }
        require_num(event, "pid", index)?;
        require_num(event, "tid", index)?;
        match ph {
            "X" => {
                require_num(event, "ts", index)?;
                require_num(event, "dur", index)?;
            }
            "i" => {
                require_num(event, "ts", index)?;
                let scope = event.get("s").and_then(Json::as_str).unwrap_or("t");
                if !matches!(scope, "g" | "p" | "t") {
                    return Err(schema_err(format!(
                        "traceEvents[{index}] instant scope \"{scope}\" invalid"
                    )));
                }
            }
            "M" => {
                if !event.get("args").is_some_and(Json::is_obj) {
                    return Err(schema_err(format!(
                        "traceEvents[{index}] metadata lacks an \"args\" object"
                    )));
                }
            }
            "B" | "E" => {
                require_num(event, "ts", index)?;
            }
            "s" | "t" | "f" => {
                require_num(event, "ts", index)?;
                require_num(event, "id", index)?;
            }
            other => {
                return Err(schema_err(format!(
                    "traceEvents[{index}] unknown phase \"{other}\""
                )));
            }
        }
    }
    Ok(events.len())
}

/// Validates a telemetry time-series JSON document as produced by the
/// `hermes` telemetry exporter: a top-level object with a `time_series`
/// object carrying numeric `interval`/`cycles_per_flit`/`frames_total`,
/// a `frames` array (each frame an object with numeric
/// `index`/`start`/`end` counters, a `links` array of
/// `{link, flits, utilization_permille}` objects, a `routers` array of
/// `{router, grants, buffered}` objects and a `latency` object), plus
/// `hotspots` and `alerts` arrays. Returns the number of frames.
///
/// # Errors
///
/// [`JsonError`] naming the first schema violation (offset 0) or the
/// byte offset of a syntax failure.
pub fn validate_time_series_json(text: &str) -> Result<usize, JsonError> {
    let doc = parse(text)?;
    let schema_err = |message: String| JsonError { message, offset: 0 };
    let ts = doc
        .get("time_series")
        .filter(|v| v.is_obj())
        .ok_or_else(|| schema_err("missing \"time_series\" object".into()))?;
    for field in [
        "interval",
        "cycles_per_flit",
        "frames_total",
        "frames_evicted",
    ] {
        if ts.get(field).and_then(Json::as_num).is_none() {
            return Err(schema_err(format!("time_series lacks numeric \"{field}\"")));
        }
    }
    let frames = ts
        .get("frames")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing \"frames\" array".into()))?;
    for (index, frame) in frames.iter().enumerate() {
        for field in [
            "index",
            "start",
            "end",
            "flit_hops",
            "flits_delivered",
            "packets_sent",
            "packets_delivered",
        ] {
            if frame.get(field).and_then(Json::as_num).is_none() {
                return Err(schema_err(format!(
                    "frames[{index}] lacks numeric \"{field}\""
                )));
            }
        }
        let links = frame
            .get("links")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err(format!("frames[{index}] lacks a \"links\" array")))?;
        for (li, link) in links.iter().enumerate() {
            if link.get("link").and_then(Json::as_str).is_none()
                || link.get("flits").and_then(Json::as_num).is_none()
                || link
                    .get("utilization_permille")
                    .and_then(Json::as_num)
                    .is_none()
            {
                return Err(schema_err(format!("frames[{index}].links[{li}] malformed")));
            }
        }
        let routers = frame
            .get("routers")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err(format!("frames[{index}] lacks a \"routers\" array")))?;
        for (ri, router) in routers.iter().enumerate() {
            if router.get("router").and_then(Json::as_str).is_none()
                || router.get("grants").and_then(Json::as_num).is_none()
                || router.get("buffered").and_then(Json::as_num).is_none()
            {
                return Err(schema_err(format!(
                    "frames[{index}].routers[{ri}] malformed"
                )));
            }
        }
        let latency = frame
            .get("latency")
            .filter(|v| v.is_obj())
            .ok_or_else(|| schema_err(format!("frames[{index}] lacks a \"latency\" object")))?;
        for field in ["packets", "sum_cycles", "overflow"] {
            if latency.get(field).and_then(Json::as_num).is_none() {
                return Err(schema_err(format!(
                    "frames[{index}].latency lacks numeric \"{field}\""
                )));
            }
        }
        if latency.get("buckets").and_then(Json::as_arr).is_none() {
            return Err(schema_err(format!(
                "frames[{index}].latency lacks a \"buckets\" array"
            )));
        }
    }
    for (name, label_field) in [("hotspots", "link"), ("alerts", "link")] {
        let entries = ts
            .get(name)
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err(format!("missing \"{name}\" array")))?;
        for (index, entry) in entries.iter().enumerate() {
            if entry.get(label_field).and_then(Json::as_str).is_none()
                || entry.get("ewma_permille").and_then(Json::as_num).is_none()
            {
                return Err(schema_err(format!("{name}[{index}] malformed")));
            }
        }
    }
    Ok(frames.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5, true, null, "x\n\"y\""], "b": {"c": 3e2}}"#).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4].as_str(), Some("x\n\"y\""));
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_num(),
            Some(300.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{\"a\": 1} garbage").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn validates_a_minimal_trace_document() {
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"p"}},
            {"name":"hop","ph":"X","ts":3,"dur":2,"pid":0,"tid":1},
            {"name":"delivered","ph":"i","s":"t","ts":9,"pid":0,"tid":1}
        ]}"#;
        assert_eq!(validate_trace_event_json(doc), Ok(3));
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(validate_trace_event_json("[]").is_err());
        assert!(validate_trace_event_json("{\"traceEvents\":{}}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_trace_event_json(no_dur).is_err());
        let bad_scope = r#"{"traceEvents":[{"name":"x","ph":"i","ts":1,"s":"z","pid":0,"tid":0}]}"#;
        assert!(validate_trace_event_json(bad_scope).is_err());
        let bad_ph = r#"{"traceEvents":[{"name":"x","ph":"??","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_trace_event_json(bad_ph).is_err());
    }
}

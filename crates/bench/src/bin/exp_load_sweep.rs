//! E11 (extension) — the classic NoC saturation curve: average latency
//! versus offered load, for the paper's configuration and for the two
//! flit widths of E2. This is the standard figure behind §2.1's
//! "scalability of bandwidth" claim: below saturation latency stays near
//! the analytic minimum, then queueing blows it up.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_load_sweep`.

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{Noc, NocConfig};
use multinoc_bench::table_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E11: latency vs offered load (4x4 mesh, uniform random, 6-flit payloads)\n");
    table_row!(
        "offered (f/c/n)",
        "accepted (f/c/n)",
        "mean latency",
        "p99 latency",
        "delivered"
    );
    let cycles = 30_000u64;
    let mut previous_accepted = 0.0;
    let mut saturation = None;
    for offered in [0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40] {
        let mut noc = Noc::new(NocConfig::mesh(4, 4))?;
        let mut gen = TrafficGen::new(Pattern::Uniform, offered, 4, 77);
        for _ in 0..cycles {
            gen.pump(&mut noc)?;
            noc.step();
        }
        // Measure over the generation window only (open-loop style).
        let stats = noc.stats();
        let accepted = stats.flits_delivered as f64 / cycles as f64 / 16.0;
        table_row!(
            format!("{offered:.2}"),
            format!("{accepted:.3}"),
            format!("{:.1}", stats.mean_latency().unwrap_or(f64::NAN)),
            stats.latency_quantile(0.99).unwrap_or(0),
            stats.packets_delivered
        );
        if saturation.is_none() && offered > 0.05 && accepted < previous_accepted * 1.05 {
            saturation = Some(offered);
        }
        previous_accepted = accepted;
    }
    if let Some(at) = saturation {
        println!("\nsaturation sets in near {at:.2} flits/cycle/node — beyond it the");
        println!("accepted traffic plateaus and latency grows without bound, the");
        println!("textbook wormhole saturation behaviour.");
    }
    Ok(())
}

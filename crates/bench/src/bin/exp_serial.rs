//! E10 — §2.2/§4: the serial bottleneck. The paper chose "serial low
//! cost, low performance external communication" and notes the approach
//! "can be adapted to faster external interface protocols (USB, PCI,
//! Firewire)".
//!
//! Measures the cycle cost of loading a full 1K-word program image as a
//! function of the link speed, from the prototype's plausible baud rates
//! up to a USB-class byte channel.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_serial`.

use multinoc::host::Host;
use multinoc::serial::SerialConfig;
use multinoc::{System, PROCESSOR_1};
use multinoc_bench::table_row;

const CLOCK_HZ: f64 = 25.0e6;

fn load_time(config: SerialConfig) -> Result<u64, Box<dyn std::error::Error>> {
    let mut system = System::builder()
        .serial(config)
        .serial_at(hermes_noc::RouterAddr::new(0, 0))
        .processor_at(hermes_noc::RouterAddr::new(0, 1))
        .processor_at(hermes_noc::RouterAddr::new(1, 0))
        .memory_at(hermes_noc::RouterAddr::new(1, 1))
        .build()?;
    let mut host = Host::new().with_budget(2_000_000_000);
    host.synchronize(&mut system)?;
    let image: Vec<u16> = (0..1024u16).map(|i| i.wrapping_mul(31)).collect();
    let start = system.cycle();
    host.write_memory(&mut system, PROCESSOR_1, 0, &image)?;
    let cycles = system.cycle() - start;
    // Verify the far end actually holds the image.
    assert_eq!(system.memory(PROCESSOR_1)?.read_block(0, 1024), image);
    Ok(cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E10: loading a 1K-word (2 KiB) image over the serial link at 25 MHz\n");
    table_row!("link", "cycles/byte", "load cycles", "load time");
    let cases: [(&str, SerialConfig); 5] = [
        ("9600 baud", SerialConfig::from_baud(CLOCK_HZ, 9600.0)),
        ("115200 baud", SerialConfig::from_baud(CLOCK_HZ, 115_200.0)),
        ("921600 baud", SerialConfig::from_baud(CLOCK_HZ, 921_600.0)),
        (
            "USB-class (1 MB/s)",
            SerialConfig {
                cycles_per_byte: 25,
            },
        ),
        ("ideal byte/cycle", SerialConfig { cycles_per_byte: 1 }),
    ];
    let mut times = Vec::new();
    for (name, config) in cases {
        let cycles = load_time(config)?;
        let secs = cycles as f64 / CLOCK_HZ;
        let time = if secs >= 1.0 {
            format!("{secs:.2} s")
        } else {
            format!("{:.1} ms", secs * 1e3)
        };
        times.push(cycles);
        table_row!(name, config.cycles_per_byte, cycles, time);
    }
    assert!(times.windows(2).all(|w| w[0] > w[1]));
    println!(
        "\nconclusion: the host link, not the NoC, bounds system fill time —\n\
         the cost/performance trade the paper accepts and proposes USB/PCI to fix."
    );
    Ok(())
}

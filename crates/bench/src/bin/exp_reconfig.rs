//! E15 (extension) — §5's partial/dynamic reconfiguration claims,
//! measured: "the IP cores position be modified in execution at runtime,
//! favoring the IPs communication with improved throughput.
//! Reconfiguration can also be used to reduce system area consumption
//! through insertion and removal of IP cores on demand."
//!
//! Run with `cargo run -p multinoc-bench --bin exp_reconfig`.

use floorplan::estimate::Component;
use hermes_noc::{NocConfig, RouterAddr};
use multinoc::{System, PROCESSOR_1, PROCESSOR_2};
use multinoc_bench::table_row;
use r8::asm::assemble;

/// Cycles for P1 to finish `count` remote reads of P2's memory.
fn remote_read_time(system: &mut System, count: u16) -> Result<u64, Box<dyn std::error::Error>> {
    let base = system
        .address_map(PROCESSOR_1)?
        .window_base(PROCESSOR_2)
        .expect("peer window");
    let program = assemble(&format!(
        "XOR R0, R0, R0\nLIW R1, {base}\nLIW R3, {count}\n\
         loop: LD R2, R1, R0\nSUBI R3, 1\nJMPZD done\nJMPD loop\ndone: HALT"
    ))?;
    system
        .memory_mut(PROCESSOR_1)?
        .write_block(0, program.words());
    let start = system.cycle();
    system.activate_directly(PROCESSOR_1)?;
    system.run_until_halted(50_000_000)?;
    Ok(system.cycle() - start)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E15: dynamic reconfiguration (§5)\n");
    println!("claim 1: relocating an IP towards its communication partner");
    println!("         improves throughput (P1 at router 10 reads P2's memory)\n");
    table_row!("P2 position", "hops", "50 remote reads", "per read");
    let mut system = System::builder()
        .noc(NocConfig::mesh(4, 4))
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(1, 0))
        .processor_at(RouterAddr::new(3, 3))
        .memory_at(RouterAddr::new(3, 0))
        .build()?;
    let p1 = RouterAddr::new(1, 0);
    for position in [
        RouterAddr::new(3, 3),
        RouterAddr::new(2, 2),
        RouterAddr::new(2, 0),
    ] {
        if system.table().router_of(PROCESSOR_2) != Some(position) {
            system.relocate_ip(PROCESSOR_2, position)?;
        }
        let cycles = remote_read_time(&mut system, 50)?;
        table_row!(
            position.to_string(),
            p1.hops_to(position),
            cycles,
            format!("{:.0} cy", cycles as f64 / 50.0)
        );
    }

    println!("\nclaim 2: removing idle IP cores reduces area consumption\n");
    table_row!("configuration", "active slices", "of XC2S200E");
    let slices = |processors: u32, memories: u32| {
        4 * Component::router("r").slices
            + Component::serial("s").slices
            + processors * Component::processor("p").slices
            + memories * Component::memory("m").slices
    };
    let device = floorplan::Device::xc2s200e().slices();
    for (name, p, m) in [
        ("full system (2P + 1M)", 2u32, 1u32),
        ("P2 removed (1P + 1M)", 1, 1),
        ("P2 + memory removed", 1, 0),
    ] {
        let used = slices(p, m);
        table_row!(
            name,
            used,
            format!("{:.0}%", f64::from(used) / f64::from(device) * 100.0)
        );
    }
    // Demonstrate the removal actually happens in the live system.
    let halt = assemble("HALT")?;
    system.memory_mut(PROCESSOR_2)?.write_block(0, halt.words());
    system.activate_directly(PROCESSOR_2)?;
    system.run_until_idle(1_000_000)?;
    system.remove_ip(PROCESSOR_2)?;
    println!("\nlive removal of P2 succeeded; its node id stays reserved and");
    println!("peers' reads of its window now return 0 — a de-configured region.");
    Ok(())
}

//! Warn-only benchmark-regression triage: diffs the numeric leaves of a
//! current `BENCH_*.json` against the committed baseline and prints a
//! rate-delta table.
//!
//! Usage: `bench_compare <baseline.json> <current.json> [<baseline2>
//! <current2> ...]`
//!
//! Every numeric leaf present in both documents becomes one row keyed by
//! its JSON path (array elements are labelled by their `name`/`mesh`/
//! `workload` field when they carry one, by index otherwise). Rows whose
//! relative delta exceeds the warn threshold are flagged, and leaves
//! that appear on only one side are listed — but the exit status is
//! **always zero**: benchmark numbers are wall-clock observations of the
//! host that produced them, so a delta is a prompt for a human, never a
//! CI failure. Determinism regressions are caught elsewhere, by the
//! byte-identity assertions in the experiments themselves.

use std::collections::BTreeMap;

use multinoc_bench::json::{parse, Json};
use multinoc_bench::table_row;

/// Relative delta (in percent) above which a row is flagged.
const WARN_PCT: f64 = 10.0;

/// Flattens every numeric leaf into `path -> value`.
fn flatten(json: &Json, path: &str, out: &mut BTreeMap<String, f64>) {
    match json {
        Json::Num(n) => {
            out.insert(path.to_string(), *n);
        }
        Json::Bool(b) => {
            out.insert(path.to_string(), f64::from(u8::from(*b)));
        }
        Json::Obj(map) => {
            for (key, value) in map {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(value, &sub, out);
            }
        }
        Json::Arr(items) => {
            for (index, item) in items.iter().enumerate() {
                // Human-readable element labels where the row has one;
                // the index stays in the path so repeated labels (two
                // "2x2" points, say) never collide.
                let label = ["name", "mesh", "workload", "threads"]
                    .iter()
                    .find_map(|k| {
                        let v = item.get(k)?;
                        v.as_str()
                            .map(str::to_string)
                            .or_else(|| v.as_num().map(|n| format!("{n}")))
                    })
                    .map(|l| format!("{index}:{l}"))
                    .unwrap_or_else(|| index.to_string());
                flatten(item, &format!("{path}[{label}]"), out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

fn compare(baseline_path: &str, current_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let baseline_text = std::fs::read_to_string(baseline_path)?;
    let current_text = std::fs::read_to_string(current_path)?;
    let mut baseline = BTreeMap::new();
    let mut current = BTreeMap::new();
    flatten(&parse(&baseline_text)?, "", &mut baseline);
    flatten(&parse(&current_text)?, "", &mut current);

    println!("\n== {current_path} vs baseline {baseline_path}");
    table_row!("leaf", "baseline", "current", "delta", "");
    let mut warned = 0usize;
    let mut shown = 0usize;
    for (path, &base) in &baseline {
        let Some(&cur) = current.get(path) else {
            println!("  missing in current: {path}");
            continue;
        };
        if cur == base {
            continue;
        }
        let delta_pct = if base == 0.0 {
            f64::INFINITY
        } else {
            100.0 * (cur - base) / base
        };
        let warn = !delta_pct.is_finite() || delta_pct.abs() >= WARN_PCT;
        if warn {
            warned += 1;
        }
        shown += 1;
        table_row!(
            path,
            format!("{base}"),
            format!("{cur}"),
            format!("{delta_pct:+.1}%"),
            if warn { "WARN" } else { "" }
        );
    }
    for path in current.keys() {
        if !baseline.contains_key(path) {
            println!("  new leaf (no baseline): {path}");
        }
    }
    if shown == 0 {
        println!("  all {} shared numeric leaves identical", baseline.len());
    } else {
        println!(
            "  {shown} leaves moved, {warned} beyond the {WARN_PCT:.0}% warn threshold \
             (informational only — wall-clock rates vary by host)"
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [...]");
        // Still exit 0: this tool is warn-only by contract.
        return;
    }
    for pair in args.chunks(2) {
        if let Err(e) = compare(&pair[0], &pair[1]) {
            // A missing or unparsable file is reported, not fatal: a new
            // experiment may not have a committed baseline yet.
            println!("\n== {} vs baseline {}: skipped ({e})", pair[1], pair[0]);
        }
    }
}

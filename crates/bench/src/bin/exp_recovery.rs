//! E23 — crash-recovery harness: deterministic checkpoint/restore under
//! fire.
//!
//! A faulted *and* degraded workload (lossy delivery on top of a
//! permanently dead link) runs to completion once, uninterrupted, and
//! its full final fingerprint — cycle count, memory images, retry and
//! service counters, fault diagnosis, dead-link set, metrics export and
//! Perfetto trace — is hashed. The same workload is then re-run to a
//! mid-flight cut point, checkpointed to disk, and **hard-killed**: the
//! process image is discarded and a fresh child process (this binary
//! re-executing itself) restores the file, resumes, and reports its own
//! fingerprint hash. The invariant under test: the resumed world is
//! byte-identical to the one that was never interrupted, under every
//! NoC kernel and thread count, with checkpoints taken under one kernel
//! restored under another.
//!
//! The whole sweep runs **twice** and must reproduce byte-identically
//! before anything is printed. `BENCH_recovery.json` records checkpoint
//! size, save/restore latency, and the overhead evidence: enabling the
//! auto-checkpoint policy does not change the simulated outcome, and a
//! run with checkpointing disabled pays nothing for the feature.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_recovery` (set
//! `EXP_RECOVERY_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use hermes_noc::{CycleWindow, FaultPlan, KernelMode, NocConfig, Port, RouterAddr, Routing};
use multinoc::{NodeId, System};
use r8::asm::assemble;

/// Seed for the injected fault stream.
const SEED: u64 = 0xC4A0_5E23;
/// Cycle budget per run (idle fast-forward keeps real cost far lower).
const BUDGET: u64 = 4_000_000;
/// Environment variable carrying the checkpoint path to a child that
/// plays the freshly-booted, post-crash process image.
const CHILD_ENV: &str = "EXP_RECOVERY_RESTORE";
/// Optional kernel override for the child's restore.
const CHILD_KERNEL_ENV: &str = "EXP_RECOVERY_KERNEL";

const P1: NodeId = NodeId(1);
const P2: NodeId = NodeId(2);
const MEM: NodeId = NodeId(3);

fn kernel_label(kernel: KernelMode) -> String {
    match kernel {
        KernelMode::Reference => "reference".into(),
        KernelMode::Active => "active".into(),
        KernelMode::Parallel { threads } => format!("parallel{threads}"),
    }
}

fn kernel_from_label(label: &str) -> KernelMode {
    match label {
        "reference" => KernelMode::Reference,
        "active" => KernelMode::Active,
        other => {
            let threads = other
                .strip_prefix("parallel")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("unknown kernel label {other:?}"));
            KernelMode::Parallel { threads }
        }
    }
}

/// The faulted + degraded workload: P1 writes through remote memory and
/// P2's memory and notifies it; P2 reads back and halts — while 15 % of
/// flits are dropped and the (0,1)→East link is dead from cycle 0, so
/// retransmission timers, dedup state, the diagnosis epoch and the
/// reroute tables are all live at any cut point.
fn build(kernel: KernelMode) -> System {
    let mut config = NocConfig::multinoc();
    config.routing = Routing::FaultTolerantXy;
    let mut sys = System::builder()
        .noc(config)
        .kernel(kernel)
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    sys.set_fault_plan(FaultPlan::new(SEED).with_drop_rate(0.15).with_link_down(
        RouterAddr::new(0, 1),
        Port::East,
        CycleWindow::open_ended(0),
    ))
    .expect("valid fault plan");
    sys.enable_trace(4096);
    // Pre-seed so P1's read does not race its retransmitted write.
    sys.memory_mut(MEM).expect("mem").write(0, 777);
    let mem_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(MEM)
        .expect("window");
    let p2_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(P2)
        .expect("window");
    let p1 = assemble(&format!(
        "LIW R1, {mem_base}\n\
         XOR R0, R0, R0\n\
         LIW R2, 777\n\
         ST  R2, R1, R0\n\
         LD  R3, R1, R0\n\
         LIW R4, 0x20\n\
         ST  R3, R4, R0\n\
         LIW R5, {p2_base}\n\
         LIW R6, 0x5A5A\n\
         ST  R6, R5, R0\n\
         LIW R7, 0xFFFD\n\
         LIW R2, {}\n\
         ST  R2, R0, R7\n\
         HALT",
        P2.as_u16(),
    ))
    .expect("p1 assembles");
    let p2 = assemble(&format!(
        "LIW R2, 0xFFFE\n\
         XOR R0, R0, R0\n\
         LIW R3, {}\n\
         ST  R3, R0, R2\n\
         LD  R4, R0, R0\n\
         LIW R5, 0x40\n\
         ST  R4, R5, R0\n\
         HALT",
        P1.as_u16(),
    ))
    .expect("p2 assembles");
    sys.memory_mut(P1)
        .expect("p1 memory")
        .write_block(0, p1.words());
    sys.memory_mut(P2)
        .expect("p2 memory")
        .write_block(0, p2.words());
    sys.activate_directly(P1).expect("activate p1");
    sys.activate_directly(P2).expect("activate p2");
    sys
}

/// FNV-1a over everything a finished run leaves behind: cycle, retry
/// and service counters, fault diagnosis, dead-link set, latency
/// histogram, metrics export, Perfetto trace and every memory image.
fn fingerprint(sys: &System) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(format!("cycle={}", sys.cycle()).as_bytes());
    eat(format!("retries={:?}", sys.retry_counters()).as_bytes());
    eat(format!("services={:?}", sys.service_counters()).as_bytes());
    eat(format!("faults={:?}", sys.noc_stats().faults).as_bytes());
    eat(format!("latency={:?}", sys.noc_stats().latency_histogram()).as_bytes());
    eat(format!("dead_links={:?}", sys.dead_links()).as_bytes());
    eat(format!("dead_nodes={:?}", sys.dead_nodes()).as_bytes());
    eat(format!("failover={:?}", sys.failover_report()).as_bytes());
    eat(sys.metrics_snapshot().to_prometheus().as_bytes());
    eat(sys.perfetto_json().as_bytes());
    for i in 0..sys.table().len() {
        if let Ok(mem) = sys.memory(NodeId(i as u8)) {
            for addr in 0..mem.words() {
                eat(&mem.read(addr).to_le_bytes());
            }
        }
    }
    h
}

/// The post-crash process image: restore the checkpoint named by the
/// environment, resume to completion, print the fingerprint, exit.
fn run_child(path: &str) {
    let path = PathBuf::from(path);
    let mut sys = match std::env::var(CHILD_KERNEL_ENV) {
        Ok(label) => {
            let bytes = std::fs::read(&path).expect("read checkpoint");
            System::restore_with_kernel(&bytes, kernel_from_label(&label))
                .expect("restore checkpoint")
        }
        Err(_) => System::restore_from_file(&path).expect("restore checkpoint"),
    };
    sys.run_until_halted(BUDGET).expect("resumed run halts");
    assert_eq!(sys.memory(P2).expect("p2").read(0x40), 0x5A5A);
    println!(
        "RECOVERED {:#018x} cycle={}",
        fingerprint(&sys),
        sys.cycle()
    );
}

/// Spawns a fresh process image that restores `path` and returns the
/// fingerprint it reports.
fn recover_in_fresh_process(path: &std::path::Path, kernel: Option<KernelMode>) -> u64 {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.env(CHILD_ENV, path);
    match kernel {
        Some(k) => cmd.env(CHILD_KERNEL_ENV, kernel_label(k)),
        None => cmd.env_remove(CHILD_KERNEL_ENV),
    };
    let out = cmd.output().expect("spawn recovery process");
    assert!(
        out.status.success(),
        "recovery process failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let word = stdout
        .lines()
        .find_map(|l| l.strip_prefix("RECOVERED "))
        .and_then(|rest| rest.split_whitespace().next())
        .expect("child printed a fingerprint");
    u64::from_str_radix(word.trim_start_matches("0x"), 16).expect("fingerprint parses")
}

fn kernels(smoke: bool) -> Vec<KernelMode> {
    if smoke {
        vec![KernelMode::Reference, KernelMode::Parallel { threads: 2 }]
    } else {
        vec![
            KernelMode::Reference,
            KernelMode::Active,
            KernelMode::Parallel { threads: 1 },
            KernelMode::Parallel { threads: 2 },
            KernelMode::Parallel { threads: 8 },
        ]
    }
}

/// One kernel's deterministic results (timings live elsewhere: they can
/// never be part of the reproducibility comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Point {
    kernel: String,
    elapsed: u64,
    cut: u64,
    checkpoint_bytes: usize,
    fingerprint: u64,
    cross_kernel: String,
}

fn run_sweep(smoke: bool, dir: &std::path::Path) -> Vec<Point> {
    let kernel_set = kernels(smoke);
    let mut points = Vec::new();
    for (i, &kernel) in kernel_set.iter().enumerate() {
        // The world that never crashes.
        let mut reference = build(kernel);
        let elapsed = reference.run_until_halted(BUDGET).expect("run halts");
        let want = fingerprint(&reference);
        assert!(
            reference.retry_counters().retransmissions > 0 && reference.degraded(),
            "the workload must be both faulted and degraded"
        );

        // The world that crashes mid-flight: run to the cut, persist,
        // then lose the entire process image.
        let cut = elapsed / 2;
        let mut doomed = build(kernel);
        doomed.run(cut).expect("run to the cut");
        let path = dir.join(format!("ckpt-{}.mnsp", kernel_label(kernel)));
        doomed.checkpoint_to_file(&path).expect("write checkpoint");
        let checkpoint_bytes = std::fs::metadata(&path).expect("checkpoint exists").len() as usize;
        drop(doomed); // the hard kill: only the file survives

        // A fresh process image restores and must land on the exact
        // same world; a second child restores under a *different*
        // kernel and must land there too.
        let recovered = recover_in_fresh_process(&path, None);
        assert_eq!(
            recovered,
            want,
            "fresh-process recovery diverged under {}",
            kernel_label(kernel)
        );
        let other = kernel_set[(i + 1) % kernel_set.len()];
        let cross = recover_in_fresh_process(&path, Some(other));
        assert_eq!(
            cross,
            want,
            "cross-kernel recovery ({} -> {}) diverged",
            kernel_label(kernel),
            kernel_label(other)
        );
        points.push(Point {
            kernel: kernel_label(kernel),
            elapsed,
            cut,
            checkpoint_bytes,
            fingerprint: want,
            cross_kernel: kernel_label(other),
        });
    }
    points
}

/// Non-deterministic measurements: latency of save/restore and the
/// overhead evidence for the auto-checkpoint policy.
struct Timings {
    save_us: u128,
    restore_us: u128,
    plain_run_us: u128,
    auto_checkpoint_run_us: u128,
    auto_checkpoints_written: u64,
}

fn measure(dir: &std::path::Path) -> Timings {
    let mut sys = build(KernelMode::Active);
    sys.run(200).expect("run");
    let path = dir.join("ckpt-timing.mnsp");
    let t0 = Instant::now();
    sys.checkpoint_to_file(&path).expect("write checkpoint");
    let save_us = t0.elapsed().as_micros();
    let t1 = Instant::now();
    let restored = System::restore_from_file(&path).expect("restore");
    let restore_us = t1.elapsed().as_micros();
    assert_eq!(restored.cycle(), sys.cycle());

    // Overhead evidence. A run with checkpointing disabled is the
    // baseline: the feature's only footprint there is one Option check
    // per cycle. A run with the auto-checkpoint policy enabled pays for
    // its periodic writes but must land on the identical outcome.
    let mut plain = build(KernelMode::Active);
    let t2 = Instant::now();
    plain.run_until_halted(BUDGET).expect("plain run halts");
    let plain_run_us = t2.elapsed().as_micros();
    let mut auto = build(KernelMode::Active);
    auto.enable_auto_checkpoint(dir.join("ckpt-auto.mnsp"), 100);
    let t3 = Instant::now();
    auto.run_until_halted(BUDGET).expect("auto run halts");
    let auto_checkpoint_run_us = t3.elapsed().as_micros();
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&auto),
        "the auto-checkpoint policy must not change the simulated outcome"
    );
    Timings {
        save_us,
        restore_us,
        plain_run_us,
        auto_checkpoint_run_us,
        auto_checkpoints_written: auto.auto_checkpoints_written(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Ok(path) = std::env::var(CHILD_ENV) {
        run_child(&path);
        return Ok(());
    }
    let smoke = std::env::var_os("EXP_RECOVERY_SMOKE").is_some();
    let dir = std::env::temp_dir().join(format!("multinoc-exp-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let first = run_sweep(smoke, &dir);
    let second = run_sweep(smoke, &dir);
    assert_eq!(
        first, second,
        "same seed must reproduce the identical sweep"
    );
    let timings = measure(&dir);
    std::fs::remove_dir_all(&dir).ok();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E23 — crash recovery: mid-flight checkpoint, hard kill, fresh-process restore"
    );
    let _ = writeln!(
        out,
        "faulted (15% drop) + degraded (dead link) workload, seed {SEED:#x}"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>10} {:>20} {:<12}",
        "kernel", "cycles", "cut", "ckpt B", "fingerprint", "also via"
    );
    for p in &first {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>10} {:>#20x} {:<12}",
            p.kernel, p.elapsed, p.cut, p.checkpoint_bytes, p.fingerprint, p.cross_kernel
        );
    }
    let _ = writeln!(
        out,
        "All {} kernels: fresh-process and cross-kernel restores reproduced the \
         uninterrupted fingerprint bit-for-bit.",
        first.len()
    );
    let _ = writeln!(
        out,
        "save {} us, restore {} us; run {} us plain vs {} us with {} auto-checkpoints",
        timings.save_us,
        timings.restore_us,
        timings.plain_run_us,
        timings.auto_checkpoint_run_us,
        timings.auto_checkpoints_written
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E23 crash recovery\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"save_us\": {},", timings.save_us);
    let _ = writeln!(json, "  \"restore_us\": {},", timings.restore_us);
    let _ = writeln!(json, "  \"plain_run_us\": {},", timings.plain_run_us);
    let _ = writeln!(
        json,
        "  \"auto_checkpoint_run_us\": {},",
        timings.auto_checkpoint_run_us
    );
    let _ = writeln!(
        json,
        "  \"auto_checkpoints_written\": {},",
        timings.auto_checkpoints_written
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in first.iter().enumerate() {
        let comma = if i + 1 == first.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"cycles\": {}, \"cut\": {}, \
             \"checkpoint_bytes\": {}, \"fingerprint\": \"{:#018x}\", \
             \"cross_kernel\": \"{}\", \"recovered\": true}}{comma}",
            p.kernel, p.elapsed, p.cut, p.checkpoint_bytes, p.fingerprint, p.cross_kernel
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_recovery.json", &json)?;
    print!("{out}");
    println!("Determinism check: two same-seed sweeps produced identical reports.");
    println!("Machine-readable summary written to BENCH_recovery.json");
    Ok(())
}

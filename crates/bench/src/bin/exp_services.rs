//! E13 (extension) — the communication profile of the Fig. 10 edge
//! detection application: how many messages of each of the nine NoC
//! services one full run generates, per node. This is the quantitative
//! view of §2.1's claim that the nine packet formats "define a set of
//! services offered by the communication network to the IP cores".
//!
//! Run with `cargo run -p multinoc-bench --bin exp_services`.

use multinoc::apps::edge::{self, Image};
use multinoc::service::ServiceCode;
use multinoc::trace::ALL_CODES;
use multinoc::{host::Host, System, PROCESSOR_1, PROCESSOR_2};
use multinoc_bench::table_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = Image::synthetic(32, 12);
    let mut system = System::paper_config()?;
    let mut host = Host::new().with_budget(50_000_000);
    host.synchronize(&mut system)?;
    let processors = [PROCESSOR_1, PROCESSOR_2];
    edge::load(&mut system, &mut host, &processors, image.width() as u16)?;
    let run = edge::run(&mut system, &mut host, &processors, &image)?;
    assert_eq!(run.output, edge::reference(&image));

    println!(
        "E13: service mix of one {}x{} edge-detection run on 2 processors\n",
        image.width(),
        image.height()
    );
    let counters = system.service_counters();
    table_row!("service", "total sent", "by serial", "by P1", "by P2");
    let serial = multinoc::SERIAL;
    for code in ALL_CODES {
        table_row!(
            format!("{code:?}"),
            counters.total_sent(code),
            counters.sent(serial, code),
            counters.sent(PROCESSOR_1, code),
            counters.sent(PROCESSOR_2, code)
        );
    }
    let writes = counters.total_sent(ServiceCode::WriteInMemory);
    let reads = counters.total_sent(ServiceCode::ReadFromMemory);
    println!(
        "\n{} write and {} read transactions moved {} output lines;\n\
         the host-side services (write/read/activate) dominate — the system is\n\
         fill-and-drain limited, consistent with experiments E6 and E10.",
        writes,
        reads,
        image.height() - 2
    );
    Ok(())
}

//! E17 (extension) — routing-algorithm ablation: XY versus YX.
//!
//! §2.1 fixes "the deterministic XY routing algorithm". XY and YX are
//! mirror images: both minimal and deadlock-free, but they spread a
//! given traffic pattern over *different* links, so asymmetric patterns
//! separate them. Corner-to-corner hotspot traffic concentrates on the
//! opposite edges under the two algorithms; symmetric uniform traffic
//! leaves them statistically equivalent — which is why the paper's
//! choice of XY is a layout/simplicity decision, not a performance one.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_routing`.

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{Noc, NocConfig, Port, RouterAddr, Routing};
use multinoc_bench::table_row;

fn run(routing: Routing, pattern: Pattern, rate: f64) -> Result<Noc, hermes_noc::NocError> {
    let config = NocConfig::mesh(4, 4).with_routing(routing);
    let mut noc = Noc::new(config)?;
    let mut gen = TrafficGen::new(pattern, rate, 6, 11);
    gen.drive(&mut noc, 25_000, 2_000_000)?;
    Ok(noc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E17: XY vs YX routing (4x4 mesh)\n");
    table_row!(
        "pattern",
        "routing",
        "delivered",
        "mean latency",
        "peak link util"
    );
    for (name, pattern, rate) in [
        ("uniform", Pattern::Uniform, 0.05),
        ("transpose", Pattern::Transpose, 0.10),
        (
            "hotspot(3,3)",
            Pattern::Hotspot(RouterAddr::new(3, 3)),
            0.20,
        ),
    ] {
        for routing in [Routing::Xy, Routing::Yx] {
            let noc = run(routing, pattern, rate)?;
            let stats = noc.stats();
            table_row!(
                name,
                format!("{routing:?}"),
                stats.packets_delivered,
                format!("{:.1}", stats.mean_latency().unwrap_or(f64::NAN)),
                format!(
                    "{:.0}%",
                    stats.peak_link_utilization(noc.config().cycles_per_flit) * 100.0
                )
            );
        }
    }

    // Show the mirror-image link usage under the hotspot.
    println!("\nflits into hotspot router 33, by final approach direction:");
    table_row!("routing", "from West (row last)", "from South (col last)");
    for routing in [Routing::Xy, Routing::Yx] {
        let noc = run(routing, Pattern::Hotspot(RouterAddr::new(3, 3)), 0.2)?;
        let west = noc
            .stats()
            .link_flits
            .get(&(RouterAddr::new(2, 3), Port::East))
            .copied()
            .unwrap_or(0);
        let south = noc
            .stats()
            .link_flits
            .get(&(RouterAddr::new(3, 2), Port::North))
            .copied()
            .unwrap_or(0);
        table_row!(format!("{routing:?}"), west, south);
    }
    println!(
        "\nconclusion: XY funnels the hotspot's traffic up the destination\n\
         column while YX funnels it along the destination row — mirror-image\n\
         load, equivalent aggregate performance. The paper's XY choice is\n\
         about layout simplicity, which the measurements support."
    );
    Ok(())
}

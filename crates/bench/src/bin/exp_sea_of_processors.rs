//! E14 (extension) — the "sea of processors" (§1): strong scaling of a
//! fixed workload over 1–12 processors on a 4×4 mesh, the system-level
//! consequence of the paper's motivation ("the current trend to increase
//! the number of embedded processors in SoCs").
//!
//! Each processor runs the same compiled kernel over its share of 360
//! work units (the share is written into its local memory before
//! activation); the makespan is the cycle at which the last processor
//! halts. Results are verified by summing the per-processor partial
//! checksums.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_sea_of_processors`.

use hermes_noc::{NocConfig, RouterAddr};
use multinoc::{NodeId, System};
use multinoc_bench::table_row;

const TOTAL_UNITS: u16 = 360;
const SHARE_ADDR: u16 = 0x380; // where the host deposits the work share
const START_ADDR: u16 = 0x381; // first unit index for this processor
const RESULT_ADDR: u16 = 0x382; // partial checksum output

fn kernel() -> r8::Program {
    r8c::build(&format!(
        "func main() {{
             var share = peek({SHARE_ADDR});
             var unit = peek({START_ADDR});
             var acc = 0;
             var n = 0;
             while (n < share) {{
                 // A few hundred cycles of real work per unit.
                 var x = unit * 7 + 1;
                 var inner = 0;
                 while (inner < 20) {{
                     x = (x * 3 + unit) & 0x7FF;
                     acc = acc ^ x;
                     inner = inner + 1;
                 }}
                 unit = unit + 1;
                 n = n + 1;
             }}
             poke({RESULT_ADDR}, acc);
         }}"
    ))
    .expect("kernel compiles")
}

/// Host-side reference of the total checksum (xor of all partials is
/// partition-independent only if partitions match, so compare partials).
fn reference_partial(start: u16, share: u16) -> u16 {
    let mut acc: u16 = 0;
    for unit in start..start + share {
        let mut x = unit.wrapping_mul(7).wrapping_add(1);
        for _ in 0..20 {
            x = (x.wrapping_mul(3).wrapping_add(unit)) & 0x7FF;
            acc ^= x;
        }
    }
    acc
}

fn run_with(processors: usize, kernel: &r8::Program) -> Result<u64, Box<dyn std::error::Error>> {
    // A 4x4 mesh: serial at 00, memory at 33, processors elsewhere.
    let mut builder = System::builder()
        .noc(NocConfig::mesh(4, 4))
        .serial_at(RouterAddr::new(0, 0));
    let mut nodes = Vec::new();
    'outer: for y in 0..4u8 {
        for x in 0..4u8 {
            if (x, y) == (0, 0) {
                continue;
            }
            builder = builder.processor_at(RouterAddr::new(x, y));
            nodes.push(NodeId(nodes.len() as u8 + 1));
            if nodes.len() == processors {
                break 'outer;
            }
        }
    }
    let mut system = builder.build()?;
    let share = TOTAL_UNITS / processors as u16;
    assert_eq!(
        share * processors as u16,
        TOTAL_UNITS,
        "processor count must divide the workload"
    );
    for (k, &node) in nodes.iter().enumerate() {
        let memory = system.memory_mut(node)?;
        memory.write_block(0, kernel.words());
        memory.write(SHARE_ADDR, share);
        memory.write(START_ADDR, k as u16 * share);
    }
    for &node in &nodes {
        system.activate_directly(node)?;
    }
    let start = system.cycle();
    system.run_until_halted(500_000_000)?;
    // Verify every partial checksum.
    for (k, &node) in nodes.iter().enumerate() {
        let got = system.memory(node)?.read(RESULT_ADDR);
        let expected = reference_partial(k as u16 * share, share);
        assert_eq!(got, expected, "partial checksum of {node}");
    }
    Ok(system.cycle() - start)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E14: strong scaling of {TOTAL_UNITS} work units over a 4x4 MultiNoC\n");
    let kernel = kernel();
    table_row!("processors", "makespan (cycles)", "speedup", "efficiency");
    let mut base = None;
    for processors in [1usize, 2, 3, 4, 6, 12] {
        let cycles = run_with(processors, &kernel)?;
        let base_cycles = *base.get_or_insert(cycles);
        let speedup = base_cycles as f64 / cycles as f64;
        table_row!(
            processors,
            cycles,
            format!("{speedup:.2}x"),
            format!("{:.0}%", speedup / processors as f64 * 100.0)
        );
    }
    println!(
        "\nconclusion: with independent per-processor work the platform scales\n\
         nearly linearly — the \"sea of processors\" §1 motivates, enabled by\n\
         the NoC's distributed routing (no shared-bus bottleneck)."
    );
    Ok(())
}

//! E4 — §3 scaling claim: "the router surface will remain constant and
//! the NoC dimensions will scale less than the IPs, becoming a very
//! small fraction of the whole system, typically less than 10 or 5%."
//!
//! Run with `cargo run -p multinoc-bench --bin exp_scaling`.

use floorplan::scaling;
use multinoc_bench::table_row;

fn main() {
    println!("E4: NoC share of system area\n");
    println!(
        "prototype itself (2x2, small IPs): {:.0}% of the logic is NoC\n",
        scaling::prototype_fraction() * 100.0
    );
    table_row!(
        "mesh",
        "IP slices",
        "NoC slices",
        "total slices",
        "NoC fraction"
    );
    for n in [2u32, 4, 6, 8, 10] {
        for ip_slices in [532u32, 1500, 3000, 6000] {
            let p = scaling::noc_fraction(n, ip_slices);
            table_row!(
                format!("{n}x{n}"),
                ip_slices,
                p.noc_slices,
                p.total_slices,
                format!("{:.1}%", p.noc_fraction * 100.0)
            );
        }
    }
    println!(
        "\nconclusion: the fraction is set by IP complexity, not mesh size;\n\
         IPs of a few thousand slices push the NoC below 10% and then 5%,\n\
         exactly the paper's argument for 10x10-class systems."
    );
}

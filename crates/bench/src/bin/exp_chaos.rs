//! E22 (extension) — deterministic chaos harness: randomized node-death
//! schedules against replicated memory on 2×2..4×4 meshes.
//!
//! Every trial draws — from a per-point seed, never from global state —
//! a victim (the serving primary's router, the backup's router, a
//! bystander router hosting no IP, or the primary's IP core alone) and
//! a kill cycle, then runs a write → spin → read-back → write workload
//! through the replicated window. The invariant under test: **as long
//! as one replica member survives, no acknowledged service result is
//! lost and none is applied twice** — the read returns the value
//! written before the death, the post-failover write lands on the
//! surviving member, and the run halts instead of hanging or erroring.
//!
//! Every trial also runs under five NoC kernels (Reference, Active,
//! Parallel×{1,2,8}) and asserts a bit-identical fingerprint — cycle
//! count, memory end-state, dead sets, failover log, retry and
//! replication counters — so fault diagnosis and failover are proven
//! kernel-invariant, and the whole sweep runs **twice** with the same
//! seed and must reproduce byte-identically before printing. The
//! machine-readable summary lands in `BENCH_chaos.json`.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_chaos` (set
//! `EXP_CHAOS_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;

use hermes_noc::{FaultPlan, KernelMode, NocConfig, RouterAddr, Routing};
use multinoc::{NodeId, System};
use r8::asm::assemble;

/// Seed of the whole sweep; each point derives its own stream from it.
const SEED: u64 = 0xC4A0_5E22;
/// Cycle budget per run (idle fast-forward keeps real cost far lower).
const BUDGET: u64 = 4_000_000;

const PROCESSOR: NodeId = NodeId(1);
const PRIMARY: NodeId = NodeId(2);
const BACKUP: NodeId = NodeId(3);

/// Deterministic xorshift64* stream.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One mesh configuration of the sweep.
struct Mesh {
    n: u8,
    primary: RouterAddr,
    backup: RouterAddr,
    /// Routers hosting no IP (victim candidates for bystander kills).
    bystanders: Vec<RouterAddr>,
}

fn meshes() -> Vec<Mesh> {
    vec![
        Mesh {
            n: 2,
            primary: RouterAddr::new(1, 1),
            backup: RouterAddr::new(1, 0),
            bystanders: vec![],
        },
        Mesh {
            n: 3,
            primary: RouterAddr::new(1, 1),
            backup: RouterAddr::new(2, 2),
            bystanders: vec![
                RouterAddr::new(2, 0),
                RouterAddr::new(0, 2),
                RouterAddr::new(1, 2),
            ],
        },
        Mesh {
            n: 4,
            primary: RouterAddr::new(1, 1),
            backup: RouterAddr::new(3, 3),
            bystanders: vec![
                RouterAddr::new(3, 0),
                RouterAddr::new(0, 3),
                RouterAddr::new(2, 2),
                RouterAddr::new(3, 1),
            ],
        },
    ]
}

/// What the trial kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kill {
    /// The serving primary's router.
    PrimaryRouter,
    /// The backup's router.
    BackupRouter,
    /// A router hosting no IP (traffic detours, nobody fails over).
    Bystander(RouterAddr),
    /// The primary's IP core only — its router keeps forwarding.
    PrimaryEndpoint,
}

impl Kill {
    fn label(self) -> String {
        match self {
            Kill::PrimaryRouter => "primary-router".into(),
            Kill::BackupRouter => "backup-router".into(),
            Kill::PrimaryEndpoint => "primary-endpoint".into(),
            Kill::Bystander(a) => format!("bystander-{a}"),
        }
    }
}

/// One fully-specified chaos trial.
struct Trial {
    kill: Kill,
    kill_cycle: u64,
    /// Spin-loop iterations between the first write and the read-back,
    /// so the read lands before, during or after the failover.
    spin: u64,
}

fn draw_trial(rng: &mut Prng, mesh: &Mesh) -> Trial {
    let kinds = if mesh.bystanders.is_empty() { 3 } else { 4 };
    let kill = match rng.below(kinds) {
        0 => Kill::PrimaryRouter,
        1 => Kill::BackupRouter,
        2 => Kill::PrimaryEndpoint,
        _ => Kill::Bystander(mesh.bystanders[rng.below(mesh.bystanders.len() as u64) as usize]),
    };
    Trial {
        kill,
        kill_cycle: 200 + rng.below(4_000),
        spin: rng.below(6_000),
    }
}

/// Everything one run leaves behind, rendered comparable across kernels
/// and across repeated same-seed sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    cycles: u64,
    read_back: u16,
    primary_word: Option<u16>,
    backup_word: Option<u16>,
    dead_nodes: String,
    failovers: String,
    replication_writes: u64,
    retransmissions: u64,
    reroute_resets: u64,
}

fn run_trial(mesh: &Mesh, trial: &Trial, seed: u64, kernel: KernelMode) -> Outcome {
    let mut config = NocConfig::mesh(mesh.n, mesh.n);
    config.routing = Routing::FaultTolerantXy;
    let mut sys = System::builder()
        .noc(config)
        .kernel(kernel)
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .replicated_memory_at(mesh.primary, mesh.backup)
        .build()
        .expect("replicated layout");
    let plan = FaultPlan::new(seed);
    let plan = match trial.kill {
        Kill::PrimaryRouter => plan.with_router_down(mesh.primary, trial.kill_cycle),
        Kill::BackupRouter => plan.with_router_down(mesh.backup, trial.kill_cycle),
        Kill::Bystander(addr) => plan.with_router_down(addr, trial.kill_cycle),
        Kill::PrimaryEndpoint => plan.with_endpoint_down(mesh.primary, trial.kill_cycle),
    };
    sys.set_fault_plan(plan).expect("valid fault plan");
    let base = sys
        .address_map(PROCESSOR)
        .expect("map")
        .window_base(PRIMARY)
        .expect("window");
    let program = assemble(&format!(
        "LIW R1, {base}\n\
         LIW R2, 555\n\
         XOR R0, R0, R0\n\
         ST R2, R1, R0\n\
         LIW R5, {spin}\n\
         loop: SUBI R5, 1\n\
         JMPZD go\n\
         JMPD loop\n\
         go: LD R3, R1, R0\n\
         LIW R4, 0x20\n\
         ST R3, R4, R0\n\
         LIW R6, 666\n\
         ADDI R1, 1\n\
         ST R6, R1, R0\n\
         HALT",
        spin = trial.spin.max(1),
    ))
    .expect("assembles");
    sys.memory_mut(PROCESSOR)
        .expect("p memory")
        .write_block(0, program.words());
    sys.activate_directly(PROCESSOR).expect("activate");
    let cycles = sys.run_until_halted(BUDGET).unwrap_or_else(|e| {
        panic!(
            "a live replica remained ({:?} on {}x{} at cycle {}) yet the run failed: {e}",
            trial.kill, mesh.n, mesh.n, trial.kill_cycle
        )
    });
    let member = |node: NodeId| -> Option<u16> {
        if sys.dead_nodes().contains(&node) {
            None
        } else {
            Some(sys.memory(node).expect("member").read(1))
        }
    };
    let counters = sys.retry_counters();
    Outcome {
        cycles,
        read_back: sys.memory(PROCESSOR).expect("p memory").read(0x20),
        primary_word: member(PRIMARY),
        backup_word: member(BACKUP),
        dead_nodes: format!("{:?}", sys.dead_nodes()),
        failovers: format!("{:?}", sys.failover_report()),
        replication_writes: sys.replication_writes(),
        retransmissions: counters.retransmissions,
        reroute_resets: counters.reroute_resets,
    }
}

/// Zero-lost, zero-duplicated service results: the value written before
/// the death comes back, and the post-failover write landed on every
/// surviving member.
fn check_invariants(mesh: &Mesh, trial: &Trial, out: &Outcome) {
    let ctx = format!("{:?} on {}x{}: {out:?}", trial.kill, mesh.n, mesh.n);
    assert_eq!(out.read_back, 555, "pre-death write lost ({ctx})");
    for (name, word) in [("primary", out.primary_word), ("backup", out.backup_word)] {
        if let Some(w) = word {
            // A member that survived *and* currently serves the window
            // must hold the post-failover write. The non-serving member
            // holds it too (write-through) unless the serving side
            // absorbed it after the other died.
            let _ = name;
            assert!(w == 666 || w == 0, "torn write on {name} ({ctx})");
        }
    }
    let serving_word = match trial.kill {
        Kill::PrimaryRouter | Kill::PrimaryEndpoint => out.backup_word,
        _ => out.primary_word,
    };
    assert_eq!(serving_word, Some(666), "post-failover write lost ({ctx})");
}

fn kernels(smoke: bool) -> Vec<KernelMode> {
    if smoke {
        vec![KernelMode::Reference, KernelMode::Parallel { threads: 2 }]
    } else {
        vec![
            KernelMode::Reference,
            KernelMode::Active,
            KernelMode::Parallel { threads: 1 },
            KernelMode::Parallel { threads: 2 },
            KernelMode::Parallel { threads: 8 },
        ]
    }
}

struct Point {
    mesh: u8,
    kill: String,
    kill_cycle: u64,
    spin: u64,
    outcome: Outcome,
}

fn run_sweep(smoke: bool) -> (String, String) {
    let trials_per_mesh = if smoke { 2 } else { 6 };
    let kernel_set = kernels(smoke);
    let mut points: Vec<Point> = Vec::new();
    for mesh in &meshes() {
        let mut rng = Prng(SEED ^ (u64::from(mesh.n) << 32) | 1);
        for t in 0..trials_per_mesh {
            let trial = draw_trial(&mut rng, mesh);
            let point_seed = SEED ^ (u64::from(mesh.n) << 16) ^ t;
            let mut baseline: Option<Outcome> = None;
            for &kernel in &kernel_set {
                let out = run_trial(mesh, &trial, point_seed, kernel);
                check_invariants(mesh, &trial, &out);
                match &baseline {
                    None => baseline = Some(out),
                    Some(b) => assert_eq!(
                        b,
                        &out,
                        "kernel {kernel:?} diverged ({:?} on {n}x{n})",
                        trial.kill,
                        n = mesh.n
                    ),
                }
            }
            points.push(Point {
                mesh: mesh.n,
                kill: trial.kill.label(),
                kill_cycle: trial.kill_cycle,
                spin: trial.spin,
                outcome: baseline.expect("at least one kernel ran"),
            });
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E22 — chaos harness: randomized node death under replicated memory"
    );
    let _ = writeln!(
        out,
        "{} trials x {} kernels, seed {SEED:#x}",
        points.len(),
        kernel_set.len()
    );
    let _ = writeln!(
        out,
        "{:<6} {:<28} {:>10} {:>8} {:>10} {:>6} {:>8}",
        "mesh", "kill", "at cycle", "spin", "cycles", "fail", "repl"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:<6} {:<28} {:>10} {:>8} {:>10} {:>6} {:>8}",
            format!("{n}x{n}", n = p.mesh),
            p.kill,
            p.kill_cycle,
            p.spin,
            p.outcome.cycles,
            if p.outcome.failovers.len() > 2 { 1 } else { 0 },
            p.outcome.replication_writes,
        );
    }
    let _ = writeln!(
        out,
        "All {} trials: pre-death writes survived, post-failover writes landed \
         exactly once, all kernels bit-identical.",
        points.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E22 chaos harness\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"kernels\": {},", kernel_set.len());
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mesh\": \"{n}x{n}\", \"kill\": \"{k}\", \"kill_cycle\": {kc}, \
             \"spin\": {s}, \"cycles\": {c}, \"read_back\": {rb}, \
             \"replication_writes\": {rw}, \"retransmissions\": {rt}, \
             \"reroute_resets\": {rr}, \"failed_over\": {fo}}}{comma}",
            n = p.mesh,
            k = p.kill,
            kc = p.kill_cycle,
            s = p.spin,
            c = p.outcome.cycles,
            rb = p.outcome.read_back,
            rw = p.outcome.replication_writes,
            rt = p.outcome.retransmissions,
            rr = p.outcome.reroute_resets,
            fo = if p.outcome.failovers.len() > 2 {
                "true"
            } else {
                "false"
            },
        );
    }
    json.push_str("  ]\n}\n");
    (out, json)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var_os("EXP_CHAOS_SMOKE").is_some();
    let first = run_sweep(smoke);
    let second = run_sweep(smoke);
    assert_eq!(
        first, second,
        "same seed must reproduce the identical sweep"
    );
    let (report, json) = first;
    std::fs::write("BENCH_chaos.json", &json)?;
    print!("{report}");
    println!("Determinism check: two same-seed sweeps produced identical reports.");
    println!("Machine-readable summary written to BENCH_chaos.json");
    Ok(())
}

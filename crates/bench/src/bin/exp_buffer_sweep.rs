//! E8 — §2.1 buffering ablation: "a 2-flit buffer is added to each input
//! router port, reducing the number of routers affected by the blocked
//! flits. Larger buffers can provide enhanced NoC performance. MultiNoC
//! employs small buffers to cope with FPGA area restrictions."
//!
//! Sweeps the input-buffer depth under contended traffic and reports
//! latency and accepted throughput, quantifying both halves of the
//! claim: depth 2 beats depth 1, and deeper helps further at a cost the
//! prototype could not afford.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_buffer_sweep`.

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{Noc, NocConfig};
use multinoc_bench::table_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8: input buffer depth under contention (4x4 mesh, transpose traffic)\n");
    for rate in [0.10f64, 0.20, 0.30] {
        println!("offered load {rate:.2} flits/cycle/node:");
        table_row!(
            "buffer depth",
            "mean latency",
            "p99 latency",
            "delivered",
            "accepted f/c/n"
        );
        let mut latencies = Vec::new();
        for depth in [1usize, 2, 4, 8, 16] {
            let config = NocConfig::mesh(4, 4).with_buffer_depth(depth);
            let mut noc = Noc::new(config)?;
            let mut gen = TrafficGen::new(Pattern::Transpose, rate, 8, 2024);
            gen.drive(&mut noc, 30_000, 3_000_000)?;
            let stats = noc.stats();
            let mean = stats.mean_latency().unwrap_or(f64::NAN);
            latencies.push((depth, mean));
            table_row!(
                depth,
                format!("{mean:.1}"),
                stats.latency_quantile(0.99).unwrap_or(0),
                stats.packets_delivered,
                format!("{:.3}", stats.flits_delivered as f64 / 30_000.0 / 16.0)
            );
        }
        println!();
    }
    println!(
        "conclusion: depth 2 (the paper's choice) clearly improves on depth 1;\n\
         deeper buffers keep helping with diminishing returns — the area/performance\n\
         trade §2.1 describes."
    );
    Ok(())
}

//! E5 — §4 Figs. 8/9: the complete system execution flow, with the cycle
//! cost of every phase (synchronize, load, fill, activate, execute,
//! printf, read back).
//!
//! Run with `cargo run -p multinoc-bench --bin exp_flow`.

use multinoc::apps::vecsum;
use multinoc::{host::Host, System, PROCESSOR_1};
use multinoc_bench::table_row;
use r8::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E5: Fig. 8 flow phases (cycles at 25 MHz, fast functional serial link)\n");
    let data: Vec<u16> = (1..=64).collect();
    let program = assemble(&vecsum::program(data.len() as u16))?;

    let mut system = System::paper_config()?;
    let mut host = Host::new();
    let mut mark = 0u64;
    let phase = |system: &System, name: &str, mark: &mut u64| {
        let now = system.cycle();
        let us = (now - *mark) as f64 / system.clock_hz() * 1e6;
        table_row!(name, now - *mark, format!("{us:.1} us"));
        *mark = now;
    };

    table_row!("phase", "cycles", "wall time");
    host.synchronize(&mut system)?;
    phase(&system, "synchronize (0x55)", &mut mark);
    host.load_program(&mut system, PROCESSOR_1, program.words())?;
    phase(&system, "send object code", &mut mark);
    host.write_memory(&mut system, PROCESSOR_1, vecsum::DATA_ADDR, &data)?;
    phase(&system, "fill memory contents", &mut mark);
    host.activate(&mut system, PROCESSOR_1)?;
    phase(&system, "activate processor", &mut mark);
    host.wait_for_printf(&mut system, PROCESSOR_1, 1)?;
    phase(&system, "execute + printf", &mut mark);
    let result = host.read_memory(&mut system, PROCESSOR_1, vecsum::RESULT_ADDR, 1)?;
    phase(&system, "debug memory read", &mut mark);

    let expected = vecsum::expected_sum(&data);
    println!(
        "\nprintf: {}   read-back: {}   expected: {expected}",
        host.printf_output(PROCESSOR_1)[0],
        result[0]
    );
    assert_eq!(host.printf_output(PROCESSOR_1)[0], expected);
    assert_eq!(result[0], expected);
    println!(
        "total: {} cycles — both Fig. 9 debug paths agree",
        system.cycle()
    );
    Ok(())
}

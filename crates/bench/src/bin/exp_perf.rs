//! E20 (extension) — simulation-kernel performance: host cycles/second
//! of the quiescence-aware active-set kernel (`KernelMode::Active`, the
//! default) against the reference full-scan kernel on idle-heavy,
//! saturated and degraded-mesh workloads, plus the system-level idle
//! fast-forward, with a peak-RSS proxy and the bounded-statistics
//! memory evidence.
//!
//! Every workload is seeded and runs under *both* kernels; the harness
//! asserts the simulated observables (packets, hops, fault and health
//! counters) are identical before reporting any speed number, so a
//! reported speedup can never come from simulating something else.
//! Wall-clock rates vary with the machine; the simulated outcomes do
//! not. The machine-readable summary lands in `BENCH_perf.json`.
//!
//! A second section sweeps `KernelMode::Parallel` over 1/2/4/8 worker
//! threads on an idle-heavy 16×16 mesh and a saturated 32×32
//! sea-of-processors mesh, again asserting bit-identical observables
//! against the sequential kernel before recording any rate. Thread
//! speedups are *observations* of this host (recorded with its CPU
//! count in `BENCH_parallel.json`), never assertions — a single-core CI
//! runner legitimately reports ≤1×.
//!
//! Run with `cargo run --release -p multinoc-bench --bin exp_perf`
//! (set `EXP_PERF_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;
use std::time::Instant;

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{
    CycleWindow, FaultPlan, KernelMode, Noc, NocConfig, Packet, Port, RouterAddr, Routing,
};
use multinoc::serial::{HostCommand, SerialConfig, SYNC_BYTE};
use multinoc::{NodeId, System};
use r8::asm::assemble;

/// Seed shared by every workload.
const SEED: u64 = 0xE20_BEEF;

/// Workload scale: 1 for the CI smoke run, 10 for the full measurement.
fn scale() -> u64 {
    if std::env::var_os("EXP_PERF_SMOKE").is_some() {
        1
    } else {
        10
    }
}

/// Simulated observables that must be identical across kernels for the
/// same workload — the differential guard on every speed number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fingerprint {
    cycles: u64,
    packets_sent: u64,
    packets_delivered: u64,
    flit_hops: u64,
    faults: hermes_noc::stats::FaultCounters,
    health: hermes_noc::stats::HealthCounters,
}

impl Fingerprint {
    fn of(noc: &Noc) -> Self {
        let s = noc.stats();
        Self {
            cycles: s.cycles,
            packets_sent: s.packets_sent,
            packets_delivered: s.packets_delivered,
            flit_hops: s.flit_hops,
            faults: s.faults,
            health: s.health,
        }
    }
}

struct Measured {
    fingerprint: Fingerprint,
    seconds: f64,
}

/// Sparse bursts on a 16×16 mesh: a handful of packets every few
/// thousand cycles, then silence — the regime where the reference
/// kernel scans 256 idle routers per cycle for nothing.
fn idle_heavy(kernel: KernelMode, cycles: u64) -> Measured {
    let mut noc = Noc::new(NocConfig::mesh(16, 16).with_kernel_mode(kernel)).expect("valid mesh");
    let start = Instant::now();
    for now in 0..cycles {
        if now % 4_000 == 0 {
            let k = now / 4_000;
            for j in 0..4u64 {
                let s = (k * 31 + j * 7) % 256;
                let d = (k * 17 + j * 13 + 5) % 256;
                if s == d {
                    continue;
                }
                let src = RouterAddr::new((s % 16) as u8, (s / 16) as u8);
                let dst = RouterAddr::new((d % 16) as u8, (d / 16) as u8);
                noc.send(src, Packet::new(dst, vec![j as u16; 3]))
                    .expect("send");
            }
        }
        noc.step();
    }
    Measured {
        fingerprint: Fingerprint::of(&noc),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Uniform random traffic at a high injection rate on an 8×8 mesh: the
/// regime where (almost) every router is busy and the active set buys
/// nothing — the overhead guard.
fn saturated(kernel: KernelMode, cycles: u64) -> Measured {
    let mut noc = Noc::new(NocConfig::mesh(8, 8).with_kernel_mode(kernel)).expect("valid mesh");
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.25, 4, SEED);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    Measured {
        fingerprint: Fingerprint::of(&noc),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Moderate traffic on an 8×8 fault-tolerant mesh with two permanent
/// dead links: online diagnosis, wedged-worm flushes, epoch wavefronts
/// and detoured routing all run under both kernels.
fn degraded(kernel: KernelMode, cycles: u64) -> Measured {
    let config = NocConfig::mesh(8, 8)
        .with_kernel_mode(kernel)
        .with_routing(Routing::FaultTolerantXy);
    let mut noc = Noc::new(config).expect("valid mesh");
    noc.set_fault_plan(
        FaultPlan::new(SEED)
            .with_link_down(
                RouterAddr::new(3, 3),
                Port::East,
                CycleWindow::open_ended(0),
            )
            .with_link_down(
                RouterAddr::new(5, 2),
                Port::North,
                CycleWindow::open_ended(0),
            ),
    );
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.05, 4, SEED ^ 0xD15EA5E);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    Measured {
        fingerprint: Fingerprint::of(&noc),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Uniform random traffic on a 32×32 sea-of-processors mesh (10-bit
/// flits so 32 rows and columns stay addressable): every row has work
/// almost every cycle — the regime the row-sharded parallel kernel is
/// built for.
fn sea_saturated(kernel: KernelMode, cycles: u64) -> Measured {
    let config = NocConfig::mesh(32, 32)
        .with_flit_bits(10)
        .with_kernel_mode(kernel);
    let mut noc = Noc::new(config).expect("valid mesh");
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 4, SEED ^ 0x5EA);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    Measured {
        fingerprint: Fingerprint::of(&noc),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Thread counts the parallel sweep covers.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

struct ParallelRow {
    name: &'static str,
    detail: String,
    cycles: u64,
    /// Sequential active-set kernel, the speedup baseline.
    active_cps: f64,
    /// `(threads, cycles_per_sec)` for each sweep point.
    per_threads: Vec<(usize, f64)>,
}

/// Runs `run` under the sequential kernel and under the parallel kernel
/// at every sweep thread count, asserting all fingerprints identical
/// before any rate is recorded.
fn sweep(
    name: &'static str,
    detail: String,
    cycles: u64,
    run: impl Fn(KernelMode, u64) -> Measured,
) -> ParallelRow {
    let active = run(KernelMode::Active, cycles);
    let per_threads = SWEEP_THREADS
        .iter()
        .map(|&threads| {
            let parallel = run(KernelMode::Parallel { threads }, cycles);
            assert_eq!(
                active.fingerprint, parallel.fingerprint,
                "{name}: parallel kernel at {threads} threads disagrees on the simulated outcome"
            );
            (
                threads,
                parallel.fingerprint.cycles as f64 / parallel.seconds,
            )
        })
        .collect();
    ParallelRow {
        name,
        detail,
        cycles: active.fingerprint.cycles,
        active_cps: active.fingerprint.cycles as f64 / active.seconds,
        per_threads,
    }
}

/// One full host-driven MultiNoC run over a real-baud serial link with
/// lossy delivery: sync, activate P1 over the wire, run a small program
/// to halt. Nearly all cycles sit in baud-tick and retransmission-
/// backoff gaps — the system-level fast-forward's home turf.
fn multinoc_run(fast_forward: bool) -> (u64, f64) {
    let mut sys = System::builder()
        // Fault-tolerant routing so a drop-wedged worm is diagnosed and
        // flushed rather than hanging the mesh (plain Xy has no flush).
        .noc(NocConfig::multinoc().with_routing(Routing::FaultTolerantXy))
        .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    // Mild loss: enough to push the reliability layer through its
    // backoff timers (more idle-gap cycles to jump) without wedging a
    // worm badly enough for the progress watchdog to call DeadLink.
    sys.set_fault_plan(FaultPlan::new(SEED).with_drop_rate(0.08));
    let program = assemble(
        "LIW R1, 40\n\
         loop: SUBI R1, 1\n\
         JMPZD done\n\
         JMPD loop\n\
         done: HALT",
    )
    .expect("assembles");
    sys.memory_mut(NodeId(1))
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.link_mut().host_send(&[SYNC_BYTE]);
    sys.link_mut()
        .host_send(&HostCommand::Activate { node: 1 }.to_bytes());
    let budget = 10_000_000;
    let start = Instant::now();
    let elapsed = if fast_forward {
        sys.run_until_halted(budget).expect("halts")
    } else {
        // Identical exit condition, stepped one cycle at a time.
        let from = sys.cycle();
        loop {
            if sys.all_halted() && sys.noc().is_idle() && sys.link().is_idle() && sys.net_quiet() {
                break sys.cycle() - from;
            }
            assert!(sys.cycle() - from < budget, "budget exhausted");
            sys.step().expect("step");
        }
    };
    (elapsed, start.elapsed().as_secs_f64())
}

/// Long bounded-window run: many more packets than the window retains,
/// proving the statistics stay O(window), not O(packets).
fn bounded_stats(packets: u64) -> (u64, usize, u64, usize) {
    let window = 4_096;
    let mut noc = Noc::new(NocConfig::mesh(4, 4).with_stats_window(window)).expect("valid mesh");
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 2, SEED ^ 0xB0);
    while noc.stats().packets_sent < packets {
        gen.drive(&mut noc, 2_000, 1_000_000).expect("drive");
    }
    let s = noc.stats();
    (
        s.packets_sent,
        s.records().len(),
        s.evicted_records(),
        window,
    )
}

/// Peak resident set (VmHWM) in KiB from `/proc/self/status`; `None`
/// where the proc filesystem is unavailable.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

struct Row {
    name: &'static str,
    detail: String,
    cycles: u64,
    reference_cps: f64,
    active_cps: f64,
    rss_kib: Option<u64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.active_cps / self.reference_cps
    }
}

fn measure(
    name: &'static str,
    detail: String,
    cycles: u64,
    run: impl Fn(KernelMode, u64) -> Measured,
) -> Row {
    let reference = run(KernelMode::Reference, cycles);
    let active = run(KernelMode::Active, cycles);
    assert_eq!(
        reference.fingerprint, active.fingerprint,
        "{name}: kernels disagree on the simulated outcome"
    );
    Row {
        name,
        detail,
        cycles: reference.fingerprint.cycles,
        reference_cps: reference.fingerprint.cycles as f64 / reference.seconds,
        active_cps: active.fingerprint.cycles as f64 / active.seconds,
        rss_kib: peak_rss_kib(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E20: simulation-kernel performance (seed {SEED:#x}, scale {scale}x)\n\
         cycles/second, host wall clock; every workload runs under both\n\
         kernels and must produce identical simulated observables\n"
    );

    let rows = vec![
        measure(
            "idle_heavy",
            "16x16 mesh, 4-packet burst every 4k cycles".into(),
            20_000 * scale,
            idle_heavy,
        ),
        measure(
            "saturated",
            "8x8 mesh, uniform traffic at 0.25 flits/node/cycle".into(),
            4_000 * scale,
            saturated,
        ),
        measure(
            "degraded",
            "8x8 fault-tolerant mesh, 2 permanent dead links".into(),
            4_000 * scale,
            degraded,
        ),
    ];

    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>15} {:>15} {:>9}",
        "workload", "cycles", "reference c/s", "active c/s", "speedup"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>15.0} {:>15.0} {:>8.1}x",
            r.name,
            r.cycles,
            r.reference_cps,
            r.active_cps,
            r.speedup()
        );
        let _ = writeln!(out, "               ({})", r.detail);
    }

    // Parallel-kernel thread sweep: observations, not assertions — the
    // only hard requirement is bit-identical simulated outcomes, checked
    // inside `sweep` before any rate is recorded.
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let parallel_rows = vec![
        sweep(
            "idle_heavy_16x16",
            "16x16 mesh, 4-packet burst every 4k cycles".into(),
            20_000 * scale,
            idle_heavy,
        ),
        sweep(
            "sea_saturated_32x32",
            "32x32 mesh (10-bit flits), uniform traffic at 0.2 flits/node/cycle".into(),
            1_500 * scale,
            sea_saturated,
        ),
    ];
    let _ = writeln!(
        out,
        "\n  parallel kernel thread sweep (host has {host_cpus} CPU(s);\n\
         speedups are wall-clock observations on this host):"
    );
    for r in &parallel_rows {
        let _ = writeln!(
            out,
            "  {:<20} {:>12} cycles, active {:>12.0} c/s",
            r.name, r.cycles, r.active_cps
        );
        for &(threads, cps) in &r.per_threads {
            let _ = writeln!(
                out,
                "    {threads} thread(s): {cps:>12.0} c/s ({:.2}x vs active)",
                cps / r.active_cps
            );
        }
        let _ = writeln!(out, "               ({})", r.detail);
    }

    // System-level idle fast-forward: same workload, stepped vs jumped.
    let runs = 4 * scale;
    let (mut ff_cycles, mut ff_secs) = (0u64, 0.0f64);
    let (mut st_cycles, mut st_secs) = (0u64, 0.0f64);
    for _ in 0..runs {
        let (c, s) = multinoc_run(true);
        ff_cycles += c;
        ff_secs += s;
        let (c2, s2) = multinoc_run(false);
        st_cycles += c2;
        st_secs += s2;
        assert_eq!(
            c, c2,
            "fast-forward and single-stepping disagree on elapsed cycles"
        );
    }
    let ff_cps = ff_cycles as f64 / ff_secs;
    let st_cps = st_cycles as f64 / st_secs;
    let _ = writeln!(
        out,
        "\n  multinoc idle fast-forward ({runs} host-driven runs over a\n\
         115200-baud link with 8% packet drops, {} cycles each):\n\
         stepped {st_cps:.0} c/s, fast-forwarded {ff_cps:.0} c/s \
         ({:.1}x)",
        ff_cycles / runs,
        ff_cps / st_cps
    );

    let (sent, retained, evicted, window) = bounded_stats(20_000 * scale);
    let _ = writeln!(
        out,
        "\n  bounded statistics: {sent} packets sent, {retained} records\n\
         retained (window {window}), {evicted} evicted into streaming\n\
         aggregates — per-packet memory is O(window), not O(traffic)"
    );
    let rss = peak_rss_kib();
    match rss {
        Some(kib) => {
            let _ = writeln!(out, "  peak RSS proxy (VmHWM): {kib} KiB");
        }
        None => {
            let _ = writeln!(out, "  peak RSS proxy unavailable (no /proc/self/status)");
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"experiment\": \"E20 simulation-kernel performance\","
    );
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"workloads\": [");
    for r in &rows {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"reference_cycles_per_sec\": {:.0}, \
             \"active_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \"peak_rss_kib\": {}}},",
            r.name,
            r.cycles,
            r.reference_cps,
            r.active_cps,
            r.speedup(),
            r.rss_kib.map_or("null".into(), |k| k.to_string()),
        );
    }
    let _ = writeln!(
        json,
        "    {{\"name\": \"multinoc_idle\", \"cycles\": {ff_cycles}, \
         \"reference_cycles_per_sec\": {st_cps:.0}, \
         \"active_cycles_per_sec\": {ff_cps:.0}, \"speedup\": {:.2}, \
         \"peak_rss_kib\": {}}}",
        ff_cps / st_cps,
        rss.map_or("null".into(), |k| k.to_string()),
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"bounded_stats\": {{\"packets_sent\": {sent}, \"records_retained\": {retained}, \
         \"records_evicted\": {evicted}, \"stats_window\": {window}}},"
    );
    let _ = writeln!(
        json,
        "  \"peak_rss_kib\": {}",
        rss.map_or("null".into(), |k| k.to_string())
    );
    json.push_str("}\n");

    std::fs::write("BENCH_perf.json", &json)?;

    let mut pjson = String::from("{\n");
    let _ = writeln!(
        pjson,
        "  \"experiment\": \"E20 parallel-kernel thread sweep\","
    );
    let _ = writeln!(pjson, "  \"seed\": {SEED},");
    let _ = writeln!(pjson, "  \"scale\": {scale},");
    let _ = writeln!(pjson, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        pjson,
        "  \"note\": \"all kernels asserted bit-identical before any rate; \
         speedups are wall-clock observations of this host, not assertions\","
    );
    let _ = writeln!(pjson, "  \"workloads\": [");
    for (i, r) in parallel_rows.iter().enumerate() {
        let _ = writeln!(
            pjson,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"active_cycles_per_sec\": {:.0},",
            r.name, r.cycles, r.active_cps
        );
        let _ = writeln!(pjson, "     \"threads\": [");
        for (j, &(threads, cps)) in r.per_threads.iter().enumerate() {
            let _ = writeln!(
                pjson,
                "       {{\"threads\": {threads}, \"cycles_per_sec\": {cps:.0}, \
                 \"speedup_vs_active\": {:.3}}}{}",
                cps / r.active_cps,
                if j + 1 < r.per_threads.len() { "," } else { "" },
            );
        }
        let _ = writeln!(
            pjson,
            "     ]}}{}",
            if i + 1 < parallel_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(pjson, "  ]");
    pjson.push_str("}\n");
    std::fs::write("BENCH_parallel.json", &pjson)?;

    print!("{out}");
    println!("\nMachine-readable summaries written to BENCH_perf.json and BENCH_parallel.json");
    Ok(())
}

//! E20 (extension) — simulation-kernel performance: host cycles/second
//! of the quiescence-aware active-set kernel (`KernelMode::Active`, the
//! default) against the reference full-scan kernel on idle-heavy,
//! saturated and degraded-mesh workloads, plus the system-level idle
//! fast-forward, with a peak-RSS proxy and the bounded-statistics
//! memory evidence.
//!
//! Every workload is seeded and runs under *both* kernels; the harness
//! asserts the simulated observables (packets, hops, fault and health
//! counters) are identical before reporting any speed number, so a
//! reported speedup can never come from simulating something else.
//! Wall-clock rates vary with the machine; the simulated outcomes do
//! not. The machine-readable summary lands in `BENCH_perf.json`.
//!
//! A second section sweeps `KernelMode::Parallel` over 1/2/4/8 worker
//! threads on an idle-heavy 16×16 mesh and a saturated 32×32
//! sea-of-processors mesh, again asserting bit-identical observables
//! against the sequential kernel before recording any rate. Thread
//! speedups are *observations* of this host (recorded with its CPU
//! count in `BENCH_parallel.json`), never assertions — a single-core CI
//! runner legitimately reports ≤1×.
//!
//! Run with `cargo run --release -p multinoc-bench --bin exp_perf`
//! (set `EXP_PERF_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;
use std::time::Instant;

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{
    CycleWindow, FaultPlan, KernelMode, Noc, NocConfig, Packet, PhaseProfile, Port, RouterAddr,
    Routing,
};
use multinoc::serial::{HostCommand, SerialConfig, SYNC_BYTE};
use multinoc::{NodeId, System};
use r8::asm::assemble;

/// Seed shared by every workload.
const SEED: u64 = 0xE20_BEEF;

/// Workload scale: 1 for the CI smoke run, 10 for the full measurement.
fn scale() -> u64 {
    if std::env::var_os("EXP_PERF_SMOKE").is_some() {
        1
    } else {
        10
    }
}

/// Simulated observables that must be identical across kernels for the
/// same workload — the differential guard on every speed number.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fingerprint {
    cycles: u64,
    packets_sent: u64,
    packets_delivered: u64,
    flit_hops: u64,
    faults: hermes_noc::stats::FaultCounters,
    health: hermes_noc::stats::HealthCounters,
}

impl Fingerprint {
    fn of(noc: &Noc) -> Self {
        let s = noc.stats();
        Self {
            cycles: s.cycles,
            packets_sent: s.packets_sent,
            packets_delivered: s.packets_delivered,
            flit_hops: s.flit_hops,
            faults: s.faults,
            health: s.health,
        }
    }
}

struct Measured {
    fingerprint: Fingerprint,
    seconds: f64,
    /// End-to-end latency `(p50, p95, p99)` in cycles, from the bounded
    /// histogram; `None` before the first delivery.
    latency: (Option<u64>, Option<u64>, Option<u64>),
    /// Kernel phase breakdown; `Some` only when the profiler was on
    /// (parallel sweep points).
    phases: Option<PhaseProfile>,
}

impl Measured {
    /// Captures everything a workload reports: the differential
    /// fingerprint, the elapsed wall clock, the latency percentiles and
    /// (when profiling) the phase breakdown.
    fn capture(noc: &Noc, start: Instant) -> Self {
        let hist = noc.stats().latency_histogram();
        Self {
            fingerprint: Fingerprint::of(noc),
            seconds: start.elapsed().as_secs_f64(),
            latency: (hist.p50(), hist.p95(), hist.p99()),
            phases: noc.phase_profile(),
        }
    }
}

/// Turns the phase profiler on for parallel kernels, where the
/// decide/commit/barrier breakdown explains the observed scaling.
fn profile_if_parallel(noc: &mut Noc, kernel: KernelMode) {
    if matches!(kernel, KernelMode::Parallel { .. }) {
        noc.enable_phase_profiler();
    }
}

/// Sparse bursts on a 16×16 mesh: a handful of packets every few
/// thousand cycles, then silence — the regime where the reference
/// kernel scans 256 idle routers per cycle for nothing.
fn idle_heavy(kernel: KernelMode, cycles: u64) -> Measured {
    let mut noc = Noc::new(NocConfig::mesh(16, 16).with_kernel_mode(kernel)).expect("valid mesh");
    profile_if_parallel(&mut noc, kernel);
    let start = Instant::now();
    // Bursts land at 4k-cycle boundaries, so the driving is naturally
    // chunked: each burst is submitted, then the network runs to the
    // next boundary in one call (batched windows under the parallel
    // kernel, plain per-cycle stepping under the others).
    let mut now = 0;
    while now < cycles {
        if now % 4_000 == 0 {
            let k = now / 4_000;
            for j in 0..4u64 {
                let s = (k * 31 + j * 7) % 256;
                let d = (k * 17 + j * 13 + 5) % 256;
                if s == d {
                    continue;
                }
                let src = RouterAddr::new((s % 16) as u8, (s / 16) as u8);
                let dst = RouterAddr::new((d % 16) as u8, (d / 16) as u8);
                noc.send(src, Packet::new(dst, vec![j as u16; 3]))
                    .expect("send");
            }
        }
        let chunk = (4_000 - now % 4_000).min(cycles - now);
        noc.run(chunk);
        now += chunk;
    }
    Measured::capture(&noc, start)
}

/// Uniform random traffic at a high injection rate on an 8×8 mesh: the
/// regime where (almost) every router is busy and the active set buys
/// nothing — the overhead guard.
fn saturated(kernel: KernelMode, cycles: u64) -> Measured {
    let mut noc = Noc::new(NocConfig::mesh(8, 8).with_kernel_mode(kernel)).expect("valid mesh");
    profile_if_parallel(&mut noc, kernel);
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.25, 4, SEED);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    Measured::capture(&noc, start)
}

/// Moderate traffic on an 8×8 fault-tolerant mesh with two permanent
/// dead links: online diagnosis, wedged-worm flushes, epoch wavefronts
/// and detoured routing all run under both kernels.
fn degraded(kernel: KernelMode, cycles: u64) -> Measured {
    let config = NocConfig::mesh(8, 8)
        .with_kernel_mode(kernel)
        .with_routing(Routing::FaultTolerantXy);
    let mut noc = Noc::new(config).expect("valid mesh");
    profile_if_parallel(&mut noc, kernel);
    noc.set_fault_plan(
        FaultPlan::new(SEED)
            .with_link_down(
                RouterAddr::new(3, 3),
                Port::East,
                CycleWindow::open_ended(0),
            )
            .with_link_down(
                RouterAddr::new(5, 2),
                Port::North,
                CycleWindow::open_ended(0),
            ),
    )
    .expect("valid fault plan");
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.05, 4, SEED ^ 0xD15EA5E);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    Measured::capture(&noc, start)
}

/// Uniform random traffic on a 32×32 sea-of-processors mesh (10-bit
/// flits so 32 rows and columns stay addressable): every row has work
/// almost every cycle — the regime the row-sharded parallel kernel is
/// built for.
fn sea_saturated(kernel: KernelMode, cycles: u64) -> Measured {
    let config = NocConfig::mesh(32, 32)
        .with_flit_bits(10)
        .with_kernel_mode(kernel);
    let mut noc = Noc::new(config).expect("valid mesh");
    profile_if_parallel(&mut noc, kernel);
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 4, SEED ^ 0x5EA);
    let start = Instant::now();
    // Batched driving (16 cycles of traffic per boundary): the network
    // advances in window-sized runs, so the parallel kernel pays one
    // merge — and three barriers per cycle instead of four — per window.
    gen.drive_batched(&mut noc, cycles, 16, 1_000_000)
        .expect("drive");
    Measured::capture(&noc, start)
}

/// Thread counts the parallel sweep covers: powers of two up to the
/// host's available parallelism (capped at 8 — the row-shard counts the
/// mesh heights here can use), plus exactly one deliberately
/// oversubscribed point (flagged) so the cost of oversubscription stays
/// measured without polluting the scaling curve.
fn sweep_threads(host_cpus: usize) -> Vec<(usize, bool)> {
    let cap = host_cpus.clamp(1, 8);
    let mut threads: Vec<(usize, bool)> = Vec::new();
    let mut t = 1;
    while t <= cap {
        threads.push((t, false));
        t *= 2;
    }
    let over = (cap * 2).min(16);
    threads.push((over, true));
    threads
}

/// One parallel sweep point: rate plus the profiler's phase breakdown.
struct SweepPoint {
    threads: usize,
    /// More worker threads than host CPUs: recorded for visibility, not
    /// part of the scaling curve.
    oversubscribed: bool,
    cps: f64,
    phases: Option<PhaseProfile>,
}

struct ParallelRow {
    name: &'static str,
    detail: String,
    cycles: u64,
    /// Sequential active-set kernel, the speedup baseline.
    active_cps: f64,
    per_threads: Vec<SweepPoint>,
}

/// Runs `run` under the sequential kernel and under the parallel kernel
/// at every sweep thread count, asserting all fingerprints identical
/// before any rate is recorded.
fn sweep(
    name: &'static str,
    detail: String,
    cycles: u64,
    threads: &[(usize, bool)],
    run: impl Fn(KernelMode, u64) -> Measured,
) -> ParallelRow {
    let active = run(KernelMode::Active, cycles);
    let per_threads = threads
        .iter()
        .map(|&(threads, oversubscribed)| {
            let parallel = run(KernelMode::Parallel { threads }, cycles);
            assert_eq!(
                active.fingerprint, parallel.fingerprint,
                "{name}: parallel kernel at {threads} threads disagrees on the simulated outcome"
            );
            SweepPoint {
                threads,
                oversubscribed,
                cps: parallel.fingerprint.cycles as f64 / parallel.seconds,
                phases: parallel.phases,
            }
        })
        .collect();
    ParallelRow {
        name,
        detail,
        cycles: active.fingerprint.cycles,
        active_cps: active.fingerprint.cycles as f64 / active.seconds,
        per_threads,
    }
}

/// One full host-driven MultiNoC run over a real-baud serial link with
/// lossy delivery: sync, activate P1 over the wire, run a small program
/// to halt. Nearly all cycles sit in baud-tick and retransmission-
/// backoff gaps — the system-level fast-forward's home turf.
fn multinoc_run(fast_forward: bool) -> (u64, f64) {
    let mut sys = System::builder()
        // Fault-tolerant routing so a drop-wedged worm is diagnosed and
        // flushed rather than hanging the mesh (plain Xy has no flush).
        .noc(NocConfig::multinoc().with_routing(Routing::FaultTolerantXy))
        .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    // Mild loss: enough to push the reliability layer through its
    // backoff timers (more idle-gap cycles to jump) without wedging a
    // worm badly enough for the progress watchdog to call DeadLink.
    sys.set_fault_plan(FaultPlan::new(SEED).with_drop_rate(0.08))
        .expect("valid fault plan");
    let program = assemble(
        "LIW R1, 40\n\
         loop: SUBI R1, 1\n\
         JMPZD done\n\
         JMPD loop\n\
         done: HALT",
    )
    .expect("assembles");
    sys.memory_mut(NodeId(1))
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.link_mut().host_send(&[SYNC_BYTE]);
    sys.link_mut()
        .host_send(&HostCommand::Activate { node: 1 }.to_bytes());
    let budget = 10_000_000;
    let start = Instant::now();
    let elapsed = if fast_forward {
        sys.run_until_halted(budget).expect("halts")
    } else {
        // Identical exit condition, stepped one cycle at a time.
        let from = sys.cycle();
        loop {
            if sys.all_halted() && sys.noc().is_idle() && sys.link().is_idle() && sys.net_quiet() {
                break sys.cycle() - from;
            }
            assert!(sys.cycle() - from < budget, "budget exhausted");
            sys.step().expect("step");
        }
    };
    (elapsed, start.elapsed().as_secs_f64())
}

/// Long bounded-window run: many more packets than the window retains,
/// proving the statistics stay O(window), not O(packets).
fn bounded_stats(packets: u64) -> (u64, usize, u64, usize) {
    let window = 4_096;
    let mut noc = Noc::new(NocConfig::mesh(4, 4).with_stats_window(window)).expect("valid mesh");
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 2, SEED ^ 0xB0);
    while noc.stats().packets_sent < packets {
        gen.drive(&mut noc, 2_000, 1_000_000).expect("drive");
    }
    let s = noc.stats();
    (
        s.packets_sent,
        s.records().len(),
        s.evicted_records(),
        window,
    )
}

/// Peak resident set (VmHWM) in KiB from `/proc/self/status`; `None`
/// where the proc filesystem is unavailable.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

struct Row {
    name: &'static str,
    detail: String,
    cycles: u64,
    reference_cps: f64,
    active_cps: f64,
    /// End-to-end latency `(p50, p95, p99)` in cycles (identical across
    /// kernels — part of the simulated outcome).
    latency: (Option<u64>, Option<u64>, Option<u64>),
    rss_kib: Option<u64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.active_cps / self.reference_cps
    }
}

fn measure(
    name: &'static str,
    detail: String,
    cycles: u64,
    run: impl Fn(KernelMode, u64) -> Measured,
) -> Row {
    let reference = run(KernelMode::Reference, cycles);
    let active = run(KernelMode::Active, cycles);
    assert_eq!(
        reference.fingerprint, active.fingerprint,
        "{name}: kernels disagree on the simulated outcome"
    );
    assert_eq!(
        reference.latency, active.latency,
        "{name}: kernels disagree on the latency percentiles"
    );
    Row {
        name,
        detail,
        cycles: reference.fingerprint.cycles,
        reference_cps: reference.fingerprint.cycles as f64 / reference.seconds,
        active_cps: active.fingerprint.cycles as f64 / active.seconds,
        latency: active.latency,
        rss_kib: peak_rss_kib(),
    }
}

/// Renders an optional cycle count for a table cell.
fn opt_cycles(v: Option<u64>) -> String {
    v.map_or_else(|| "-".into(), |c| c.to_string())
}

/// Renders an optional cycle count as a JSON value.
fn opt_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |c| c.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E20: simulation-kernel performance (seed {SEED:#x}, scale {scale}x)\n\
         cycles/second, host wall clock; every workload runs under both\n\
         kernels and must produce identical simulated observables\n"
    );

    let rows = vec![
        measure(
            "idle_heavy",
            "16x16 mesh, 4-packet burst every 4k cycles".into(),
            20_000 * scale,
            idle_heavy,
        ),
        measure(
            "saturated",
            "8x8 mesh, uniform traffic at 0.25 flits/node/cycle".into(),
            4_000 * scale,
            saturated,
        ),
        measure(
            "degraded",
            "8x8 fault-tolerant mesh, 2 permanent dead links".into(),
            4_000 * scale,
            degraded,
        ),
    ];

    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>15} {:>15} {:>9}",
        "workload", "cycles", "reference c/s", "active c/s", "speedup"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>15.0} {:>15.0} {:>8.1}x",
            r.name,
            r.cycles,
            r.reference_cps,
            r.active_cps,
            r.speedup()
        );
        let _ = writeln!(
            out,
            "               ({}; latency p50/p95/p99 {}/{}/{} cycles)",
            r.detail,
            opt_cycles(r.latency.0),
            opt_cycles(r.latency.1),
            opt_cycles(r.latency.2),
        );
    }

    // Parallel-kernel thread sweep: observations, not assertions — the
    // only hard requirement is bit-identical simulated outcomes, checked
    // inside `sweep` before any rate is recorded.
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let threads = sweep_threads(host_cpus);
    let parallel_rows = vec![
        sweep(
            "idle_heavy_16x16",
            "16x16 mesh, 4-packet burst every 4k cycles".into(),
            20_000 * scale,
            &threads,
            idle_heavy,
        ),
        sweep(
            "sea_saturated_32x32",
            "32x32 mesh (10-bit flits), uniform traffic at 0.2 flits/node/cycle, \
             16-cycle batched windows"
                .into(),
            1_500 * scale,
            &threads,
            sea_saturated,
        ),
    ];

    // On a multi-core host the batched-window engine must not lose to
    // its own single-thread configuration on the saturated mesh — that
    // was the whole point of killing the per-cycle barriers. Smoke runs
    // are too short for a strict comparison, so they get a tolerance;
    // EXP_PERF_NO_SPEEDUP_CHECK=1 disables the gate entirely for
    // pathological hosts (heavily shared CI machines).
    if host_cpus >= 2 && std::env::var_os("EXP_PERF_NO_SPEEDUP_CHECK").is_none() {
        let sea = parallel_rows
            .iter()
            .find(|r| r.name == "sea_saturated_32x32")
            .expect("saturated sweep row exists");
        let rate = |t: usize| {
            sea.per_threads
                .iter()
                .find(|p| p.threads == t)
                .map(|p| p.cps)
        };
        if let (Some(r1), Some(r2)) = (rate(1), rate(2)) {
            let floor = if scale == 1 { 0.8 * r1 } else { r1 };
            assert!(
                r2 > floor,
                "saturated 32x32: threads=2 ({r2:.0} c/s) is not faster than \
                 threads=1 ({r1:.0} c/s) on a {host_cpus}-CPU host"
            );
        }
    }

    let _ = writeln!(
        out,
        "\n  parallel kernel thread sweep (host has {host_cpus} CPU(s);\n\
         sweep clamped to host parallelism, one oversubscribed point kept;\n\
         speedups are wall-clock observations on this host):"
    );
    for r in &parallel_rows {
        let _ = writeln!(
            out,
            "  {:<20} {:>12} cycles, active {:>12.0} c/s",
            r.name, r.cycles, r.active_cps
        );
        for p in &r.per_threads {
            let _ = writeln!(
                out,
                "    {} thread(s): {:>12.0} c/s ({:.2}x vs active){}",
                p.threads,
                p.cps,
                p.cps / r.active_cps,
                if p.oversubscribed {
                    " [oversubscribed]"
                } else {
                    ""
                },
            );
            if let Some(ph) = &p.phases {
                let total = ph.total_nanos().max(1) as f64;
                let _ = writeln!(
                    out,
                    "      phases: local {:.0}% decide {:.0}% apply-src {:.0}% \
                     apply-dst {:.0}% barrier {:.0}%",
                    100.0 * ph.local_nanos as f64 / total,
                    100.0 * ph.decide_nanos as f64 / total,
                    100.0 * ph.apply_src_nanos as f64 / total,
                    100.0 * ph.apply_dst_nanos as f64 / total,
                    100.0 * ph.barrier_nanos as f64 / total,
                );
            }
        }
        let _ = writeln!(out, "               ({})", r.detail);
    }

    // System-level idle fast-forward: same workload, stepped vs jumped.
    let runs = 4 * scale;
    let (mut ff_cycles, mut ff_secs) = (0u64, 0.0f64);
    let (mut st_cycles, mut st_secs) = (0u64, 0.0f64);
    for _ in 0..runs {
        let (c, s) = multinoc_run(true);
        ff_cycles += c;
        ff_secs += s;
        let (c2, s2) = multinoc_run(false);
        st_cycles += c2;
        st_secs += s2;
        assert_eq!(
            c, c2,
            "fast-forward and single-stepping disagree on elapsed cycles"
        );
    }
    let ff_cps = ff_cycles as f64 / ff_secs;
    let st_cps = st_cycles as f64 / st_secs;
    let _ = writeln!(
        out,
        "\n  multinoc idle fast-forward ({runs} host-driven runs over a\n\
         115200-baud link with 8% packet drops, {} cycles each):\n\
         stepped {st_cps:.0} c/s, fast-forwarded {ff_cps:.0} c/s \
         ({:.1}x)",
        ff_cycles / runs,
        ff_cps / st_cps
    );

    let (sent, retained, evicted, window) = bounded_stats(20_000 * scale);
    let _ = writeln!(
        out,
        "\n  bounded statistics: {sent} packets sent, {retained} records\n\
         retained (window {window}), {evicted} evicted into streaming\n\
         aggregates — per-packet memory is O(window), not O(traffic)"
    );
    let rss = peak_rss_kib();
    match rss {
        Some(kib) => {
            let _ = writeln!(out, "  peak RSS proxy (VmHWM): {kib} KiB");
        }
        None => {
            let _ = writeln!(out, "  peak RSS proxy unavailable (no /proc/self/status)");
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"experiment\": \"E20 simulation-kernel performance\","
    );
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"workloads\": [");
    for r in &rows {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"reference_cycles_per_sec\": {:.0}, \
             \"active_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \
             \"peak_rss_kib\": {}}},",
            r.name,
            r.cycles,
            r.reference_cps,
            r.active_cps,
            r.speedup(),
            opt_json(r.latency.0),
            opt_json(r.latency.1),
            opt_json(r.latency.2),
            r.rss_kib.map_or("null".into(), |k| k.to_string()),
        );
    }
    let _ = writeln!(
        json,
        "    {{\"name\": \"multinoc_idle\", \"cycles\": {ff_cycles}, \
         \"reference_cycles_per_sec\": {st_cps:.0}, \
         \"active_cycles_per_sec\": {ff_cps:.0}, \"speedup\": {:.2}, \
         \"peak_rss_kib\": {}}}",
        ff_cps / st_cps,
        rss.map_or("null".into(), |k| k.to_string()),
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"bounded_stats\": {{\"packets_sent\": {sent}, \"records_retained\": {retained}, \
         \"records_evicted\": {evicted}, \"stats_window\": {window}}},"
    );
    let _ = writeln!(
        json,
        "  \"peak_rss_kib\": {}",
        rss.map_or("null".into(), |k| k.to_string())
    );
    json.push_str("}\n");

    std::fs::write("BENCH_perf.json", &json)?;

    let mut pjson = String::from("{\n");
    let _ = writeln!(
        pjson,
        "  \"experiment\": \"E20 parallel-kernel thread sweep\","
    );
    let _ = writeln!(pjson, "  \"seed\": {SEED},");
    let _ = writeln!(pjson, "  \"scale\": {scale},");
    let _ = writeln!(pjson, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(pjson, "  \"sweep_clamped_to_host\": true,");
    let _ = writeln!(
        pjson,
        "  \"note\": \"all kernels asserted bit-identical before any rate; \
         thread counts clamped to host parallelism (one oversubscribed point \
         kept, flagged); speedups are wall-clock observations of this host, \
         not assertions\","
    );
    let _ = writeln!(pjson, "  \"workloads\": [");
    for (i, r) in parallel_rows.iter().enumerate() {
        let _ = writeln!(
            pjson,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"active_cycles_per_sec\": {:.0},",
            r.name, r.cycles, r.active_cps
        );
        let _ = writeln!(pjson, "     \"threads\": [");
        for (j, p) in r.per_threads.iter().enumerate() {
            let phases = p.phases.as_ref().map_or("null".to_string(), |ph| {
                format!(
                    "{{\"local_nanos\": {}, \"decide_nanos\": {}, \
                     \"apply_src_nanos\": {}, \"apply_dst_nanos\": {}, \
                     \"barrier_nanos\": {}, \"barrier_fraction\": {:.4}}}",
                    ph.local_nanos,
                    ph.decide_nanos,
                    ph.apply_src_nanos,
                    ph.apply_dst_nanos,
                    ph.barrier_nanos,
                    ph.barrier_fraction(),
                )
            });
            let _ = writeln!(
                pjson,
                "       {{\"threads\": {}, \"oversubscribed\": {}, \
                 \"cycles_per_sec\": {:.0}, \
                 \"speedup_vs_active\": {:.3}, \"phases\": {phases}}}{}",
                p.threads,
                p.oversubscribed,
                p.cps,
                p.cps / r.active_cps,
                if j + 1 < r.per_threads.len() { "," } else { "" },
            );
        }
        let _ = writeln!(
            pjson,
            "     ]}}{}",
            if i + 1 < parallel_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(pjson, "  ]");
    pjson.push_str("}\n");
    std::fs::write("BENCH_parallel.json", &pjson)?;

    print!("{out}");
    println!("\nMachine-readable summaries written to BENCH_perf.json and BENCH_parallel.json");
    Ok(())
}

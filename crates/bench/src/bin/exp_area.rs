//! E3 — §3 prototyping: device utilization (98% slices / 78% LUTs on the
//! XC2S200E) and the Fig. 7 floorplan, including the comparison with
//! automatic placement that motivated manual floorplanning.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_area`.

use floorplan::device::Device;
use floorplan::estimate::{multinoc_components, utilization};
use floorplan::place::{paper_layout, Placer};
use multinoc_bench::table_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::xc2s200e();
    let (components, nets) = multinoc_components();

    println!("E3: resource utilization on the {}\n", device.name);
    table_row!("component", "slices", "LUTs", "BlockRAMs");
    for c in &components {
        table_row!(c.name.clone(), c.slices, c.luts, c.brams);
    }
    let u = utilization(&components, &device);
    table_row!(
        "TOTAL",
        format!("{} ({:.0}%)", u.slices_used, u.slice_fraction() * 100.0),
        format!("{} ({:.0}%)", u.luts_used, u.lut_fraction() * 100.0),
        format!("{}/{}", u.brams_used, u.brams_total)
    );
    println!("\npaper reports: 98% of slices, 78% of LUTs — reproduced above.\n");

    let plan = paper_layout(&device, &components).map_err(std::io::Error::other)?;
    println!("Fig. 7 floorplan (r router, P processor, S serial, M memory):\n");
    print!("{}", plan.ascii_art());
    println!();
    table_row!(
        "placement",
        "legal",
        "wirelength",
        "router centr.",
        "serial->pads"
    );
    table_row!(
        "manual (Fig. 7)",
        plan.is_legal(),
        format!("{:.0}", plan.wirelength(&nets)),
        format!("{:.1}", plan.router_centrality()),
        format!("{:.1}", plan.serial_pad_distance())
    );
    for seed in [1u64, 42, 99] {
        let auto = Placer::new(device.clone(), components.clone(), nets.clone())
            .seed(seed)
            .iterations(30_000)
            .run();
        table_row!(
            format!("annealed (seed {seed})"),
            format!("{} (+{} overlap)", auto.is_legal(), auto.overlap()),
            format!("{:.0}", auto.wirelength(&nets)),
            format!("{:.1}", auto.router_centrality()),
            format!("{:.1}", auto.serial_pad_distance())
        );
    }
    println!(
        "\nconclusion: at 98% utilization the automatic flow never legalizes —\n\
         \"the use of synthesis and implementation options alone was not sufficient\" (§3);\n\
         the encoded Fig. 7 layout is legal and central."
    );
    Ok(())
}

//! E19 (extension) — graceful degradation: delivered-operation rate and
//! latency overhead of host write/read round trips as permanent link
//! failures accumulate on 2×2..4×4 meshes under `FaultTolerantXy`.
//!
//! Each configuration kills a deterministic pseudo-random set of mesh
//! edges (both directions, permanently, from cycle 0). The network's
//! online diagnosis has to notice each dead link from failed hop
//! handshakes, flush the wedged wormhole, bump the reconfiguration
//! epoch and detour later traffic — while the reliability layer resets
//! its retry clocks on the epoch change instead of burning retries.
//! Failure sets that would partition the mesh are rejected up front
//! (they are the `Unreachable` regime, not the degraded one); on the
//! 2×2 mesh every 2-edge removal partitions, which the report states
//! rather than hides.
//!
//! Everything is seeded: the sweep runs **twice** with the same seed and
//! asserts byte-identical reports (and JSON) before printing. The
//! machine-readable summary lands in `BENCH_degradation.json`.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_degradation`.

use std::fmt::Write as _;

use hermes_noc::{
    CycleWindow, FaultPlan, NocConfig, Port, RouteTable, RouterAddr, Routing, Topology,
};
use multinoc::{host::Host, NodeId, System, SystemError};

/// Seed shared by every configuration of the sweep.
const SEED: u64 = 0xDE6A_DE19;
/// Write+read round trips attempted per trial.
const OPS: usize = 6;
/// Words moved per operation.
const WORDS: u16 = 8;
/// Independent failure-set draws aggregated per (mesh, failure count).
const TRIALS: u64 = 3;
/// Largest number of simultaneous permanent link failures swept.
const MAX_FAILURES: usize = 3;
/// Mesh side lengths swept.
const MESHES: &[u8] = &[2, 3, 4];

/// Deterministic xorshift64* stream.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Every undirected mesh edge, named by its East/North-facing channel.
fn edges(n: u8) -> Vec<(RouterAddr, Port)> {
    let mut out = Vec::new();
    for y in 0..n {
        for x in 0..n {
            if x + 1 < n {
                out.push((RouterAddr::new(x, y), Port::East));
            }
            if y + 1 < n {
                out.push((RouterAddr::new(x, y), Port::North));
            }
        }
    }
    out
}

/// Whether killing `dead` still leaves every router pair connected.
fn connected(n: u8, dead: &[(RouterAddr, Port)]) -> bool {
    let dead: std::collections::BTreeSet<_> = dead.iter().copied().collect();
    let table = RouteTable::build(
        &Topology::Mesh {
            width: n,
            height: n,
        },
        &dead,
    );
    for a in 0..n * n {
        for b in 0..n * n {
            let src = RouterAddr::new(a % n, a / n);
            let dst = RouterAddr::new(b % n, b / n);
            if !table.reachable(src, dst) {
                return false;
            }
        }
    }
    true
}

/// Draws a non-partitioning set of `count` distinct edges, or `None` if
/// the bounded deterministic search finds none (e.g. 2 failures on 2×2).
fn draw_failures(n: u8, count: usize, prng: &mut Prng) -> Option<Vec<(RouterAddr, Port)>> {
    let all = edges(n);
    if count > all.len() {
        return None;
    }
    for _ in 0..200 {
        let mut pool = all.clone();
        let mut picked = Vec::with_capacity(count);
        for _ in 0..count {
            picked.push(pool.swap_remove(prng.below(pool.len())));
        }
        picked.sort();
        if connected(n, &picked) {
            return Some(picked);
        }
    }
    None
}

struct Outcome {
    delivered: usize,
    cycles: u64,
    reroute_resets: u64,
    retransmissions: u64,
    links_diagnosed: usize,
    error: Option<SystemError>,
}

/// Runs one trial: a fault-tolerant system with `dead` edges down (both
/// directions) from cycle 0, pushing `OPS` write+read round trips from
/// the host through the serial IP to the far-corner memory.
fn run_trial(n: u8, dead: &[(RouterAddr, Port)]) -> Result<Outcome, SystemError> {
    let mut config = NocConfig::mesh(n, n);
    config.routing = Routing::FaultTolerantXy;
    let mut system = System::builder()
        .noc(config)
        .serial_at(RouterAddr::new(0, 0))
        .memory_at(RouterAddr::new(n - 1, n - 1))
        .build()?;
    let memory = NodeId(1);
    let mut plan = FaultPlan::new(SEED);
    for &(addr, port) in dead {
        plan = plan.with_link_down(addr, port, CycleWindow::open_ended(0));
        let peer = match port {
            Port::East => RouterAddr::new(addr.x() + 1, addr.y()),
            Port::North => RouterAddr::new(addr.x(), addr.y() + 1),
            _ => unreachable!("edges() only names East/North channels"),
        };
        let back = if port == Port::East {
            Port::West
        } else {
            Port::South
        };
        plan = plan.with_link_down(peer, back, CycleWindow::open_ended(0));
    }
    if !dead.is_empty() {
        system.set_fault_plan(plan)?;
    }
    let mut host = Host::new().with_budget(4_000_000);
    host.synchronize(&mut system)?;

    let start = system.cycle();
    let mut delivered = 0;
    let mut error = None;
    for op in 0..OPS {
        let addr = 0x100 + (op as u16) * WORDS;
        let data: Vec<u16> = (0..WORDS)
            .map(|i| (op as u16) << 8 | u16::from(i as u8) | 0x2000)
            .collect();
        let attempt = host
            .write_memory(&mut system, memory, addr, &data)
            .and_then(|()| host.read_memory(&mut system, memory, addr, WORDS as usize));
        match attempt {
            Ok(read_back) if read_back == data => delivered += 1,
            Ok(_) => {}
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    let retries = system.retry_counters();
    Ok(Outcome {
        delivered,
        cycles: system.cycle() - start,
        reroute_resets: retries.reroute_resets,
        retransmissions: retries.retransmissions,
        links_diagnosed: system.dead_links().len(),
        error,
    })
}

struct Point {
    mesh: u8,
    failures: usize,
    delivered: usize,
    ops: usize,
    avg_cycles_per_op: f64,
    overhead_pct: f64,
    reroute_resets: u64,
    retransmissions: u64,
    links_diagnosed: usize,
}

fn run_sweep() -> Result<(String, String), SystemError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E19: graceful degradation under permanent link failures\n\
         {OPS} host write+read round trips ({WORDS} words) per trial, {TRIALS} trials\n\
         per point, fault-tolerant XY routing, seed {SEED:#x}\n"
    );
    let mut points: Vec<Point> = Vec::new();
    for &n in MESHES {
        let _ = writeln!(
            out,
            "{n}x{n} mesh (serial at 0.0, memory at {}.{}):",
            n - 1,
            n - 1
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>12} {:>10} {:>7} {:>7} {:>6}",
            "failures", "delivered", "cycles/op", "overhead", "resets", "retx", "dead"
        );
        let mut healthy_cycles_per_op = None;
        for failures in 0..=MAX_FAILURES {
            let mut prng = Prng(SEED ^ (u64::from(n) << 32) ^ (failures as u64 + 1));
            let mut delivered = 0;
            let mut ops = 0;
            let mut cycles = 0u64;
            let mut resets = 0;
            let mut retx = 0;
            let mut diagnosed = 0;
            let mut skipped = false;
            let mut first_error = None;
            for _ in 0..TRIALS {
                let Some(dead) = draw_failures(n, failures, &mut prng) else {
                    skipped = true;
                    break;
                };
                let o = run_trial(n, &dead)?;
                delivered += o.delivered;
                ops += OPS;
                cycles += o.cycles;
                resets += o.reroute_resets;
                retx += o.retransmissions;
                diagnosed += o.links_diagnosed;
                if let Some(e) = o.error {
                    first_error.get_or_insert(e);
                }
            }
            if skipped {
                let _ = writeln!(
                    out,
                    "  {:<10} every {failures}-edge removal partitions this mesh",
                    failures
                );
                continue;
            }
            let per_op = cycles as f64 / ops as f64;
            let healthy = *healthy_cycles_per_op.get_or_insert(per_op);
            let overhead = (per_op - healthy) / healthy * 100.0;
            let _ = writeln!(
                out,
                "  {:<10} {:>5}/{:<3} {:>12.1} {:>9.1}% {:>7} {:>7} {:>6}",
                failures, delivered, ops, per_op, overhead, resets, retx, diagnosed
            );
            if let Some(e) = first_error {
                let _ = writeln!(out, "  {:<10} ^ typed error: {e}", "");
            }
            points.push(Point {
                mesh: n,
                failures,
                delivered,
                ops,
                avg_cycles_per_op: per_op,
                overhead_pct: overhead,
                reroute_resets: resets,
                retransmissions: retx,
                links_diagnosed: diagnosed,
            });
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Every non-partitioning failure set delivers all operations: the\n\
         diagnosis declares the dead links, the epoch flushes the wedged\n\
         worms, routing detours and the reliability layer absorbs the loss\n\
         as reroute resets, not failures. The cost is latency overhead,\n\
         which grows with the number of detours on the path."
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E19 graceful degradation\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"ops_per_point\": {},",
        OPS * usize::try_from(TRIALS).unwrap_or(usize::MAX)
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"mesh\": \"{n}x{n}\", \"failures\": {f}, \"delivered\": {d}, \
             \"ops\": {o}, \"avg_cycles_per_op\": {c:.1}, \"overhead_pct\": {v:.1}, \
             \"reroute_resets\": {r}, \"retransmissions\": {x}, \
             \"links_diagnosed\": {l}}}{comma}",
            n = p.mesh,
            f = p.failures,
            d = p.delivered,
            o = p.ops,
            c = p.avg_cycles_per_op,
            v = p.overhead_pct,
            r = p.reroute_resets,
            x = p.retransmissions,
            l = p.links_diagnosed,
        );
    }
    json.push_str("  ]\n}\n");
    Ok((out, json))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let first = run_sweep()?;
    let second = run_sweep()?;
    assert_eq!(
        first, second,
        "same seed must reproduce the identical sweep"
    );
    let (report, json) = first;
    std::fs::write("BENCH_degradation.json", &json)?;
    print!("{report}");
    println!("Determinism check: two same-seed sweeps produced identical reports.");
    println!("Machine-readable summary written to BENCH_degradation.json");
    Ok(())
}

//! E21 (extension) — observability: the packet-lifecycle tracer, the
//! metrics registry and the combined Perfetto exporter, demonstrated
//! end-to-end and held to the same determinism contract as the
//! simulation itself.
//!
//! Four sections:
//!
//! 1. **Determinism** — healthy, faulted and degraded workloads each run
//!    under the reference, active and parallel kernels; the exported
//!    Perfetto document, Prometheus exposition and metrics JSON must be
//!    byte-identical across all of them (the span stream rides the same
//!    `ShardDelta` merge as the simulation state), and every Perfetto
//!    document must satisfy the Chrome trace-event schema.
//! 2. **Overhead** — the same saturated workload with tracing off and
//!    on; the simulated outcome must be identical and the wall-clock
//!    cost of the instrumentation is reported, never asserted.
//! 3. **Heatmap** — per-link utilization consumed *from the metrics
//!    registry's own JSON exposition* (parsed with the dependency-free
//!    validator), rendered as a mesh heatmap and dumped to
//!    `HEATMAP_utilization.txt`.
//! 4. **System export** — a full MultiNoC boot-and-run traced at both
//!    layers; the combined document (hermes packet spans + multinoc
//!    service instants) lands in `TRACE_perfetto.json` (openable in
//!    ui.perfetto.dev) with the metrics snapshot in
//!    `METRICS_observability.json` / `.prom`.
//!
//! Run with `cargo run --release -p multinoc-bench --bin
//! exp_observability` (set `EXP_OBS_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;
use std::time::Instant;

use hermes_noc::fault::{CycleWindow, FaultPlan};
use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{
    D2dChannel, KernelMode, Noc, NocConfig, Packet, Port, RouterAddr, Routing, Topology,
};
use multinoc::serial::SerialConfig;
use multinoc::{NodeId, System};
use multinoc_bench::json::{parse, validate_trace_event_json, Json};
use multinoc_bench::table_row;
use r8::asm::assemble;

/// Seed shared by every workload.
const SEED: u64 = 0xE21_0B5;

/// Workload scale: 1 for the CI smoke run, 8 for the full measurement.
fn scale() -> u64 {
    if std::env::var_os("EXP_OBS_SMOKE").is_some() {
        1
    } else {
        8
    }
}

/// Kernels every export is checked across: the acceptance bar is that
/// observability output never depends on the engine that produced it.
const KERNELS: [KernelMode; 4] = [
    KernelMode::Reference,
    KernelMode::Active,
    KernelMode::Parallel { threads: 2 },
    KernelMode::Parallel { threads: 8 },
];

/// One deterministic workload the determinism section replays per kernel.
struct Workload {
    name: &'static str,
    config: NocConfig,
    plan: Option<FaultPlan>,
    packets: usize,
    spacing: u64,
    cycles: u64,
}

fn workloads(scale: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "healthy",
            config: NocConfig::mesh(4, 4),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 9,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "faulted",
            config: NocConfig::mesh(3, 3),
            plan: Some(
                FaultPlan::new(SEED)
                    .with_drop_rate(0.1)
                    .with_corrupt_rate(0.1)
                    .with_router_stall(RouterAddr::new(1, 1), CycleWindow::new(100, 600)),
            ),
            packets: 30 * scale as usize,
            spacing: 17,
            cycles: 1_500 * scale,
        },
        Workload {
            name: "degraded",
            config: NocConfig::mesh(3, 3).with_routing(Routing::FaultTolerantXy),
            plan: Some(FaultPlan::new(SEED ^ 0xDE6).with_link_down(
                RouterAddr::new(1, 1),
                Port::East,
                CycleWindow::open_ended(0),
            )),
            packets: 30 * scale as usize,
            spacing: 23,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "torus",
            config: NocConfig::torus(4, 4),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "chiplet",
            config: NocConfig::chiplet(2, 2, D2dChannel::OffChipSerial),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
    ]
}

/// Runs one workload under one kernel with tracing on and returns the
/// three exported artifacts.
fn run_traced(w: &Workload, kernel: KernelMode) -> (String, String, String) {
    let mut noc = Noc::new(w.config.clone().with_kernel_mode(kernel)).expect("valid config");
    noc.enable_packet_trace(2_048);
    if let Some(plan) = &w.plan {
        noc.set_fault_plan(plan.clone()).expect("valid fault plan");
    }
    let nodes = u64::from(w.config.width()) * u64::from(w.config.height());
    let mut next = 0u64;
    for cycle in 0..w.cycles {
        while next < w.packets as u64 && next * w.spacing == cycle {
            let s = next % nodes;
            let d = (next * 7 + 3) % nodes;
            let src = addr_of(s, w.config.width());
            let dst = addr_of(d, w.config.width());
            let _ = noc.send(src, Packet::new(dst, vec![(next % 200) as u16; 3]));
            next += 1;
        }
        noc.step();
    }
    let metrics = noc.metrics();
    (
        noc.packet_trace().expect("enabled").perfetto_json(),
        metrics.to_prometheus(),
        metrics.to_json(),
    )
}

fn addr_of(index: u64, width: u8) -> RouterAddr {
    RouterAddr::new(
        (index % u64::from(width)) as u8,
        (index / u64::from(width)) as u8,
    )
}

/// Saturated 8×8 run for the overhead section; returns the observables
/// that must not move when tracing is enabled, plus the wall clock.
fn overhead_run(traced: bool, cycles: u64) -> ((u64, u64, u64, u64), f64) {
    let mut noc = Noc::new(NocConfig::mesh(8, 8)).expect("valid mesh");
    if traced {
        noc.enable_packet_trace(4_096);
    }
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 4, SEED ^ 0x0EE);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    let seconds = start.elapsed().as_secs_f64();
    let s = noc.stats();
    (
        (s.cycles, s.packets_sent, s.packets_delivered, s.flit_hops),
        seconds,
    )
}

/// Pulls every `hermes_link_utilization` sample out of the registry's
/// JSON exposition — the heatmap deliberately consumes the exported
/// artifact, not the simulator's internals. Labels are decoded through
/// `Topology::parse_link_label`, so the one code path handles the mesh
/// `"xy:Port"` form, the torus `":wrap"` suffix and the hierarchical
/// chiplet `"c<cx><cy>.<lx><ly>:Port[:d2d]"` form alike.
fn link_utilization_from_json(
    metrics_json: &str,
    topology: &Topology,
) -> Vec<(RouterAddr, Port, f64)> {
    let doc = parse(metrics_json).expect("registry JSON parses");
    let families = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("a metrics array");
    let mut out = Vec::new();
    for family in families {
        if family.get("name").and_then(Json::as_str) != Some("hermes_link_utilization") {
            continue;
        }
        for sample in family.get("samples").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = sample
                .get("labels")
                .and_then(|l| l.get("link"))
                .and_then(Json::as_str)
                .expect("a link label");
            let value = sample.get("value").and_then(Json::as_num).expect("a value");
            let (addr, port) = topology
                .parse_link_label(label)
                .unwrap_or_else(|| panic!("exported label {label} names no {topology} link"));
            out.push((addr, port, value));
        }
    }
    out
}

/// A full MultiNoC system run traced at both layers under `kernel`:
/// boots the paper layout, runs a program on P1 that walks the remote
/// memory IP (write-in-memory, read-from-memory, read-return services
/// over the NoC), and exports the combined trace plus the metrics
/// snapshot.
fn system_run(kernel: KernelMode) -> (String, String, String) {
    let mut sys = System::builder()
        .noc(NocConfig::multinoc().with_kernel_mode(kernel))
        .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    sys.enable_trace(1_024);
    sys.enable_packet_trace(1_024);
    // Eight remote stores then eight remote loads: every iteration is a
    // full NoC service round trip to the memory IP at 0x0800.
    let program = assemble(
        "LIW R2, 0x800\n\
         LIW R1, 8\n\
         XOR R0, R0, R0\n\
         wr: ST R1, R2, R0\n\
         ADDI R0, 1\n\
         SUBI R1, 1\n\
         JMPZD rd\n\
         JMPD wr\n\
         rd: LIW R1, 8\n\
         XOR R0, R0, R0\n\
         rl: LD R3, R2, R0\n\
         ADDI R0, 1\n\
         SUBI R1, 1\n\
         JMPZD done\n\
         JMPD rl\n\
         done: HALT",
    )
    .expect("assembles");
    sys.memory_mut(NodeId(1))
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.activate_directly(NodeId(1)).expect("activates");
    sys.run_until_halted(10_000_000).expect("halts");
    let snapshot = sys.metrics_snapshot();
    (
        sys.perfetto_json(),
        snapshot.to_json(),
        snapshot.to_prometheus(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale();
    println!("E21: observability (seed {SEED:#x}, scale {scale}x)");
    println!("every export is checked byte-identical across kernels and");
    println!("validated against the Chrome trace-event schema\n");

    // 1. Determinism of the exported artifacts.
    table_row!(
        "workload",
        "trace events",
        "trace bytes",
        "kernels",
        "verdict"
    );
    let mut metrics_by_name: std::collections::BTreeMap<&'static str, (Topology, String)> =
        std::collections::BTreeMap::new();
    for w in workloads(scale) {
        let reference = run_traced(&w, KERNELS[0]);
        for &kernel in &KERNELS[1..] {
            let got = run_traced(&w, kernel);
            assert_eq!(
                reference.0, got.0,
                "{}: Perfetto diverged ({kernel:?})",
                w.name
            );
            assert_eq!(
                reference.1, got.1,
                "{}: Prometheus diverged ({kernel:?})",
                w.name
            );
            assert_eq!(
                reference.2, got.2,
                "{}: metrics JSON diverged ({kernel:?})",
                w.name
            );
        }
        let events = validate_trace_event_json(&reference.0)
            .unwrap_or_else(|e| panic!("{}: schema violation: {e}", w.name));
        parse(&reference.2).expect("metrics JSON parses");
        table_row!(
            w.name,
            events,
            reference.0.len(),
            KERNELS.len(),
            "identical"
        );
        metrics_by_name.insert(w.name, (w.config.topology, reference.2));
    }

    // 2. Instrumentation overhead: same simulated outcome, reported (not
    // asserted) wall-clock cost.
    let cycles = 3_000 * scale;
    let (off_obs, off_secs) = overhead_run(false, cycles);
    let (on_obs, on_secs) = overhead_run(true, cycles);
    assert_eq!(
        off_obs, on_obs,
        "enabling the tracer changed the simulated outcome"
    );
    println!(
        "\noverhead: saturated 8x8, {} cycles, {} packets —\n\
         tracing off {:.0} c/s, on {:.0} c/s ({:+.1}% wall clock);\n\
         simulated observables identical",
        off_obs.0,
        off_obs.1,
        off_obs.0 as f64 / off_secs,
        on_obs.0 as f64 / on_secs,
        100.0 * (on_secs / off_secs - 1.0),
    );

    // 3. Per-link utilization heatmap, consumed from the registry JSON.
    let (degraded_topology, degraded_metrics_json) = metrics_by_name
        .get("degraded")
        .expect("degraded workload ran");
    let mut links = link_utilization_from_json(degraded_metrics_json, degraded_topology);
    links.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\nlink-utilization heatmap (degraded 3x3, busiest outgoing");
    println!("mesh link per router, % of capacity; X marks the dead link):");
    let mut dump = String::from("link utilization (degraded 3x3 fault-tolerant mesh)\n");
    for (addr, port, util) in &links {
        let _ = writeln!(dump, "{addr}:{port} {util:.4}");
    }
    for y in (0..3u8).rev() {
        let mut row = String::from("  ");
        for x in 0..3u8 {
            let here = RouterAddr::new(x, y);
            let peak = links
                .iter()
                .filter(|(a, p, _)| *a == here && *p != Port::Local)
                .map(|(_, _, u)| *u)
                .fold(0.0f64, f64::max);
            let marker = if x == 1 && y == 1 { "X" } else { " " };
            let _ = write!(row, "[{:>3.0}%{marker}] ", peak * 100.0);
        }
        println!("{row}");
    }
    let hottest = links.first().expect("at least one link");
    println!(
        "  hottest link {}:{} at {:.1}% — traffic detours around the dead",
        hottest.0,
        hottest.1,
        hottest.2 * 100.0
    );
    println!("  (1,1)->East link, exactly what the fault-tolerant router promises");

    // 3b. Topology-labelled heatmaps: the same exporter path decodes
    // the torus ":wrap" and hierarchical chiplet ":d2d" names, and the
    // dump echoes the labels verbatim so downstream tooling sees them.
    for name in ["torus", "chiplet"] {
        let (topology, metrics_json) = metrics_by_name.get(name).expect("workload ran");
        let mut links = link_utilization_from_json(metrics_json, topology);
        links.sort_by(|a, b| b.2.total_cmp(&a.2));
        let _ = writeln!(dump, "\nlink utilization ({topology})");
        for (addr, port, util) in &links {
            let _ = writeln!(dump, "{} {util:.4}", topology.link_label((*addr, *port)));
        }
        let special =
            |a: RouterAddr, p: Port| topology.is_wraparound(a, p) || topology.is_off_chip(a, p);
        let hottest_special = links
            .iter()
            .find(|(a, p, _)| special(*a, *p))
            .expect("uniform traffic crosses wrap/off-chip links");
        println!(
            "  {name}: hottest {} link {} at {:.1}% of capacity",
            if topology.is_off_chip(hottest_special.0, hottest_special.1) {
                "off-chip"
            } else {
                "wraparound"
            },
            topology.link_label((hottest_special.0, hottest_special.1)),
            hottest_special.2 * 100.0
        );
    }
    std::fs::write("HEATMAP_utilization.txt", &dump)?;

    // 4. Combined system export, again identical across kernels.
    let reference = system_run(KernelMode::Active);
    let parallel = system_run(KernelMode::Parallel { threads: 2 });
    assert_eq!(
        reference, parallel,
        "system-level exports diverged between kernels"
    );
    let events = validate_trace_event_json(&reference.0)?;
    assert!(
        reference.0.contains("\"ph\":\"X\"") && reference.0.contains("\"ph\":\"i\""),
        "the combined export carries both packet spans and service instants"
    );
    std::fs::write("TRACE_perfetto.json", &reference.0)?;
    std::fs::write("METRICS_observability.json", &reference.1)?;
    std::fs::write("METRICS_observability.prom", &reference.2)?;
    println!(
        "\nsystem export: {} trace events ({} bytes) from a full boot-and-run,\n\
         packet spans and service instants interleaved, byte-identical\n\
         across kernels",
        events,
        reference.0.len()
    );
    println!(
        "\nartifacts: TRACE_perfetto.json (load in ui.perfetto.dev),\n\
         METRICS_observability.json, METRICS_observability.prom,\n\
         HEATMAP_utilization.txt"
    );
    Ok(())
}

//! E21/E25 — observability: the packet-lifecycle tracer, the metrics
//! registry, interval telemetry with congestion analytics, causal
//! service spans and the combined Perfetto exporter, demonstrated
//! end-to-end and held to the same determinism contract as the
//! simulation itself.
//!
//! Five sections:
//!
//! 1. **Determinism** — healthy, faulted and degraded workloads each run
//!    under the reference, active and parallel kernels; the exported
//!    Perfetto document, Prometheus exposition and metrics JSON must be
//!    byte-identical across all of them (the span stream rides the same
//!    `ShardDelta` merge as the simulation state), and every Perfetto
//!    document must satisfy the Chrome trace-event schema.
//! 2. **Overhead** — the same saturated workload with tracing off and
//!    on; the simulated outcome must be identical and the wall-clock
//!    cost of the instrumentation is reported, never asserted.
//! 3. **Heatmap** — per-link utilization consumed *from the metrics
//!    registry's own JSON exposition* (parsed with the dependency-free
//!    validator), rendered as a mesh heatmap and dumped to
//!    `HEATMAP_utilization.txt`.
//! 4. **System export** — a full MultiNoC boot-and-run traced at both
//!    layers with causal service spans; the combined document (hermes
//!    packet spans + multinoc service instants + span slices with flow
//!    arrows binding each request to its packets) lands in
//!    `TRACE_perfetto.json` (openable in ui.perfetto.dev) with the
//!    metrics snapshot in `METRICS_observability.json` / `.prom`.
//! 5. **Telemetry (E25)** — the interval sampler swept across kernels
//!    *and* batch windows on a hotspot mesh, a torus and a chiplet
//!    mesh-of-meshes; the time-series JSON and Prometheus expositions
//!    must be byte-identical everywhere (sampling happens only at fully
//!    merged cycle boundaries, so no parallel window ever straddles
//!    one), the hotspot workload must trip the sustained-congestion
//!    alarm, and the hotspot series lands in
//!    `TIMESERIES_observability.json` / `.prom` plus the human-readable
//!    `RUN_REPORT_observability.md` built back out of the exported
//!    artifact.
//!
//! Run with `cargo run --release -p multinoc-bench --bin
//! exp_observability` (set `EXP_OBS_SMOKE=1` for the fast CI variant).

use std::fmt::Write as _;
use std::time::Instant;

use hermes_noc::fault::{CycleWindow, FaultPlan};
use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{
    D2dChannel, KernelMode, Noc, NocConfig, Packet, Port, RouterAddr, Routing, TelemetryConfig,
    Topology,
};
use multinoc::serial::SerialConfig;
use multinoc::{NodeId, System};
use multinoc_bench::json::{parse, validate_time_series_json, validate_trace_event_json, Json};
use multinoc_bench::table_row;
use r8::asm::assemble;

/// Seed shared by every workload.
const SEED: u64 = 0xE21_0B5;

/// Workload scale: 1 for the CI smoke run, 8 for the full measurement.
fn scale() -> u64 {
    if std::env::var_os("EXP_OBS_SMOKE").is_some() {
        1
    } else {
        8
    }
}

/// Kernels every export is checked across: the acceptance bar is that
/// observability output never depends on the engine that produced it.
const KERNELS: [KernelMode; 4] = [
    KernelMode::Reference,
    KernelMode::Active,
    KernelMode::Parallel { threads: 2 },
    KernelMode::Parallel { threads: 8 },
];

/// One deterministic workload the determinism section replays per kernel.
struct Workload {
    name: &'static str,
    config: NocConfig,
    plan: Option<FaultPlan>,
    packets: usize,
    spacing: u64,
    cycles: u64,
}

fn workloads(scale: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "healthy",
            config: NocConfig::mesh(4, 4),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 9,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "faulted",
            config: NocConfig::mesh(3, 3),
            plan: Some(
                FaultPlan::new(SEED)
                    .with_drop_rate(0.1)
                    .with_corrupt_rate(0.1)
                    .with_router_stall(RouterAddr::new(1, 1), CycleWindow::new(100, 600)),
            ),
            packets: 30 * scale as usize,
            spacing: 17,
            cycles: 1_500 * scale,
        },
        Workload {
            name: "degraded",
            config: NocConfig::mesh(3, 3).with_routing(Routing::FaultTolerantXy),
            plan: Some(FaultPlan::new(SEED ^ 0xDE6).with_link_down(
                RouterAddr::new(1, 1),
                Port::East,
                CycleWindow::open_ended(0),
            )),
            packets: 30 * scale as usize,
            spacing: 23,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "torus",
            config: NocConfig::torus(4, 4),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "chiplet",
            config: NocConfig::chiplet(2, 2, D2dChannel::OffChipSerial),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
    ]
}

/// Runs one workload under one kernel with tracing on and returns the
/// three exported artifacts.
fn run_traced(w: &Workload, kernel: KernelMode) -> (String, String, String) {
    let mut noc = Noc::new(w.config.clone().with_kernel_mode(kernel)).expect("valid config");
    noc.enable_packet_trace(2_048);
    if let Some(plan) = &w.plan {
        noc.set_fault_plan(plan.clone()).expect("valid fault plan");
    }
    let nodes = u64::from(w.config.width()) * u64::from(w.config.height());
    let mut next = 0u64;
    for cycle in 0..w.cycles {
        while next < w.packets as u64 && next * w.spacing == cycle {
            let s = next % nodes;
            let d = (next * 7 + 3) % nodes;
            let src = addr_of(s, w.config.width());
            let dst = addr_of(d, w.config.width());
            let _ = noc.send(src, Packet::new(dst, vec![(next % 200) as u16; 3]));
            next += 1;
        }
        noc.step();
    }
    let metrics = noc.metrics();
    (
        noc.packet_trace().expect("enabled").perfetto_json(),
        metrics.to_prometheus(),
        metrics.to_json(),
    )
}

fn addr_of(index: u64, width: u8) -> RouterAddr {
    RouterAddr::new(
        (index % u64::from(width)) as u8,
        (index / u64::from(width)) as u8,
    )
}

/// Batch windows the telemetry section sweeps: fine-grained and the
/// production default. The sampler clamps every parallel window to the
/// next sample boundary, so both must export identical bytes.
const BATCH_WINDOWS: [u32; 2] = [1, 16];

/// Workloads for the telemetry section: a hotspot mesh that funnels
/// every packet at router (0,0) to trip the congestion alarm, plus the
/// torus and chiplet topologies so the exported labels carry `:wrap`
/// and `:d2d` annotations.
fn telemetry_workloads(scale: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "hotspot",
            config: NocConfig::mesh(4, 4),
            plan: None,
            packets: 600 * scale as usize,
            spacing: 2,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "torus",
            config: NocConfig::torus(4, 4),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
        Workload {
            name: "chiplet",
            config: NocConfig::chiplet(2, 2, D2dChannel::OffChipSerial),
            plan: None,
            packets: 40 * scale as usize,
            spacing: 11,
            cycles: 2_000 * scale,
        },
    ]
}

/// The exported telemetry of one workload under one kernel and batch
/// window, plus the sampler counters the report summarizes.
struct TelemetryRun {
    json: String,
    prom: String,
    frames: u64,
    alerts_raised: u64,
    alerts_cleared: u64,
}

/// Runs one workload with the interval sampler on and returns its
/// exports. The `hotspot` workload aims every packet at router (0,0);
/// the rest reuse the determinism section's scatter pattern.
fn run_telemetry(w: &Workload, kernel: KernelMode, batch_window: u32) -> TelemetryRun {
    let mut noc = Noc::new(
        w.config
            .clone()
            .with_kernel_mode(kernel)
            .with_batch_window(batch_window),
    )
    .expect("valid config");
    noc.enable_telemetry(TelemetryConfig::default());
    if let Some(plan) = &w.plan {
        noc.set_fault_plan(plan.clone()).expect("valid fault plan");
    }
    let nodes = u64::from(w.config.width()) * u64::from(w.config.height());
    let width = u64::from(w.config.width());
    let hotspot = w.name == "hotspot";
    let mut next = 0u64;
    for cycle in 0..w.cycles {
        while next < w.packets as u64 && next * w.spacing == cycle {
            // The hotspot pattern funnels every packet at router (0,0)
            // from sources off row 0, so with XY routing the whole load
            // converges on the single (0,1)->(0,0) link and holds it
            // saturated — the sustained-congestion alarm must trip.
            let s = if hotspot {
                width + next % (nodes - width)
            } else {
                1 + next % (nodes - 1)
            };
            let d = if hotspot { 0 } else { (next * 7 + 3) % nodes };
            let src = addr_of(s, w.config.width());
            let dst = addr_of(d, w.config.width());
            let _ = noc.send(src, Packet::new(dst, vec![(next % 200) as u16; 3]));
            next += 1;
        }
        noc.step();
    }
    let telemetry = noc.telemetry().expect("enabled");
    TelemetryRun {
        frames: telemetry.frames_total(),
        alerts_raised: telemetry.alerts_raised(),
        alerts_cleared: telemetry.alerts_cleared(),
        json: noc.telemetry_json().expect("enabled"),
        prom: noc.telemetry_prometheus().expect("enabled"),
    }
}

/// Saturated 8×8 run for the overhead section; returns the observables
/// that must not move when tracing is enabled, plus the wall clock.
fn overhead_run(traced: bool, cycles: u64) -> ((u64, u64, u64, u64), f64) {
    let mut noc = Noc::new(NocConfig::mesh(8, 8)).expect("valid mesh");
    if traced {
        noc.enable_packet_trace(4_096);
    }
    let mut gen = TrafficGen::new(Pattern::Uniform, 0.2, 4, SEED ^ 0x0EE);
    let start = Instant::now();
    gen.drive(&mut noc, cycles, 1_000_000).expect("drive");
    let seconds = start.elapsed().as_secs_f64();
    let s = noc.stats();
    (
        (s.cycles, s.packets_sent, s.packets_delivered, s.flit_hops),
        seconds,
    )
}

/// Pulls every `hermes_link_utilization` sample out of the registry's
/// JSON exposition — the heatmap deliberately consumes the exported
/// artifact, not the simulator's internals. Labels are decoded through
/// `Topology::parse_link_label`, so the one code path handles the mesh
/// `"xy:Port"` form, the torus `":wrap"` suffix and the hierarchical
/// chiplet `"c<cx><cy>.<lx><ly>:Port[:d2d]"` form alike.
fn link_utilization_from_json(
    metrics_json: &str,
    topology: &Topology,
) -> Vec<(RouterAddr, Port, f64)> {
    let doc = parse(metrics_json).expect("registry JSON parses");
    let families = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .expect("a metrics array");
    let mut out = Vec::new();
    for family in families {
        if family.get("name").and_then(Json::as_str) != Some("hermes_link_utilization") {
            continue;
        }
        for sample in family.get("samples").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = sample
                .get("labels")
                .and_then(|l| l.get("link"))
                .and_then(Json::as_str)
                .expect("a link label");
            let value = sample.get("value").and_then(Json::as_num).expect("a value");
            let (addr, port) = topology
                .parse_link_label(label)
                .unwrap_or_else(|| panic!("exported label {label} names no {topology} link"));
            out.push((addr, port, value));
        }
    }
    out
}

/// Everything section 4 exports from one full-system run, compared
/// byte-for-byte across kernels.
#[derive(Debug, PartialEq)]
struct SystemRun {
    perfetto: String,
    metrics_json: String,
    metrics_prom: String,
    spans_total: u64,
    spans_completed: u64,
    span_retransmissions: u64,
    span_redirects: u64,
}

/// A full MultiNoC system run traced at both layers under `kernel`:
/// boots the paper layout, runs a program on P1 that walks the remote
/// memory IP (write-in-memory, read-from-memory, read-return services
/// over the NoC), and exports the combined trace plus the metrics
/// snapshot. Causal service spans are on, so the Perfetto document also
/// carries one slice per request with flow arrows into its packets.
fn system_run(kernel: KernelMode) -> SystemRun {
    let mut sys = System::builder()
        .noc(NocConfig::multinoc().with_kernel_mode(kernel))
        .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    sys.enable_trace(1_024);
    sys.enable_packet_trace(1_024);
    sys.enable_service_spans(1_024);
    // Eight remote stores then eight remote loads: every iteration is a
    // full NoC service round trip to the memory IP at 0x0800.
    let program = assemble(
        "LIW R2, 0x800\n\
         LIW R1, 8\n\
         XOR R0, R0, R0\n\
         wr: ST R1, R2, R0\n\
         ADDI R0, 1\n\
         SUBI R1, 1\n\
         JMPZD rd\n\
         JMPD wr\n\
         rd: LIW R1, 8\n\
         XOR R0, R0, R0\n\
         rl: LD R3, R2, R0\n\
         ADDI R0, 1\n\
         SUBI R1, 1\n\
         JMPZD done\n\
         JMPD rl\n\
         done: HALT",
    )
    .expect("assembles");
    sys.memory_mut(NodeId(1))
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.activate_directly(NodeId(1)).expect("activates");
    sys.run_until_halted(10_000_000).expect("halts");
    let snapshot = sys.metrics_snapshot();
    let spans = sys.service_spans().expect("spans enabled");
    SystemRun {
        spans_total: spans.spans_total(),
        spans_completed: spans.completed(),
        span_retransmissions: spans.retransmissions(),
        span_redirects: spans.redirects(),
        perfetto: sys.perfetto_json(),
        metrics_json: snapshot.to_json(),
        metrics_prom: snapshot.to_prometheus(),
    }
}

/// Renders `RUN_REPORT_observability.md` from the *exported* artifacts:
/// the time-series JSON is parsed back with the dependency-free
/// validator (never read from simulator internals) and the per-interval
/// heatmap sections are reconstructed from frame link data through
/// `Topology::parse_link_label`, the same decoding path downstream
/// tooling would use.
fn run_report(ts_json: &str, config: &NocConfig, system: &SystemRun, scale: u64) -> String {
    let doc = parse(ts_json).expect("time-series JSON parses");
    let ts = doc.get("time_series").expect("a time_series object");
    let num = |j: &Json, key: &str| j.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64;
    let frames = ts
        .get("frames")
        .and_then(Json::as_arr)
        .expect("a frames array");
    let hotspots = ts
        .get("hotspots")
        .and_then(Json::as_arr)
        .expect("a hotspots array");
    let alerts = ts
        .get("alerts")
        .and_then(Json::as_arr)
        .expect("an alerts array");
    let interval = num(ts, "interval");
    let (width, height) = (config.width(), config.height());

    let mut out = String::from("# Observability run report (E21/E25)\n\n");
    let _ = writeln!(
        out,
        "Seed `{SEED:#x}`, scale {scale}x. Every table below is rebuilt from \
         `TIMESERIES_observability.json` and the system-run exports; all of \
         them are byte-identical across the reference, active and parallel \
         kernels at any thread count and batch window.\n"
    );

    out.push_str("## Time series (hotspot mesh, all packets aimed at router 0.0)\n\n");
    out.push_str("| sample interval | frames | alerts raised | alerts cleared |\n");
    out.push_str("|---|---|---|---|\n");
    let _ = writeln!(
        out,
        "| {interval} cycles | {} | {} | {} |\n",
        num(ts, "frames_total"),
        num(ts, "alerts_raised_total"),
        num(ts, "alerts_cleared_total")
    );

    out.push_str("## Congestion hotspots (EWMA permille at end of run)\n\n");
    out.push_str("| link | ewma permille |\n|---|---|\n");
    for h in hotspots {
        let label = h.get("link").and_then(Json::as_str).expect("a link label");
        let _ = writeln!(out, "| `{label}` | {} |", num(h, "ewma_permille"));
    }
    if hotspots.is_empty() {
        out.push_str("| (none tracked) | |\n");
    }
    out.push('\n');

    out.push_str("## Congestion alerts\n\n");
    out.push_str("| frame | cycle | link | ewma permille | kind |\n|---|---|---|---|---|\n");
    const ALERT_ROWS: usize = 16;
    for a in alerts.iter().take(ALERT_ROWS) {
        let label = a.get("link").and_then(Json::as_str).expect("a link label");
        let kind = a.get("kind").and_then(Json::as_str).expect("a kind");
        let _ = writeln!(
            out,
            "| {} | {} | `{label}` | {} | {kind} |",
            num(a, "frame"),
            num(a, "cycle"),
            num(a, "ewma_permille")
        );
    }
    if alerts.len() > ALERT_ROWS {
        let _ = writeln!(out, "\n… and {} more alerts.", alerts.len() - ALERT_ROWS);
    }
    out.push('\n');

    out.push_str("## Per-interval link heatmap\n\n");
    let _ = writeln!(
        out,
        "Busiest outgoing link per router, in permille of capacity, one \
         grid per sampled interval (up to 8 of {} frames shown; row y={} \
         on top, the hotspot sink 0.0 is bottom-left).\n",
        frames.len(),
        height - 1
    );
    let step = frames.len().div_ceil(8).max(1);
    for f in frames.iter().step_by(step) {
        let _ = writeln!(
            out,
            "### frame {} (cycles {}..={})\n",
            num(f, "index"),
            num(f, "start"),
            num(f, "end")
        );
        let mut peak = vec![0u64; usize::from(width) * usize::from(height)];
        for link in f.get("links").and_then(Json::as_arr).unwrap_or(&[]) {
            let label = link
                .get("link")
                .and_then(Json::as_str)
                .expect("a link label");
            let (addr, _) = config
                .topology
                .parse_link_label(label)
                .unwrap_or_else(|| panic!("exported label {label} names no link"));
            let idx = usize::from(addr.y()) * usize::from(width) + usize::from(addr.x());
            peak[idx] = peak[idx].max(num(link, "utilization_permille"));
        }
        out.push_str("```\n");
        for y in (0..height).rev() {
            for x in 0..width {
                let idx = usize::from(y) * usize::from(width) + usize::from(x);
                let _ = write!(out, "[{:>4}] ", peak[idx]);
            }
            out.push('\n');
        }
        out.push_str("```\n\n");
        let latency = f.get("latency").expect("a latency object");
        let _ = writeln!(
            out,
            "{} packets delivered this interval (latency sum {} cycles).\n",
            num(latency, "packets"),
            num(latency, "sum_cycles")
        );
    }

    out.push_str("## Causal service spans (full MultiNoC boot-and-run)\n\n");
    out.push_str("| spans | completed | retransmissions | redirects |\n|---|---|---|---|\n");
    let _ = writeln!(
        out,
        "| {} | {} | {} | {} |\n",
        system.spans_total,
        system.spans_completed,
        system.span_retransmissions,
        system.span_redirects
    );
    out.push_str(
        "Each span is one request id linked by Perfetto flow arrows to every \
         packet it put on the wire; open `TRACE_perfetto.json` in \
         ui.perfetto.dev and follow the arrows from the `multinoc spans` \
         track into the per-link packet tracks.\n\n",
    );

    out.push_str("## Artifacts\n\n");
    out.push_str(
        "- `TIMESERIES_observability.json` — schema-validated time series \
         (frames, hotspots, alerts)\n\
         - `TIMESERIES_observability.prom` — the same series as Prometheus \
         exposition with timestamps in cycles\n\
         - `TRACE_perfetto.json` — packet spans + service instants + causal \
         service spans with flow arrows\n\
         - `METRICS_observability.json` / `.prom` — end-of-run metrics \
         registry snapshot\n\
         - `HEATMAP_utilization.txt` — per-link utilization dump for the \
         degraded, torus and chiplet workloads\n",
    );
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale();
    println!("E21/E25: observability (seed {SEED:#x}, scale {scale}x)");
    println!("every export is checked byte-identical across kernels and");
    println!("validated against the Chrome trace-event schema\n");

    // 1. Determinism of the exported artifacts.
    table_row!(
        "workload",
        "trace events",
        "trace bytes",
        "kernels",
        "verdict"
    );
    let mut metrics_by_name: std::collections::BTreeMap<&'static str, (Topology, String)> =
        std::collections::BTreeMap::new();
    for w in workloads(scale) {
        let reference = run_traced(&w, KERNELS[0]);
        for &kernel in &KERNELS[1..] {
            let got = run_traced(&w, kernel);
            assert_eq!(
                reference.0, got.0,
                "{}: Perfetto diverged ({kernel:?})",
                w.name
            );
            assert_eq!(
                reference.1, got.1,
                "{}: Prometheus diverged ({kernel:?})",
                w.name
            );
            assert_eq!(
                reference.2, got.2,
                "{}: metrics JSON diverged ({kernel:?})",
                w.name
            );
        }
        let events = validate_trace_event_json(&reference.0)
            .unwrap_or_else(|e| panic!("{}: schema violation: {e}", w.name));
        parse(&reference.2).expect("metrics JSON parses");
        table_row!(
            w.name,
            events,
            reference.0.len(),
            KERNELS.len(),
            "identical"
        );
        metrics_by_name.insert(w.name, (w.config.topology, reference.2));
    }

    // 2. Instrumentation overhead: same simulated outcome, reported (not
    // asserted) wall-clock cost.
    let cycles = 3_000 * scale;
    let (off_obs, off_secs) = overhead_run(false, cycles);
    let (on_obs, on_secs) = overhead_run(true, cycles);
    assert_eq!(
        off_obs, on_obs,
        "enabling the tracer changed the simulated outcome"
    );
    println!(
        "\noverhead: saturated 8x8, {} cycles, {} packets —\n\
         tracing off {:.0} c/s, on {:.0} c/s ({:+.1}% wall clock);\n\
         simulated observables identical",
        off_obs.0,
        off_obs.1,
        off_obs.0 as f64 / off_secs,
        on_obs.0 as f64 / on_secs,
        100.0 * (on_secs / off_secs - 1.0),
    );

    // 3. Per-link utilization heatmap, consumed from the registry JSON.
    let (degraded_topology, degraded_metrics_json) = metrics_by_name
        .get("degraded")
        .expect("degraded workload ran");
    let mut links = link_utilization_from_json(degraded_metrics_json, degraded_topology);
    links.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\nlink-utilization heatmap (degraded 3x3, busiest outgoing");
    println!("mesh link per router, % of capacity; X marks the dead link):");
    let mut dump = String::from("link utilization (degraded 3x3 fault-tolerant mesh)\n");
    for (addr, port, util) in &links {
        let _ = writeln!(dump, "{addr}:{port} {util:.4}");
    }
    for y in (0..3u8).rev() {
        let mut row = String::from("  ");
        for x in 0..3u8 {
            let here = RouterAddr::new(x, y);
            let peak = links
                .iter()
                .filter(|(a, p, _)| *a == here && *p != Port::Local)
                .map(|(_, _, u)| *u)
                .fold(0.0f64, f64::max);
            let marker = if x == 1 && y == 1 { "X" } else { " " };
            let _ = write!(row, "[{:>3.0}%{marker}] ", peak * 100.0);
        }
        println!("{row}");
    }
    let hottest = links.first().expect("at least one link");
    println!(
        "  hottest link {}:{} at {:.1}% — traffic detours around the dead",
        hottest.0,
        hottest.1,
        hottest.2 * 100.0
    );
    println!("  (1,1)->East link, exactly what the fault-tolerant router promises");

    // 3b. Topology-labelled heatmaps: the same exporter path decodes
    // the torus ":wrap" and hierarchical chiplet ":d2d" names, and the
    // dump echoes the labels verbatim so downstream tooling sees them.
    for name in ["torus", "chiplet"] {
        let (topology, metrics_json) = metrics_by_name.get(name).expect("workload ran");
        let mut links = link_utilization_from_json(metrics_json, topology);
        links.sort_by(|a, b| b.2.total_cmp(&a.2));
        let _ = writeln!(dump, "\nlink utilization ({topology})");
        for (addr, port, util) in &links {
            let _ = writeln!(dump, "{} {util:.4}", topology.link_label((*addr, *port)));
        }
        let special =
            |a: RouterAddr, p: Port| topology.is_wraparound(a, p) || topology.is_off_chip(a, p);
        let hottest_special = links
            .iter()
            .find(|(a, p, _)| special(*a, *p))
            .expect("uniform traffic crosses wrap/off-chip links");
        println!(
            "  {name}: hottest {} link {} at {:.1}% of capacity",
            if topology.is_off_chip(hottest_special.0, hottest_special.1) {
                "off-chip"
            } else {
                "wraparound"
            },
            topology.link_label((hottest_special.0, hottest_special.1)),
            hottest_special.2 * 100.0
        );
    }
    std::fs::write("HEATMAP_utilization.txt", &dump)?;

    // 4. Combined system export, again identical across kernels — now
    // including the causal service spans and their flow arrows.
    let system = system_run(KernelMode::Active);
    let parallel = system_run(KernelMode::Parallel { threads: 2 });
    assert_eq!(
        system, parallel,
        "system-level exports diverged between kernels"
    );
    let events = validate_trace_event_json(&system.perfetto)?;
    assert!(
        system.perfetto.contains("\"ph\":\"X\"") && system.perfetto.contains("\"ph\":\"i\""),
        "the combined export carries both packet spans and service instants"
    );
    assert!(
        system.perfetto.contains("\"ph\":\"s\"")
            && system.perfetto.contains("\"ph\":\"t\"")
            && system.perfetto.contains("\"ph\":\"f\""),
        "the combined export carries span flow arrows (start/step/finish)"
    );
    assert!(
        system.spans_completed > 0,
        "the remote-memory program must complete service spans"
    );
    std::fs::write("TRACE_perfetto.json", &system.perfetto)?;
    std::fs::write("METRICS_observability.json", &system.metrics_json)?;
    std::fs::write("METRICS_observability.prom", &system.metrics_prom)?;
    println!(
        "\nsystem export: {} trace events ({} bytes) from a full boot-and-run,\n\
         packet spans, service instants and {} causal service spans\n\
         ({} completed) interleaved, byte-identical across kernels",
        events,
        system.perfetto.len(),
        system.spans_total,
        system.spans_completed
    );

    // 5. E25 — interval telemetry and congestion analytics, swept across
    // kernels and batch windows. Sampling happens only at fully merged
    // cycle boundaries (parallel windows are clamped so none straddles
    // one), so every export must be byte-identical.
    println!("\nE25: interval telemetry across kernels x batch windows");
    table_row!("workload", "frames", "raised", "cleared", "runs", "verdict");
    let mut hotspot_series: Option<(TelemetryRun, NocConfig)> = None;
    for w in telemetry_workloads(scale) {
        let mut runs = Vec::new();
        for &kernel in &KERNELS {
            for &window in &BATCH_WINDOWS {
                runs.push((kernel, window, run_telemetry(&w, kernel, window)));
            }
        }
        let (_, _, reference) = &runs[0];
        for (kernel, window, got) in &runs[1..] {
            assert_eq!(
                reference.json, got.json,
                "{}: time-series JSON diverged ({kernel:?}, window {window})",
                w.name
            );
            assert_eq!(
                reference.prom, got.prom,
                "{}: time-series Prometheus diverged ({kernel:?}, window {window})",
                w.name
            );
        }
        let retained = validate_time_series_json(&reference.json)
            .unwrap_or_else(|e| panic!("{}: time-series schema violation: {e}", w.name));
        assert_eq!(
            retained as u64,
            reference.frames.min(1_024),
            "{}: exported frame count disagrees with the sampler",
            w.name
        );
        table_row!(
            w.name,
            reference.frames,
            reference.alerts_raised,
            reference.alerts_cleared,
            runs.len(),
            "identical"
        );
        if w.name == "hotspot" {
            assert!(
                reference.alerts_raised > 0,
                "the hotspot workload must trip the sustained-congestion alarm"
            );
            hotspot_series = Some((runs.swap_remove(0).2, w.config));
        }
    }
    let (hotspot, hotspot_config) = hotspot_series.expect("hotspot workload ran");
    std::fs::write("TIMESERIES_observability.json", &hotspot.json)?;
    std::fs::write("TIMESERIES_observability.prom", &hotspot.prom)?;
    let report = run_report(&hotspot.json, &hotspot_config, &system, scale);
    std::fs::write("RUN_REPORT_observability.md", &report)?;
    println!(
        "\nrun report: {} bytes of markdown rebuilt from the exported\n\
         time series (not from simulator internals)",
        report.len()
    );
    println!(
        "\nartifacts: TRACE_perfetto.json (load in ui.perfetto.dev),\n\
         METRICS_observability.json, METRICS_observability.prom,\n\
         HEATMAP_utilization.txt, TIMESERIES_observability.json,\n\
         TIMESERIES_observability.prom, RUN_REPORT_observability.md"
    );
    Ok(())
}

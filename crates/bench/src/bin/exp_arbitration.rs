//! E9 — §2.1 arbitration ablation: "A round-robin arbitration scheme is
//! used to avoid starvation."
//!
//! Four senders fight for one hotspot. Under round-robin every sender
//! makes steady progress; under fixed priority the low-priority senders
//! starve. The experiment reports per-sender delivered packets and the
//! worst-case (max/min) unfairness ratio.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_arbitration`.

use std::collections::BTreeMap;

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{Arbitration, Noc, NocConfig, RouterAddr};
use multinoc_bench::table_row;

fn run(arbitration: Arbitration) -> Result<BTreeMap<String, u64>, hermes_noc::NocError> {
    let config = NocConfig::mesh(3, 3).with_arbitration(arbitration);
    let mut noc = Noc::new(config)?;
    let spot = RouterAddr::new(1, 1);
    let mut gen = TrafficGen::new(Pattern::Hotspot(spot), 0.6, 8, 7);
    gen.drive(&mut noc, 40_000, 2_000_000)?;
    let mut by_src = BTreeMap::new();
    for r in noc.stats().records() {
        if r.is_delivered() {
            *by_src.entry(r.src.to_string()).or_insert(0u64) += 1;
        }
    }
    Ok(by_src)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E9: hotspot fairness, 8 senders -> router 11 (3x3 mesh)\n");
    let rr = run(Arbitration::RoundRobin)?;
    let fixed = run(Arbitration::FixedPriority)?;
    table_row!("sender", "round-robin", "fixed priority");
    let mut keys: Vec<&String> = rr.keys().collect();
    keys.sort();
    for key in keys {
        table_row!(key.clone(), rr[key], fixed.get(key).copied().unwrap_or(0));
    }
    let ratio = |m: &BTreeMap<String, u64>| {
        let max = *m.values().max().unwrap() as f64;
        let min = *m.values().min().unwrap() as f64;
        max / min.max(1.0)
    };
    let (r_rr, r_fx) = (ratio(&rr), ratio(&fixed));
    table_row!("max/min ratio", format!("{r_rr:.2}"), format!("{r_fx:.2}"));
    assert!(r_rr < r_fx, "round-robin must be fairer");
    println!(
        "\nconclusion: round-robin keeps every sender within ~{r_rr:.1}x of the best,\n\
         fixed priority lets favoured ports crowd out the rest ({r_fx:.1}x) —\n\
         the starvation the paper's arbiter avoids."
    );
    Ok(())
}

//! E18 (extension) — fault-injection sweep: delivered-operation rate of
//! host write/read round trips against the remote memory IP as the
//! network's per-flit corruption rate and per-hop packet-drop rate grow.
//!
//! The experiment exercises the whole robustness stack end to end: the
//! deterministic fault injector in the Hermes model (`hermes_noc::fault`),
//! checksum detection of corrupted packets, acknowledgement/timeout
//! retransmission at the serial IP, duplicate suppression at the memory
//! IP, and the typed failure surface (`DeliveryFailed`) past the
//! recoverable regime.
//!
//! Everything is seeded: the sweep runs **twice** with the same seed and
//! asserts byte-identical reports before printing.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_fault_sweep`.

use std::fmt::Write as _;

use hermes_noc::FaultPlan;
use multinoc::{host::Host, System, SystemError, REMOTE_MEMORY};

/// Seed shared by every configuration of the sweep.
const SEED: u64 = 0x4D0C_FA17;
/// Write+read round trips attempted per configuration.
const OPS: usize = 12;
/// Words moved per operation.
const WORDS: u16 = 8;

/// `(label, per-flit corrupt rate, per-hop drop rate)`.
const POINTS: &[(&str, f64, f64)] = &[
    ("fault-free", 0.0, 0.0),
    ("corrupt 0.5%", 0.005, 0.0),
    ("drop 2%", 0.0, 0.02),
    ("drop 10%", 0.0, 0.10),
    ("corrupt 1% + drop 5%", 0.01, 0.05),
    // Per flit per hop, 2% corruption hits ~60% of the packets of an
    // 8-word transaction on every attempt — past the default retry
    // budget, like the half-dead network below.
    ("corrupt 2% (beyond budget)", 0.02, 0.0),
    ("drop 50% (beyond budget)", 0.0, 0.50),
];

struct Outcome {
    delivered: usize,
    error: Option<SystemError>,
    retransmissions: u64,
    acked: u64,
    corrupt_dropped: u64,
    packets_dropped: u64,
    flits_corrupted: u64,
}

/// Runs `OPS` write-then-read-back operations under one fault plan.
/// Every operation that reads back exactly what was written counts as
/// delivered; the first typed error aborts the batch (the remaining
/// operations count as undelivered).
fn run_point(corrupt: f64, drop: f64) -> Result<Outcome, SystemError> {
    let mut system = System::paper_config()?;
    system.set_fault_plan(
        FaultPlan::new(SEED)
            .with_corrupt_rate(corrupt)
            .with_drop_rate(drop),
    )?;
    let mut host = Host::new().with_budget(2_000_000);
    host.synchronize(&mut system)?;

    let mut delivered = 0;
    let mut error = None;
    for op in 0..OPS {
        let addr = 0x100 + (op as u16) * WORDS;
        let data: Vec<u16> = (0..WORDS)
            .map(|i| (op as u16) << 8 | u16::from(i as u8) | 0x4000)
            .collect();
        let attempt = host
            .write_memory(&mut system, REMOTE_MEMORY, addr, &data)
            .and_then(|()| host.read_memory(&mut system, REMOTE_MEMORY, addr, WORDS as usize));
        match attempt {
            Ok(read_back) if read_back == data => delivered += 1,
            Ok(_) => {} // silently wrong data would be a checksum escape
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }

    let retries = system.retry_counters();
    let faults = &system.noc_stats().faults;
    Ok(Outcome {
        delivered,
        error,
        retransmissions: retries.retransmissions,
        acked: retries.acked,
        corrupt_dropped: system.service_counters().corrupt_dropped(),
        packets_dropped: faults.packets_dropped,
        flits_corrupted: faults.flits_corrupted,
    })
}

fn run_sweep() -> Result<String, SystemError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E18: {OPS} host write+read round trips ({WORDS} words each) to the remote\n\
         memory IP per fault configuration, seed {SEED:#x}\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "delivered", "retx", "acked", "ckdrop", "pktdrop", "corrupt"
    );
    for &(label, corrupt, drop) in POINTS {
        let o = run_point(corrupt, drop)?;
        let _ = writeln!(
            out,
            "{:<28} {:>5}/{:<3} {:>8} {:>8} {:>8} {:>8} {:>8}",
            label,
            o.delivered,
            OPS,
            o.retransmissions,
            o.acked,
            o.corrupt_dropped,
            o.packets_dropped,
            o.flits_corrupted
        );
        if let Some(e) = o.error {
            let _ = writeln!(out, "{:<28} ^ aborted with typed error: {e}", "");
        }
    }
    let _ = writeln!(
        out,
        "\nAt rate zero every operation lands with zero retransmissions; at\n\
         moderate rates the checksum/ack/retry layer recovers every lost or\n\
         corrupted packet (delivered stays {OPS}/{OPS} while retx > 0); past the\n\
         retry budget the failure surfaces as a typed error — never a hang\n\
         and never a silent wrong answer."
    );
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let first = run_sweep()?;
    let second = run_sweep()?;
    assert_eq!(
        first, second,
        "same seed must reproduce the identical sweep"
    );
    print!("{first}");
    println!("Determinism check: two same-seed sweeps produced identical reports.");
    Ok(())
}

//! E16 (extension) — where the cycles go: per-processor utilization of
//! the two flagship applications. Quantifies the pipelining argument of
//! E6 (edge detection keeps both processors busy) and the serialization
//! inherent in the histogram's token ring.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_utilization`.

use multinoc::apps::{edge, histogram};
use multinoc::{host::Host, NodeId, System, PROCESSOR_1, PROCESSOR_2, REMOTE_MEMORY};
use multinoc_bench::table_row;

fn report(system: &System, nodes: &[NodeId]) -> Result<(), Box<dyn std::error::Error>> {
    table_row!("processor", "running", "blocked", "halted/idle", "busy");
    for &node in nodes {
        let u = system.processor_utilization(node)?;
        table_row!(
            node.to_string(),
            u.running,
            u.blocked,
            u.halted + u.idle,
            format!("{:.0}%", u.busy_fraction() * 100.0)
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E16: processor utilization by application\n");

    println!("edge detection, 32x16 image, line-pipelined over 2 processors:");
    let image = edge::Image::synthetic(32, 16);
    let mut system = System::paper_config()?;
    let mut host = Host::new().with_budget(50_000_000);
    host.synchronize(&mut system)?;
    let processors = [PROCESSOR_1, PROCESSOR_2];
    edge::load(&mut system, &mut host, &processors, image.width() as u16)?;
    let run = edge::run(&mut system, &mut host, &processors, &image)?;
    assert_eq!(run.output, edge::reference(&image));
    report(&system, &processors)?;

    println!("\ndistributed histogram, 200 samples, 2-processor token ring:");
    let mut system = System::paper_config()?;
    let mut host = Host::new().with_budget(50_000_000);
    host.synchronize(&mut system)?;
    let data: Vec<u16> = (0..200).map(|i| ((i * 37 + 11) % 251) as u16).collect();
    let run = histogram::run(&mut system, &mut host, &processors, REMOTE_MEMORY, &data)?;
    assert_eq!(run.bins, histogram::reference(&data));
    report(&system, &processors)?;

    println!(
        "\nconclusion: the pipelined edge detector splits work symmetrically,\n\
         while the histogram's token ring makes the tail processor wait —\n\
         blocked cycles localize exactly where the synchronization is."
    );
    Ok(())
}

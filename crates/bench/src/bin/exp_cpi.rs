//! E7 — §2.4: "The R8 processor is a 16-bit Von Neumann architecture
//! with a CPI between 2 and 4."
//!
//! Runs instruction-mix microbenchmarks on a standalone R8 core and
//! reports the measured CPI per mix, plus the wait-state effect of
//! remote (NoC) accesses that the Processor IP adds.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_cpi`.

use multinoc::{host::Host, System, PROCESSOR_1, REMOTE_MEMORY};
use multinoc_bench::table_row;
use r8::asm::assemble;
use r8::core::{Cpu, RamBus};

fn standalone_cpi(body: &str, repeat: usize) -> f64 {
    let mut source = String::new();
    for _ in 0..repeat {
        source.push_str(body);
        source.push('\n');
    }
    source.push_str("HALT\n");
    let program = assemble(&source).expect("mix assembles");
    let mut bus = RamBus::new(4096);
    bus.load(0, program.words());
    let mut cpu = Cpu::new();
    cpu.run(&mut bus, 10_000_000).expect("halts");
    cpu.cpi()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E7: R8 cycles per instruction by mix (paper: between 2 and 4)\n");
    table_row!("instruction mix", "CPI");
    let mixes: [(&str, &str); 6] = [
        ("pure ALU", "ADD R1, R2, R3\nXOR R4, R1, R2"),
        ("ALU + immediates", "ADDI R1, 3\nLDL R2, 7\nSUBI R1, 1"),
        ("shifts", "SL0 R1, R2\nSR1 R2, R1"),
        (
            "local loads/stores",
            "XOR R0, R0, R0\nLIW R5, 0x300\nST R1, R5, R0\nLD R2, R5, R0",
        ),
        (
            "mul/div",
            "LIW R1, 77\nLIW R2, 5\nMUL R3, R1, R2\nDIV R4, R3, R2",
        ),
        ("stack traffic", "LIW R15, 0x3F0\nLDSP R15\nPUSH R1\nPOP R2"),
    ];
    for (name, body) in mixes {
        let cpi = standalone_cpi(body, 200);
        assert!((2.0..=4.0).contains(&cpi), "{name} CPI {cpi} out of band");
        table_row!(name, format!("{cpi:.2}"));
    }

    // Branchy code: the taken-branch penalty keeps CPI inside the band.
    let branchy = {
        let program = assemble(
            "
        LIW  R1, 500
loop:   SUBI R1, 1
        JMPZD done
        JMPD loop
done:   HALT
",
        )?;
        let mut bus = RamBus::new(1024);
        bus.load(0, program.words());
        let mut cpu = Cpu::new();
        cpu.run(&mut bus, 1_000_000)?;
        cpu.cpi()
    };
    table_row!("tight branch loop", format!("{branchy:.2}"));

    // Remote accesses stall the core with wait states (§2.4): effective
    // CPI rises well above the band — that is the NUMA cost, not the
    // core's.
    let mut system = System::paper_config()?;
    let base = system
        .address_map(PROCESSOR_1)?
        .window_base(REMOTE_MEMORY)
        .expect("remote window");
    let program = assemble(&format!(
        "
        XOR  R0, R0, R0
        LIW  R1, {base}
        LIW  R3, 100
loop:   LD   R2, R1, R0      ; remote load -> NoC round trip
        SUBI R3, 1
        JMPZD done
        JMPD loop
done:   HALT
"
    ))?;
    let mut host = Host::new();
    host.synchronize(&mut system)?;
    host.load_program(&mut system, PROCESSOR_1, program.words())?;
    host.activate(&mut system, PROCESSOR_1)?;
    system.run_until_halted(10_000_000)?;
    let cpu = system.cpu(PROCESSOR_1)?;
    table_row!(
        "remote-load loop (NUMA)",
        format!("{:.2}  <- includes NoC wait states", cpu.cpi())
    );
    assert!(cpu.cpi() > 4.0);
    println!("\nconclusion: core CPI stays in the paper's 2..4 band; only NoC wait\nstates (remote loads, I/O, wait) push the effective CPI beyond it.");
    Ok(())
}

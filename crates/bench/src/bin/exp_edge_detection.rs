//! E6 — §4 Fig. 10: parallel edge detection, one versus two processors.
//!
//! Streams synthetic images of several sizes through the line-pipelined
//! Sobel application and reports cycles, wall time at 25 MHz, and the
//! two-processor speedup. Output correctness is checked against the
//! host-side reference on every run.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_edge_detection`.

use multinoc::apps::edge::{self, Image};
use multinoc::{host::Host, NodeId, System, PROCESSOR_1, PROCESSOR_2};
use multinoc_bench::table_row;

fn detect(processors: &[NodeId], image: &Image) -> Result<u64, Box<dyn std::error::Error>> {
    let mut system = System::paper_config()?;
    let mut host = Host::new().with_budget(50_000_000);
    host.synchronize(&mut system)?;
    edge::load(&mut system, &mut host, processors, image.width() as u16)?;
    let run = edge::run(&mut system, &mut host, processors, image)?;
    assert_eq!(run.output, edge::reference(image), "output mismatch");
    Ok(run.cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E6: parallel edge detection (Fig. 10), verified against the reference\n");
    table_row!(
        "image",
        "1 proc cycles",
        "2 proc cycles",
        "speedup",
        "2-proc wall time"
    );
    for (w, h) in [(16usize, 8usize), (32, 16), (48, 24), (64, 32)] {
        let image = Image::synthetic(w, h);
        let serial = detect(&[PROCESSOR_1], &image)?;
        let parallel = detect(&[PROCESSOR_1, PROCESSOR_2], &image)?;
        let ms = parallel as f64 / 25.0e6 * 1e3;
        table_row!(
            format!("{w}x{h}"),
            serial,
            parallel,
            format!("{:.2}x", serial as f64 / parallel as f64),
            format!("{ms:.1} ms")
        );
    }
    println!(
        "\nconclusion: the pipelined two-processor version approaches 2x speedup\n\
         as compute dominates the serial-link feeding, the behaviour the demo\n\
         GUI of Fig. 10 showcased."
    );
    Ok(())
}

//! E24 — topology sweep: the paper's mesh against a torus and a chiplet
//! mesh-of-meshes at matched router counts, the off-chip channel model
//! (serialized vs parallel die-to-die links), and a 1024-router chiplet
//! system driven end to end through the parallel kernel.
//!
//! Three sections:
//!
//! 1. **Matched-count sweep** — for each router count, the same seeded
//!    uniform traffic runs on a mesh, a torus and a chiplet grid of
//!    identical size. The chiplet grid pays the off-chip boundary
//!    crossings; the torus pays for VC-free deadlock freedom with
//!    up*/down* root congestion.
//! 2. **Off-chip channel separation** — the same cross-chiplet corner
//!    packet and the same uniform workload on `OffChipParallel` vs
//!    `OffChipSerial` d2d links; the serialized channel must cost more,
//!    both on the single packet and on the mean.
//! 3. **1024 routers** — `NocConfig::chiplet(4, 8, …)` is a 32×32 grid
//!    of 1024 routers across 16 chiplets; the sequential and the
//!    8-thread batched parallel kernel must agree on every counter.
//!
//! Everything is seeded; the sweep runs twice and the report must be
//! byte-identical before anything prints. The machine-readable summary
//! lands in `BENCH_topology.json`. `EXP_TOPOLOGY_SMOKE=1` shrinks the
//! cycle counts for CI.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_topology`.

use std::fmt::Write as _;

use hermes_noc::traffic::{Pattern, TrafficGen};
use hermes_noc::{D2dChannel, KernelMode, Noc, NocConfig, Packet, RouterAddr};

/// Seed shared by every configuration of the sweep.
const SEED: u64 = 0xE240_7090;
/// Flits of payload per generated packet.
const PAYLOAD: usize = 4;

/// Cycle scale: 1 for the CI smoke run, 4 for the full measurement.
fn scale() -> u64 {
    if std::env::var_os("EXP_TOPOLOGY_SMOKE").is_some() {
        1
    } else {
        4
    }
}

struct Point {
    name: String,
    routers: usize,
    cycles: u64,
    sent: u64,
    delivered: u64,
    mean_latency: f64,
    p95_latency: u64,
    peak_utilization: f64,
}

/// Drives seeded uniform traffic over `config` for `cycles`, drains,
/// and reads every number off the stats the topology exported.
fn measure(config: NocConfig, cycles: u64, rate: f64) -> Point {
    let name = config.topology.to_string();
    let routers = config.router_count();
    let cadence = config.cycles_per_flit;
    let mut noc = Noc::new(config).expect("valid config");
    let mut gen = TrafficGen::new(Pattern::Uniform, rate, PAYLOAD, SEED);
    gen.drive(&mut noc, cycles, 4_000_000).expect("drains");
    let s = noc.stats();
    Point {
        name,
        routers,
        cycles: s.cycles,
        sent: s.packets_sent,
        delivered: s.packets_delivered,
        mean_latency: s.mean_latency().unwrap_or(0.0),
        p95_latency: s.latency_quantile(0.95).unwrap_or(0),
        peak_utilization: s.peak_link_utilization(cadence),
    }
}

/// Latency of one corner-to-corner packet on an otherwise idle network.
fn corner_latency(config: NocConfig) -> u64 {
    let (w, h) = (config.width(), config.height());
    let mut noc = Noc::new(config).expect("valid config");
    let id = noc
        .send(
            RouterAddr::new(0, 0),
            Packet::new(RouterAddr::new(w - 1, h - 1), vec![7; PAYLOAD]),
        )
        .expect("send");
    noc.run_until_idle(1_000_000).expect("drains");
    noc.stats().record(id).expect("recorded").latency()
}

fn run_sweep(scale: u64) -> (String, String) {
    let mut out = String::new();
    let mut points: Vec<Point> = Vec::new();
    let _ = writeln!(
        out,
        "E24: topology sweep (seed {SEED:#x}, scale {scale}x)\n\
         uniform traffic, {PAYLOAD}-flit payloads, same seed on every topology\n"
    );

    // 1. Matched router counts: mesh vs torus vs chiplet of the same size.
    let cycles = 2_000 * scale;
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>6} {:>10} {:>9} {:>8} {:>7}",
        "topology", "routers", "sent", "delivered", "mean lat", "p95 lat", "peak u"
    );
    for side in [4u8, 6] {
        let k_chip = side / 2;
        let trio = [
            NocConfig::mesh(side, side),
            NocConfig::torus(side, side),
            NocConfig::chiplet(k_chip, 2, D2dChannel::OffChipParallel),
        ];
        for config in trio {
            let p = measure(config, cycles, 0.05);
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>6} {:>10} {:>9.1} {:>8} {:>6.2}%",
                p.name,
                p.routers,
                p.sent,
                p.delivered,
                p.mean_latency,
                p.p95_latency,
                p.peak_utilization * 100.0
            );
            assert_eq!(p.sent, p.delivered, "{}: healthy runs deliver all", p.name);
            points.push(p);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "The chiplet grid routes like the mesh plus the die-to-die crossings.\n\
         The torus pays for VC-free deadlock freedom: its turn-restricted\n\
         up*/down* table concentrates traffic near the spanning-tree root,\n\
         so under uniform load its latency exceeds the mesh's despite the\n\
         shorter physical distances the wraparound links offer.\n"
    );

    // 2. Off-chip channel model: serialized vs parallel d2d links.
    let _ = writeln!(out, "off-chip channel separation (2x2 chiplets of 2x2):");
    let mut d2d_points: Vec<(String, u64, Point)> = Vec::new();
    for d2d in [D2dChannel::OffChipParallel, D2dChannel::OffChipSerial] {
        let corner = corner_latency(NocConfig::chiplet(2, 2, d2d));
        let p = measure(NocConfig::chiplet(2, 2, d2d), cycles, 0.05);
        let _ = writeln!(
            out,
            "  {:<34} corner-to-corner {:>4} cycles, mean {:>7.1}, p95 {:>5}",
            p.name, corner, p.mean_latency, p.p95_latency
        );
        d2d_points.push((format!("{d2d:?}"), corner, p));
    }
    let mesh_corner = corner_latency(NocConfig::mesh(4, 4));
    let _ = writeln!(
        out,
        "  {:<34} corner-to-corner {:>4} cycles (no off-chip hops)",
        "mesh-4x4", mesh_corner
    );
    assert!(
        mesh_corner < d2d_points[0].1 && d2d_points[0].1 < d2d_points[1].1,
        "expected mesh ({mesh_corner}) < parallel d2d ({}) < serial d2d ({})",
        d2d_points[0].1,
        d2d_points[1].1
    );
    assert!(
        d2d_points[0].2.mean_latency < d2d_points[1].2.mean_latency,
        "serialized d2d must also cost more on the traffic mean"
    );
    let _ = writeln!(
        out,
        "  the serialized channel stretches every boundary crossing; the\n\
         parallel channel only pays its pipeline latency.\n"
    );

    // 3. 1024 routers end to end: 16 chiplets of 8x8, sequential vs
    // 8-thread batched parallel kernel on the same seeded traffic.
    let big_cycles = 300 * scale;
    let _ = writeln!(out, "1024-router chiplet system (4x4 chiplets of 8x8):");
    let mut big_fingerprints = Vec::new();
    let mut big_point = None;
    for kernel in [KernelMode::Active, KernelMode::Parallel { threads: 8 }] {
        let config = NocConfig::chiplet(4, 8, D2dChannel::OffChipParallel)
            .with_kernel_mode(kernel)
            .with_batch_window(16);
        assert_eq!(config.router_count(), 1024);
        let p = measure(config, big_cycles, 0.02);
        let _ = writeln!(
            out,
            "  {:<26} {:>6} sent {:>6} delivered, mean lat {:>7.1}, {} cycles",
            format!("{kernel:?}"),
            p.sent,
            p.delivered,
            p.mean_latency,
            p.cycles
        );
        big_fingerprints.push((p.sent, p.delivered, p.cycles, p.p95_latency));
        big_point = Some(p);
    }
    assert_eq!(
        big_fingerprints[0], big_fingerprints[1],
        "kernels diverged on the 1024-router chiplet system"
    );
    let big = big_point.expect("big run happened");
    assert!(
        big.delivered > 0,
        "the big system must actually move traffic"
    );
    let _ = writeln!(
        out,
        "  sequential and parallel kernels agree on every counter.\n"
    );

    // Machine-readable summary.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E24 topology sweep\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"matched_router_counts\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"routers\": {}, \"cycles\": {}, \
             \"sent\": {}, \"delivered\": {}, \"mean_latency\": {:.2}, \
             \"p95_latency\": {}, \"peak_utilization\": {:.4}}}{comma}",
            p.name,
            p.routers,
            p.cycles,
            p.sent,
            p.delivered,
            p.mean_latency,
            p.p95_latency,
            p.peak_utilization
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"d2d_channels\": [");
    for (i, (channel, corner, p)) in d2d_points.iter().enumerate() {
        let comma = if i + 1 == d2d_points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"channel\": \"{channel}\", \"corner_latency\": {corner}, \
             \"mean_latency\": {:.2}, \"p95_latency\": {}}}{comma}",
            p.mean_latency, p.p95_latency
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"mesh_corner_latency\": {mesh_corner},");
    let _ = writeln!(
        json,
        "  \"chiplet_1024\": {{\"topology\": \"{}\", \"routers\": {}, \
         \"cycles\": {}, \"sent\": {}, \"delivered\": {}, \
         \"mean_latency\": {:.2}, \"kernels_agree\": true}}",
        big.name, big.routers, big.cycles, big.sent, big.delivered, big.mean_latency
    );
    json.push_str("}\n");
    (out, json)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale();
    let first = run_sweep(scale);
    let second = run_sweep(scale);
    assert_eq!(
        first, second,
        "same seed must reproduce the identical sweep"
    );
    let (report, json) = first;
    std::fs::write("BENCH_topology.json", &json)?;
    print!("{report}");
    println!("Determinism check: two same-seed sweeps produced identical reports.");
    println!("Machine-readable summary written to BENCH_topology.json");
    Ok(())
}

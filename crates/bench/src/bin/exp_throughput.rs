//! E2 — §2.1 peak throughput: "At the operating frequency of 50 MHz,
//! with a word size (flit) of 8 bits the theoretical peak throughput of
//! each Hermes router is 1 Gbit/s."
//!
//! A router reaches its peak when all five ports hold simultaneous
//! connections, each moving one flit per 2-cycle handshake. The
//! experiment saturates the centre router of a 3×3 mesh with five
//! non-conflicting wormhole flows (W→E, E→W, S→N, N→S and the local
//! self-loop) and measures the aggregate delivered bandwidth.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_throughput`.

use hermes_noc::{Noc, NocConfig, Port, RouterAddr};
use multinoc_bench::{saturate, table_row};

const CLOCK_HZ: f64 = 50.0e6;

fn center_flows() -> Vec<(RouterAddr, RouterAddr)> {
    vec![
        (RouterAddr::new(0, 1), RouterAddr::new(2, 1)), // W -> E through centre
        (RouterAddr::new(2, 1), RouterAddr::new(0, 1)), // E -> W
        (RouterAddr::new(1, 0), RouterAddr::new(1, 2)), // S -> N
        (RouterAddr::new(1, 2), RouterAddr::new(1, 0)), // N -> S
        (RouterAddr::new(1, 1), RouterAddr::new(1, 1)), // Local self-loop
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E2: peak router throughput at {} MHz\n", CLOCK_HZ / 1e6);
    table_row!(
        "flit width (bits)",
        "theory Gbit/s",
        "measured Gbit/s",
        "efficiency"
    );
    for flit_bits in [8u8, 16] {
        let config = NocConfig::mesh(3, 3).with_flit_bits(flit_bits);
        let theory = config.peak_router_throughput_bps(CLOCK_HZ);
        let mut noc = Noc::new(config.clone())?;
        let cycles = 60_000u64;
        // Long packets amortize the per-packet routing charge.
        saturate(&mut noc, &center_flows(), 200, cycles)?;
        // Aggregate flits leaving the centre router over its 5 outputs.
        let centre = RouterAddr::new(1, 1);
        let flits: u64 = [
            Port::East,
            Port::West,
            Port::North,
            Port::South,
            Port::Local,
        ]
        .into_iter()
        .filter_map(|p| noc.stats().link_flits.get(&(centre, p)))
        .copied()
        .sum();
        let measured = flits as f64 * f64::from(flit_bits) * CLOCK_HZ / cycles as f64;
        table_row!(
            flit_bits,
            format!("{:.2}", theory / 1e9),
            format!("{:.2}", measured / 1e9),
            format!("{:.0}%", measured / theory * 100.0)
        );
    }

    println!("\nper-link ceiling (one connection): one flit per 2 cycles");
    table_row!("flit width (bits)", "link theory Mbit/s", "measured Mbit/s");
    for flit_bits in [8u8, 16] {
        let config = NocConfig::mesh(2, 2).with_flit_bits(flit_bits);
        let mut noc = Noc::new(config.clone())?;
        let cycles = 40_000u64;
        saturate(
            &mut noc,
            &[(RouterAddr::new(0, 0), RouterAddr::new(1, 0))],
            200,
            cycles,
        )?;
        let theory = CLOCK_HZ / f64::from(config.cycles_per_flit) * f64::from(flit_bits);
        let measured = noc.stats().peak_link_throughput_bps(flit_bits, CLOCK_HZ);
        table_row!(
            flit_bits,
            format!("{:.0}", theory / 1e6),
            format!("{:.0}", measured / 1e6)
        );
    }
    println!(
        "\nconclusion: with five simultaneous connections an 8-bit router approaches\n\
         the paper's 1 Gbit/s figure; the residual gap is the per-packet routing charge."
    );
    Ok(())
}

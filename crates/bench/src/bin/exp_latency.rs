//! E1 — §2.1 latency model: `latency = (Σ R_i + P) × 2`.
//!
//! Sends lone packets across an idle mesh for every hop count and a
//! range of packet sizes, and compares the measured delivery latency
//! with the paper's analytic formula. They must agree exactly.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_latency`.

use hermes_noc::{latency, Noc, NocConfig, Packet, RouterAddr};
use multinoc_bench::table_row;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E1: minimal packet latency vs the paper's analytic model");
    println!("    latency = (sum_i R_i + P) x 2,  R_i = 7 cycles, 2 cycles/flit\n");
    table_row!(
        "routers on path (n)",
        "payload flits",
        "P (wire flits)",
        "analytic",
        "measured",
        "match"
    );

    let config = NocConfig::mesh(8, 8);
    let mut mismatches = 0;
    for hops in 0..=7u8 {
        for payload in [0usize, 1, 4, 16, 64, 128] {
            let mut noc = Noc::new(config.clone())?;
            let src = RouterAddr::new(0, 0);
            let dst = RouterAddr::new(hops, 0);
            let id = noc.send(src, Packet::new(dst, vec![0xA5; payload]))?;
            noc.run_until_idle(1_000_000)?;
            let record = noc.stats().record(id).expect("recorded");
            let analytic = latency::minimal_latency(
                src.routers_on_path(dst),
                record.wire_flits,
                config.routing_cycles,
                config.cycles_per_flit,
            );
            let measured = record.latency();
            if measured != analytic {
                mismatches += 1;
            }
            table_row!(
                src.routers_on_path(dst),
                payload,
                record.wire_flits,
                analytic,
                measured,
                if measured == analytic { "yes" } else { "NO" }
            );
        }
    }
    println!(
        "\n{} — diagonal paths (X then Y turns) for good measure:",
        if mismatches == 0 {
            "all exact"
        } else {
            "MISMATCHES FOUND"
        }
    );
    table_row!("path", "n", "analytic", "measured");
    for (x, y) in [(1u8, 1u8), (3, 2), (7, 7)] {
        let mut noc = Noc::new(config.clone())?;
        let src = RouterAddr::new(0, 0);
        let dst = RouterAddr::new(x, y);
        let id = noc.send(src, Packet::new(dst, vec![1, 2, 3, 4]))?;
        noc.run_until_idle(1_000_000)?;
        let record = noc.stats().record(id).unwrap();
        let analytic = latency::minimal_latency(
            src.routers_on_path(dst),
            record.wire_flits,
            config.routing_cycles,
            config.cycles_per_flit,
        );
        table_row!(
            format!("00 -> {dst}"),
            src.routers_on_path(dst),
            analytic,
            record.latency()
        );
        assert_eq!(record.latency(), analytic);
    }
    println!("\nconclusion: the simulator reproduces the paper's minimal-latency model exactly.");
    std::process::exit(i32::from(mismatches > 0));
}

//! E12 (extension) — cost of the §5 future-work compiler: the same
//! kernels written in hand-tuned R8 assembly and in R8C, compared by
//! executed cycles on a standalone core. Quantifies what the paper's
//! "faster software implementation" trades away.
//!
//! Run with `cargo run -p multinoc-bench --bin exp_compiler`.

use multinoc_bench::table_row;
use r8::asm::assemble;
use r8::core::{Cpu, RamBus};

fn run_words(words: &[u16]) -> (u64, u16) {
    let mut bus = RamBus::new(4096);
    bus.load(0, words);
    let mut cpu = Cpu::new();
    cpu.run(&mut bus, 50_000_000).expect("halts");
    (cpu.cycles(), bus.peek(0x700))
}

fn build_with(source: &str, opt: r8c::OptLevel) -> r8::Program {
    let assembly = r8c::compile_with(source, opt).expect("compiles");
    r8::asm::assemble(&assembly).expect("assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E12: hand assembly vs r8c-compiled code (cycles to completion)\n");
    table_row!(
        "kernel",
        "hand asm",
        "r8c -O0",
        "r8c -O1",
        "O1 overhead",
        "agree"
    );

    // Kernel 1: sum 1..=200.
    let hand_sum = assemble(
        "
        XOR  R0, R0, R0
        LIW  R1, 200
        XOR  R2, R2, R2
loop:   ADD  R2, R2, R1
        SUBI R1, 1
        JMPZD done
        JMPD loop
done:   LIW  R3, 0x700
        ST   R2, R3, R0
        HALT
",
    )?;
    let sum_src = "func main() {
             var i = 200;
             var total = 0;
             while (i > 0) {
                 total = total + i;
                 i = i - 1;
             }
             poke(0x700, total);
         }";

    // Kernel 2: 16-entry popcount histogram of i*259.
    let hand_pop = assemble(
        "
        XOR  R0, R0, R0
        XOR  R4, R4, R4          ; i
        XOR  R7, R7, R7          ; checksum
outer:  LIW  R5, 259
        MUL  R5, R4, R5          ; x = i * 259
        XOR  R6, R6, R6          ; popcount
bits:   SUB  R8, R5, R0
        JMPZD donebits
        LIW  R9, 1
        AND  R9, R5, R9
        ADD  R6, R6, R9
        SR0  R5, R5
        JMPD bits
donebits:
        ADD  R7, R7, R6
        ADDI R4, 1
        LIW  R9, 16
        SUB  R8, R4, R9
        JMPZD fin
        JMPD outer
fin:    LIW  R3, 0x700
        ST   R7, R3, R0
        HALT
",
    )?;
    let pop_src = "func weight(x) {
             var acc = 0;
             while (x) {
                 acc = acc + (x & 1);
                 x = x >> 1;
             }
             return acc;
         }
         func main() {
             var i = 0;
             var checksum = 0;
             while (i < 16) {
                 checksum = checksum + weight(i * 259);
                 i = i + 1;
             }
             poke(0x700, checksum);
         }";

    for (name, hand, source) in [
        ("sum 1..=200", hand_sum, sum_src),
        ("popcount x16", hand_pop, pop_src),
    ] {
        let (hand_cycles, hand_result) = run_words(hand.words());
        let (o0_cycles, o0_result) = run_words(build_with(source, r8c::OptLevel::None).words());
        let (o1_cycles, o1_result) = run_words(build_with(source, r8c::OptLevel::Basic).words());
        table_row!(
            name,
            hand_cycles,
            o0_cycles,
            o1_cycles,
            format!("{:.2}x", o1_cycles as f64 / hand_cycles as f64),
            hand_result == o0_result && o0_result == o1_result
        );
        assert_eq!(hand_result, o0_result, "{name} O0 result differs");
        assert_eq!(hand_result, o1_result, "{name} O1 result differs");
    }
    println!(
        "\nconclusion: the stack-based compiler costs a few x over hand assembly;\n\
         folding and direct operand loading (-O1) claw part of it back — the\n\
         productivity/performance trade of the C compiler the paper planned."
    );
    Ok(())
}

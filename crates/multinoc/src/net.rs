//! The view an IP core has of the network: its local port, speaking
//! service messages.

use hermes_noc::{Noc, RouterAddr};

use crate::error::SystemError;
use crate::node::NodeId;
use crate::service::{Message, Service};
use crate::span::SpanLog;
use crate::trace::{summarize, Direction, ServiceCounters, TraceEvent, TraceLog};

/// Observation hooks the [`System`](crate::System) attaches so every
/// service message is counted (and, when enabled, logged and linked into
/// its causal service span).
#[derive(Debug)]
pub(crate) struct Observer<'a> {
    pub node: NodeId,
    pub now: u64,
    pub counters: &'a mut ServiceCounters,
    pub log: Option<&'a mut TraceLog>,
    pub spans: Option<&'a mut SpanLog>,
}

impl Observer<'_> {
    fn record(
        &mut self,
        direction: Direction,
        peer: RouterAddr,
        service: &Service,
        seq: u16,
        packet: Option<u64>,
    ) {
        self.counters.count(self.node, direction, service.code());
        if let Some(log) = self.log.as_deref_mut() {
            log.push(TraceEvent {
                cycle: self.now,
                node: self.node,
                direction,
                peer,
                code: service.code(),
                summary: summarize(service),
            });
        }
        if let Some(spans) = self.spans.as_deref_mut() {
            match direction {
                Direction::Sent => {
                    spans.on_sent(self.now, self.node, peer, seq, service.code(), packet)
                }
                Direction::Received => {
                    spans.on_received(self.now, self.node, peer, seq, service.code())
                }
            }
        }
    }
}

/// An IP core's handle on its router's Local port. Borrowed from the
/// [`System`](crate::System) for the duration of one IP step.
#[derive(Debug)]
pub struct NetPort<'a> {
    noc: &'a mut Noc,
    here: RouterAddr,
    observer: Option<Observer<'a>>,
    /// Undecodable packets dropped by `recv` during this borrow (also
    /// tallied in [`ServiceCounters::corrupt_dropped`] when observed).
    corrupt_drops: u64,
}

impl<'a> NetPort<'a> {
    /// A bare port at router `here` (no observation).
    pub fn new(noc: &'a mut Noc, here: RouterAddr) -> Self {
        Self {
            noc,
            here,
            observer: None,
            corrupt_drops: 0,
        }
    }

    /// A port with the system's observation hooks attached.
    pub(crate) fn observed(noc: &'a mut Noc, here: RouterAddr, observer: Observer<'a>) -> Self {
        Self {
            noc,
            here,
            observer: Some(observer),
            corrupt_drops: 0,
        }
    }

    /// The router this port belongs to.
    pub fn here(&self) -> RouterAddr {
        self.here
    }

    /// Flit width of the underlying network.
    pub fn flit_bits(&self) -> u8 {
        self.noc.config().flit_bits
    }

    /// The network's reconfiguration epoch: bumped every time the online
    /// fault diagnosis declares a link dead and recomputes routes. A
    /// change between two observations tells the reliability layer that
    /// earlier timeouts may have been the reconfiguration, not loss.
    pub fn epoch(&self) -> u64 {
        self.noc.current_epoch()
    }

    /// Whether the latest reconfiguration epoch has had time to reach
    /// every router (always `true` on a healthy mesh).
    pub fn reconfiguration_settled(&self) -> bool {
        self.noc.reconfiguration_settled()
    }

    /// Sends a service message to the IP at router `dest`.
    ///
    /// # Errors
    ///
    /// [`SystemError::Noc`] if the destination is outside the mesh or the
    /// message does not fit a packet.
    pub fn send(&mut self, dest: RouterAddr, service: Service) -> Result<(), SystemError> {
        self.send_seq(dest, service, 0)
    }

    /// Sends a service message carrying sequence number `seq` (`0` for
    /// unsequenced).
    ///
    /// # Errors
    ///
    /// As [`send`](Self::send).
    pub fn send_seq(
        &mut self,
        dest: RouterAddr,
        service: Service,
        seq: u16,
    ) -> Result<(), SystemError> {
        let flit_bits = self.flit_bits();
        let packet = Message::new(self.here, service.clone())
            .with_seq(seq)
            .to_packet(dest, flit_bits);
        let id = self.noc.send(self.here, packet)?;
        if let Some(observer) = self.observer.as_mut() {
            observer.record(Direction::Sent, dest, &service, seq, Some(id.as_u64()));
        }
        Ok(())
    }

    /// Receives the next *well-formed* delivered service message, if any.
    ///
    /// Packets that fail to decode — corrupted in flight, truncated,
    /// unknown code — are counted and silently dropped, never surfaced:
    /// on a faulty network an undecodable packet is an expected event the
    /// reliability layer recovers from by retransmission, not a protocol
    /// error.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept so transport-level
    /// failures can surface without an API break.
    pub fn recv(&mut self) -> Result<Option<Message>, SystemError> {
        let flit_bits = self.flit_bits();
        loop {
            match self.noc.try_recv(self.here) {
                None => return Ok(None),
                Some((_, packet)) => match Message::from_packet(&packet, flit_bits) {
                    Ok(message) => {
                        if let Some(observer) = self.observer.as_mut() {
                            observer.record(
                                Direction::Received,
                                message.src,
                                &message.service,
                                message.seq,
                                None,
                            );
                        }
                        return Ok(Some(message));
                    }
                    Err(_) => {
                        self.corrupt_drops += 1;
                        if let Some(observer) = self.observer.as_mut() {
                            observer.counters.count_corrupt_drop();
                        }
                    }
                },
            }
        }
    }

    /// Undecodable packets dropped by [`recv`](Self::recv) during this
    /// borrow of the port.
    pub fn corrupt_drops(&self) -> u64 {
        self.corrupt_drops
    }
}

//! The view an IP core has of the network: its local port, speaking
//! service messages.

use hermes_noc::{Noc, RouterAddr};

use crate::error::SystemError;
use crate::node::NodeId;
use crate::service::{Message, Service};
use crate::trace::{summarize, Direction, ServiceCounters, TraceEvent, TraceLog};

/// Observation hooks the [`System`](crate::System) attaches so every
/// service message is counted (and, when enabled, logged).
#[derive(Debug)]
pub(crate) struct Observer<'a> {
    pub node: NodeId,
    pub now: u64,
    pub counters: &'a mut ServiceCounters,
    pub log: Option<&'a mut TraceLog>,
}

impl Observer<'_> {
    fn record(&mut self, direction: Direction, peer: RouterAddr, service: &Service) {
        self.counters.count(self.node, direction, service.code());
        if let Some(log) = self.log.as_deref_mut() {
            log.push(TraceEvent {
                cycle: self.now,
                node: self.node,
                direction,
                peer,
                code: service.code(),
                summary: summarize(service),
            });
        }
    }
}

/// An IP core's handle on its router's Local port. Borrowed from the
/// [`System`](crate::System) for the duration of one IP step.
#[derive(Debug)]
pub struct NetPort<'a> {
    noc: &'a mut Noc,
    here: RouterAddr,
    observer: Option<Observer<'a>>,
}

impl<'a> NetPort<'a> {
    /// A bare port at router `here` (no observation).
    pub fn new(noc: &'a mut Noc, here: RouterAddr) -> Self {
        Self {
            noc,
            here,
            observer: None,
        }
    }

    /// A port with the system's observation hooks attached.
    pub(crate) fn observed(noc: &'a mut Noc, here: RouterAddr, observer: Observer<'a>) -> Self {
        Self {
            noc,
            here,
            observer: Some(observer),
        }
    }

    /// The router this port belongs to.
    pub fn here(&self) -> RouterAddr {
        self.here
    }

    /// Flit width of the underlying network.
    pub fn flit_bits(&self) -> u8 {
        self.noc.config().flit_bits
    }

    /// Sends a service message to the IP at router `dest`.
    ///
    /// # Errors
    ///
    /// [`SystemError::Noc`] if the destination is outside the mesh or the
    /// message does not fit a packet.
    pub fn send(&mut self, dest: RouterAddr, service: Service) -> Result<(), SystemError> {
        let flit_bits = self.flit_bits();
        let packet = Message::new(self.here, service.clone()).to_packet(dest, flit_bits);
        self.noc.send(self.here, packet)?;
        if let Some(observer) = self.observer.as_mut() {
            observer.record(Direction::Sent, dest, &service);
        }
        Ok(())
    }

    /// Receives the next delivered service message, if any.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] if a delivered packet does not decode as
    /// a service message.
    pub fn recv(&mut self) -> Result<Option<Message>, SystemError> {
        let flit_bits = self.flit_bits();
        match self.noc.try_recv(self.here) {
            None => Ok(None),
            Some((_, packet)) => {
                let message = Message::from_packet(&packet, flit_bits).map_err(|e| {
                    SystemError::Protocol(format!("bad service packet at {}: {e}", self.here))
                })?;
                if let Some(observer) = self.observer.as_mut() {
                    observer.record(Direction::Received, message.src, &message.service);
                }
                Ok(Some(message))
            }
        }
    }
}

//! The Serial IP core (§2.2 of the paper).
//!
//! "The basic function of the Serial IP is to assemble and disassemble
//! packets. When information comes from the host computer, the Serial IP
//! creates a valid NoC packet. When a packet is received from the NoC it
//! must be disassembled, and sent serially to the host computer."
//!
//! Four commands arrive from the host (read from memory, write to
//! memory, activate processor, scanf return) and three travel towards it
//! (printf, scanf, read return). Before anything else the host must send
//! the [`SYNC_BYTE`] `0x55` so the hardware can
//! lock to the baud rate; bytes before it are ignored.

use hermes_noc::RouterAddr;

use crate::error::SystemError;
use crate::net::NetPort;
use crate::node::{NodeId, NodeTable};
use crate::serial::{DeviceFrame, FrameBuffer, HostCommand, SerialLink, SYNC_BYTE};
use crate::service::Service;

/// The serial IP: the bridge between the RS-232 link and the NoC.
#[derive(Debug)]
pub struct SerialIp {
    addr: RouterAddr,
    table: NodeTable,
    synced: bool,
    rx: FrameBuffer,
}

impl SerialIp {
    /// A serial IP at router `addr` knowing the system's node directory.
    pub fn new(addr: RouterAddr, table: NodeTable) -> Self {
        Self {
            addr,
            table,
            synced: false,
            rx: FrameBuffer::new(),
        }
    }

    /// The router this IP is attached to.
    pub fn router(&self) -> RouterAddr {
        self.addr
    }

    /// Whether the 0x55 synchronization byte has been received.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Updates this IP's view of the system after a reconfiguration.
    pub(crate) fn reconfigure(&mut self, addr: RouterAddr, table: NodeTable) {
        self.addr = addr;
        self.table = table;
    }

    /// One clock step: disassemble NoC packets into host frames and
    /// assemble complete host commands into NoC packets.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] on an unknown host opcode, a command for
    /// a nonexistent node, or an unexpected service arriving from the
    /// network.
    pub fn step(&mut self, link: &mut SerialLink, net: &mut NetPort<'_>) -> Result<(), SystemError> {
        // NoC → host direction.
        while let Some(msg) = net.recv()? {
            let node = self.table.node_of(msg.src).ok_or_else(|| {
                SystemError::Protocol(format!("service from unknown router {}", msg.src))
            })?;
            let node = node.0;
            match msg.service {
                Service::Printf { data } => {
                    for value in data {
                        link.device_send(&DeviceFrame::Printf { node, value }.to_bytes());
                    }
                }
                Service::Scanf => {
                    link.device_send(&DeviceFrame::ScanfRequest { node }.to_bytes());
                }
                Service::ReadReturn { addr, data } => {
                    link.device_send(&DeviceFrame::ReadReturn { node, addr, data }.to_bytes());
                }
                other => {
                    return Err(SystemError::Protocol(format!(
                        "serial IP cannot handle service `{other}`"
                    )))
                }
            }
        }

        // Host → NoC direction.
        while let Some(byte) = link.device_recv() {
            if !self.synced {
                if byte == SYNC_BYTE {
                    self.synced = true;
                }
                continue;
            }
            self.rx.push(byte);
        }
        loop {
            match self.rx.parse_host_command() {
                Ok(Some(cmd)) => self.execute(cmd, net)?,
                Ok(None) => break,
                Err(e) => return Err(SystemError::Protocol(e.to_string())),
            }
        }
        Ok(())
    }

    fn target(&self, node: u8) -> Result<RouterAddr, SystemError> {
        self.table.router_of(NodeId(node)).ok_or(SystemError::BadNode {
            node: NodeId(node),
            expected: "a node of this system",
        })
    }

    fn execute(&mut self, cmd: HostCommand, net: &mut NetPort<'_>) -> Result<(), SystemError> {
        match cmd {
            HostCommand::ReadMemory { node, count, addr } => {
                let dest = self.target(node)?;
                net.send(
                    dest,
                    Service::ReadFromMemory {
                        addr,
                        count: u16::from(count),
                    },
                )
            }
            HostCommand::WriteMemory { node, addr, data } => {
                let dest = self.target(node)?;
                net.send(dest, Service::WriteInMemory { addr, data })
            }
            HostCommand::Activate { node } => {
                let dest = self.target(node)?;
                net.send(dest, Service::ActivateProcessor)
            }
            HostCommand::ScanfReturn { node, value } => {
                let dest = self.target(node)?;
                net.send(dest, Service::ScanfReturn { value })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use crate::serial::SerialConfig;
    use crate::service::Message;
    use hermes_noc::{Noc, NocConfig, Packet};

    fn setup() -> (Noc, SerialIp, SerialLink) {
        let noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let table = NodeTable::new(vec![
            (RouterAddr::new(0, 0), NodeKind::Serial),
            (RouterAddr::new(0, 1), NodeKind::Processor),
            (RouterAddr::new(1, 0), NodeKind::Processor),
            (RouterAddr::new(1, 1), NodeKind::Memory),
        ]);
        let ip = SerialIp::new(RouterAddr::new(0, 0), table);
        let link = SerialLink::new(SerialConfig { cycles_per_byte: 1 });
        (noc, ip, link)
    }

    fn pump(noc: &mut Noc, ip: &mut SerialIp, link: &mut SerialLink, cycles: u64) {
        for _ in 0..cycles {
            noc.step();
            link.step(noc.cycle());
            let mut net = NetPort::new(noc, RouterAddr::new(0, 0));
            ip.step(link, &mut net).unwrap();
        }
    }

    #[test]
    fn ignores_bytes_before_sync() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[0x00, 0x01, SYNC_BYTE]);
        pump(&mut noc, &mut ip, &mut link, 10);
        assert!(ip.is_synced());
        // The garbage before the sync byte must not have become a command.
        assert!(ip.rx.is_empty());
    }

    #[test]
    fn read_command_becomes_read_packet() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[SYNC_BYTE]);
        link.host_send(&HostCommand::ReadMemory { node: 1, count: 1, addr: 0x20 }.to_bytes());
        pump(&mut noc, &mut ip, &mut link, 200);
        // The packet must have been delivered at P1's router (0,1).
        let (src, packet) = noc.try_recv(RouterAddr::new(0, 1)).expect("delivered");
        assert_eq!(src, RouterAddr::new(0, 0));
        let msg = Message::from_packet(&packet, 8).unwrap();
        assert_eq!(msg.service, Service::ReadFromMemory { addr: 0x20, count: 1 });
    }

    #[test]
    fn printf_packet_becomes_host_frame() {
        let (mut noc, mut ip, mut link) = setup();
        // P2 (router (1,0)) prints 0xCAFE.
        let msg = Message::new(
            RouterAddr::new(1, 0),
            Service::Printf { data: vec![0xCAFE] },
        );
        noc.send(RouterAddr::new(1, 0), msg.to_packet(RouterAddr::new(0, 0), 8))
            .unwrap();
        pump(&mut noc, &mut ip, &mut link, 200);
        let mut buf = FrameBuffer::new();
        let mut host_bytes = Vec::new();
        while let Some(b) = link.host_recv() {
            host_bytes.push(b);
            buf.push(b);
        }
        assert_eq!(
            buf.parse_device_frame().unwrap(),
            Some(DeviceFrame::Printf { node: 2, value: 0xCAFE })
        );
    }

    #[test]
    fn command_for_unknown_node_errors() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[SYNC_BYTE]);
        link.host_send(&HostCommand::Activate { node: 9 }.to_bytes());
        let mut failed = false;
        for _ in 0..20 {
            noc.step();
            link.step(noc.cycle());
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 0));
            if ip.step(&mut link, &mut net).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "activating node 9 should fail");
    }

    #[test]
    fn unexpected_service_errors() {
        let (mut noc, mut ip, mut link) = setup();
        let msg = Message::new(RouterAddr::new(1, 1), Service::ActivateProcessor);
        noc.send(RouterAddr::new(1, 1), msg.to_packet(RouterAddr::new(0, 0), 8))
            .unwrap();
        let mut failed = false;
        for _ in 0..500 {
            noc.step();
            link.step(noc.cycle());
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 0));
            if ip.step(&mut link, &mut net).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn garbage_packet_is_a_protocol_error() {
        let (mut noc, mut ip, mut link) = setup();
        noc.send(
            RouterAddr::new(1, 1),
            Packet::new(RouterAddr::new(0, 0), vec![0xFF, 0xFF]),
        )
        .unwrap();
        let mut failed = false;
        for _ in 0..500 {
            noc.step();
            link.step(noc.cycle());
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 0));
            if ip.step(&mut link, &mut net).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }
}

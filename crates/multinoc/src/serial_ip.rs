//! The Serial IP core (§2.2 of the paper).
//!
//! "The basic function of the Serial IP is to assemble and disassemble
//! packets. When information comes from the host computer, the Serial IP
//! creates a valid NoC packet. When a packet is received from the NoC it
//! must be disassembled, and sent serially to the host computer."
//!
//! Four commands arrive from the host (read from memory, write to
//! memory, activate processor, scanf return) and three travel towards it
//! (printf, scanf, read return). Before anything else the host must send
//! the [`SYNC_BYTE`] `0x55` so the hardware can
//! lock to the baud rate; bytes before it are ignored.

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::directory::ServiceDirectory;
use crate::error::SystemError;
use crate::net::NetPort;
use crate::node::{NodeId, NodeTable};
use crate::reliable::{PendingRequest, ReliableSender, RetryCounters};
use crate::serial::{DeviceFrame, FrameBuffer, HostCommand, SerialLink, SYNC_BYTE};
use crate::service::Service;

/// The serial IP: the bridge between the RS-232 link and the NoC.
#[derive(Debug)]
pub struct SerialIp {
    addr: RouterAddr,
    table: NodeTable,
    /// Which replica currently serves each logical node; host commands
    /// addressed to a failed-over memory are transparently redirected.
    directory: ServiceDirectory,
    synced: bool,
    rx: FrameBuffer,
    /// Retransmitting sender for host writes and activations.
    reliable: ReliableSender,
    /// Host-commanded reads in flight; the `ReadReturn` echoing the
    /// sequence number is the implicit ack.
    pending_reads: Vec<PendingRequest>,
    /// Scanf requests forwarded to the host and not yet answered:
    /// `(node, requesting router, request seq)`.
    scanf_pending: Vec<(u8, RouterAddr, u16)>,
    /// Last answered scanf per requesting router: `(router, seq, value)`.
    /// A retransmitted `Scanf` with a cached seq is answered from here —
    /// the reply was lost, not the request — without asking the host
    /// twice.
    scanf_answered: Vec<(RouterAddr, u16, u16)>,
}

impl SerialIp {
    /// A serial IP at router `addr` knowing the system's node directory.
    pub fn new(addr: RouterAddr, table: NodeTable) -> Self {
        Self {
            addr,
            table,
            directory: ServiceDirectory::new(),
            synced: false,
            rx: FrameBuffer::new(),
            reliable: ReliableSender::new(NodeId(0)),
            pending_reads: Vec::new(),
            scanf_pending: Vec::new(),
            scanf_answered: Vec::new(),
        }
    }

    /// The router this IP is attached to.
    pub fn router(&self) -> RouterAddr {
        self.addr
    }

    /// Whether the 0x55 synchronization byte has been received.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Updates this IP's view of the system after a reconfiguration.
    pub(crate) fn reconfigure(&mut self, addr: RouterAddr, table: NodeTable) {
        self.addr = addr;
        self.table = table;
    }

    /// Updates this IP's view of which replica serves each logical node.
    pub(crate) fn set_directory(&mut self, directory: ServiceDirectory) {
        self.directory = directory;
    }

    /// Retargets in-flight reliable traffic from a dead router to the
    /// replica that took over its service.
    pub(crate) fn redirect(&mut self, old: RouterAddr, new: RouterAddr, now: u64) {
        self.reliable.redirect_dest(old, new, now);
        for req in &mut self.pending_reads {
            req.redirect(old, new, now);
        }
    }

    /// Whether this IP has no reliable traffic in flight or queued.
    pub fn net_quiet(&self) -> bool {
        self.reliable.is_idle() && self.pending_reads.is_empty()
    }

    /// Work done by this IP's reliability layer.
    pub fn retry_counters(&self) -> RetryCounters {
        self.reliable.counters()
    }

    /// The earliest future cycle this IP's reliability timers fire, or
    /// `None` when nothing is in flight. Scanfs pending at the host have
    /// no deadline — only host bytes can answer them, and those wake the
    /// system through the serial link. Drives the system's idle
    /// fast-forward.
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        let mut deadline = self.reliable.next_deadline();
        for req in &self.pending_reads {
            let d = self.reliable.request_deadline(req);
            deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        }
        deadline
    }

    /// One clock step: disassemble NoC packets into host frames and
    /// assemble complete host commands into NoC packets.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] on an unknown host opcode, a command for
    /// a nonexistent node, or an unexpected service arriving from the
    /// network; [`SystemError::DeliveryFailed`] when a host command
    /// exhausts its retransmission budget.
    pub fn step(
        &mut self,
        now: u64,
        link: &mut SerialLink,
        net: &mut NetPort<'_>,
    ) -> Result<(), SystemError> {
        // NoC → host direction.
        while let Some(msg) = net.recv()? {
            let node = self.table.node_of(msg.src).ok_or_else(|| {
                SystemError::Protocol(format!("service from unknown router {}", msg.src))
            })?;
            let node = node.0;
            match msg.service {
                Service::Printf { data } => {
                    for value in data {
                        link.device_send(&DeviceFrame::Printf { node, value }.to_bytes());
                    }
                }
                Service::Scanf => self.handle_scanf(node, msg.src, msg.seq, net, link)?,
                Service::ReadReturn { addr, data } => {
                    self.pending_reads
                        .retain(|req| !req.matches(msg.src, msg.seq));
                    link.device_send(&DeviceFrame::ReadReturn { node, addr, data }.to_bytes());
                }
                Service::Ack => {
                    self.reliable.on_ack(net, msg.src, msg.seq, now)?;
                }
                // A failover invalidation broadcast: the serial IP holds
                // no parked read values (ReadReturns stream straight to
                // the host), so there is nothing to discard.
                Service::ReplicaInvalidate { .. } => {}
                other => {
                    return Err(SystemError::Protocol(format!(
                        "serial IP cannot handle service `{other}`"
                    )))
                }
            }
        }

        // Host → NoC direction.
        while let Some(byte) = link.device_recv() {
            if !self.synced {
                if byte == SYNC_BYTE {
                    self.synced = true;
                }
                continue;
            }
            self.rx.push(byte);
        }
        loop {
            match self.rx.parse_host_command() {
                Ok(Some(cmd)) => self.execute(cmd, net, now)?,
                Ok(None) => break,
                Err(e) => return Err(SystemError::Protocol(e.to_string())),
            }
        }

        // Reliability timers.
        self.reliable.poll(net, now)?;
        for req in &mut self.pending_reads {
            self.reliable.poll_request(net, req, now)?;
        }
        Ok(())
    }

    /// A `Scanf` request from a processor. Fresh requests go to the host;
    /// a retransmission of an already-answered request is served from the
    /// cache (its `ScanfReturn` was lost, the user must not be asked
    /// twice); a retransmission of a still-unanswered request is dropped
    /// (the host already has it).
    fn handle_scanf(
        &mut self,
        node: u8,
        src: RouterAddr,
        seq: u16,
        net: &mut NetPort<'_>,
        link: &mut SerialLink,
    ) -> Result<(), SystemError> {
        if seq != 0 {
            if let Some(&(_, _, value)) = self
                .scanf_answered
                .iter()
                .find(|&&(r, s, _)| r == src && s == seq)
            {
                return net.send_seq(src, Service::ScanfReturn { value }, seq);
            }
            if self
                .scanf_pending
                .iter()
                .any(|&(_, r, s)| r == src && s == seq)
            {
                return Ok(());
            }
        }
        self.scanf_pending.push((node, src, seq));
        link.device_send(&DeviceFrame::ScanfRequest { node }.to_bytes());
        Ok(())
    }

    fn target(&self, node: u8) -> Result<RouterAddr, SystemError> {
        self.table
            .router_of(self.directory.serving(NodeId(node)))
            .ok_or(SystemError::BadNode {
                node: NodeId(node),
                expected: "a node of this system",
            })
    }

    fn execute(
        &mut self,
        cmd: HostCommand,
        net: &mut NetPort<'_>,
        now: u64,
    ) -> Result<(), SystemError> {
        match cmd {
            HostCommand::ReadMemory { node, count, addr } => {
                let dest = self.target(node)?;
                let request = Service::ReadFromMemory {
                    addr,
                    count: u16::from(count),
                };
                let seq = self.reliable.alloc_seq(dest);
                net.send_seq(dest, request.clone(), seq)?;
                self.pending_reads
                    .push(PendingRequest::new(dest, seq, request, now));
                Ok(())
            }
            HostCommand::WriteMemory { node, addr, data } => {
                let dest = self.target(node)?;
                self.reliable
                    .send(net, dest, Service::WriteInMemory { addr, data }, now)
                    .map(|_| ())
            }
            HostCommand::Activate { node } => {
                let dest = self.target(node)?;
                self.reliable
                    .send(net, dest, Service::ActivateProcessor, now)
                    .map(|_| ())
            }
            HostCommand::ScanfReturn { node, value } => {
                let dest = self.target(node)?;
                // Answer the oldest pending scanf of this node, echoing
                // its sequence number, and remember the answer so a
                // retransmitted request can be served from the cache.
                let pos = self.scanf_pending.iter().position(|&(n, _, _)| n == node);
                let (src, seq) = match pos {
                    Some(i) => {
                        let (_, src, seq) = self.scanf_pending.remove(i);
                        (src, seq)
                    }
                    // No pending request (unsequenced legacy flow): send
                    // straight to the node's router.
                    None => (dest, 0),
                };
                if seq != 0 {
                    self.scanf_answered.retain(|&(r, _, _)| r != src);
                    self.scanf_answered.push((src, seq, value));
                }
                net.send_seq(src, Service::ScanfReturn { value }, seq)
            }
        }
    }

    /// Snapshot codec: sync state, receive buffer, reliability layer
    /// and the scanf bookkeeping. The router, node table and directory
    /// are restored by the enclosing system snapshot and passed to
    /// [`snapshot_read`](Self::snapshot_read).
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.synced);
        self.rx.snapshot_write(w);
        self.reliable.snapshot_write(w);
        w.put_usize(self.pending_reads.len());
        for req in &self.pending_reads {
            req.snapshot_write(w);
        }
        w.put_usize(self.scanf_pending.len());
        for &(node, src, seq) in &self.scanf_pending {
            w.put_u8(node);
            w.put_addr(src);
            w.put_u16(seq);
        }
        w.put_usize(self.scanf_answered.len());
        for &(src, seq, value) in &self.scanf_answered {
            w.put_addr(src);
            w.put_u16(seq);
            w.put_u16(value);
        }
    }

    /// Decodes a serial IP written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        addr: RouterAddr,
        table: NodeTable,
        directory: ServiceDirectory,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let synced = r.take_bool()?;
        let rx = FrameBuffer::snapshot_read(r)?;
        let reliable = ReliableSender::snapshot_read(r, NodeId(0), width, height)?;
        let count = r.take_len(8)?;
        let mut pending_reads = Vec::with_capacity(count);
        for _ in 0..count {
            pending_reads.push(PendingRequest::snapshot_read(r, width, height)?);
        }
        let count = r.take_len(5)?;
        let mut scanf_pending = Vec::with_capacity(count);
        for _ in 0..count {
            let node = r.take_u8()?;
            let src = r.take_addr_in(width, height)?;
            let seq = r.take_u16()?;
            scanf_pending.push((node, src, seq));
        }
        let count = r.take_len(6)?;
        let mut scanf_answered = Vec::with_capacity(count);
        for _ in 0..count {
            let src = r.take_addr_in(width, height)?;
            let seq = r.take_u16()?;
            let value = r.take_u16()?;
            scanf_answered.push((src, seq, value));
        }
        Ok(Self {
            addr,
            table,
            directory,
            synced,
            rx,
            reliable,
            pending_reads,
            scanf_pending,
            scanf_answered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use crate::serial::SerialConfig;
    use crate::service::Message;
    use hermes_noc::{Noc, NocConfig, Packet};

    fn setup() -> (Noc, SerialIp, SerialLink) {
        let noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let table = NodeTable::new(vec![
            (RouterAddr::new(0, 0), NodeKind::Serial),
            (RouterAddr::new(0, 1), NodeKind::Processor),
            (RouterAddr::new(1, 0), NodeKind::Processor),
            (RouterAddr::new(1, 1), NodeKind::Memory),
        ]);
        let ip = SerialIp::new(RouterAddr::new(0, 0), table);
        let link = SerialLink::new(SerialConfig { cycles_per_byte: 1 });
        (noc, ip, link)
    }

    fn pump(noc: &mut Noc, ip: &mut SerialIp, link: &mut SerialLink, cycles: u64) {
        for _ in 0..cycles {
            noc.step();
            let now = noc.cycle();
            link.step(now);
            let mut net = NetPort::new(noc, RouterAddr::new(0, 0));
            ip.step(now, link, &mut net).unwrap();
        }
    }

    #[test]
    fn ignores_bytes_before_sync() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[0x00, 0x01, SYNC_BYTE]);
        pump(&mut noc, &mut ip, &mut link, 10);
        assert!(ip.is_synced());
        // The garbage before the sync byte must not have become a command.
        assert!(ip.rx.is_empty());
    }

    #[test]
    fn read_command_becomes_read_packet() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[SYNC_BYTE]);
        link.host_send(
            &HostCommand::ReadMemory {
                node: 1,
                count: 1,
                addr: 0x20,
            }
            .to_bytes(),
        );
        pump(&mut noc, &mut ip, &mut link, 200);
        // The packet must have been delivered at P1's router (0,1).
        let (src, packet) = noc.try_recv(RouterAddr::new(0, 1)).expect("delivered");
        assert_eq!(src, RouterAddr::new(0, 0));
        let msg = Message::from_packet(&packet, 8).unwrap();
        assert_eq!(
            msg.service,
            Service::ReadFromMemory {
                addr: 0x20,
                count: 1
            }
        );
    }

    #[test]
    fn printf_packet_becomes_host_frame() {
        let (mut noc, mut ip, mut link) = setup();
        // P2 (router (1,0)) prints 0xCAFE.
        let msg = Message::new(
            RouterAddr::new(1, 0),
            Service::Printf { data: vec![0xCAFE] },
        );
        noc.send(
            RouterAddr::new(1, 0),
            msg.to_packet(RouterAddr::new(0, 0), 8),
        )
        .unwrap();
        pump(&mut noc, &mut ip, &mut link, 200);
        let mut buf = FrameBuffer::new();
        let mut host_bytes = Vec::new();
        while let Some(b) = link.host_recv() {
            host_bytes.push(b);
            buf.push(b);
        }
        assert_eq!(
            buf.parse_device_frame().unwrap(),
            Some(DeviceFrame::Printf {
                node: 2,
                value: 0xCAFE
            })
        );
    }

    #[test]
    fn command_for_unknown_node_errors() {
        let (mut noc, mut ip, mut link) = setup();
        link.host_send(&[SYNC_BYTE]);
        link.host_send(&HostCommand::Activate { node: 9 }.to_bytes());
        let mut failed = false;
        for _ in 0..20 {
            noc.step();
            let now = noc.cycle();
            link.step(now);
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 0));
            if ip.step(now, &mut link, &mut net).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "activating node 9 should fail");
    }

    #[test]
    fn unexpected_service_errors() {
        let (mut noc, mut ip, mut link) = setup();
        let msg = Message::new(RouterAddr::new(1, 1), Service::ActivateProcessor);
        noc.send(
            RouterAddr::new(1, 1),
            msg.to_packet(RouterAddr::new(0, 0), 8),
        )
        .unwrap();
        let mut failed = false;
        for _ in 0..500 {
            noc.step();
            let now = noc.cycle();
            link.step(now);
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 0));
            if ip.step(now, &mut link, &mut net).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn garbage_packet_is_dropped_not_fatal() {
        // Under fault injection an undecodable packet is an expected
        // event: it must be counted and discarded, never kill the IP.
        let (mut noc, mut ip, mut link) = setup();
        noc.send(
            RouterAddr::new(1, 1),
            Packet::new(RouterAddr::new(0, 0), vec![0xFF, 0xFF]),
        )
        .unwrap();
        pump(&mut noc, &mut ip, &mut link, 200);
        // The IP survived and still serves valid traffic afterwards.
        let msg = Message::new(RouterAddr::new(1, 0), Service::Printf { data: vec![7] });
        noc.send(
            RouterAddr::new(1, 0),
            msg.to_packet(RouterAddr::new(0, 0), 8),
        )
        .unwrap();
        pump(&mut noc, &mut ip, &mut link, 200);
        assert!(
            link.host_recv().is_some(),
            "printf still flows after garbage"
        );
    }
}

//! End-to-end reliable delivery over an unreliable NoC.
//!
//! The Hermes network may corrupt flits, drop packets or lose whole
//! links (see `hermes_noc::fault`). The service layer recovers with a
//! classic end-to-end protocol:
//!
//! - every message carries a checksum flit, so corruption is *detected*
//!   at the receiver and the packet discarded (handled transparently in
//!   [`Message`](crate::service::Message) and
//!   [`NetPort::recv`](crate::net::NetPort::recv));
//! - fire-and-forget services that must not be lost (`WriteInMemory`,
//!   `Notify`, `ActivateProcessor`) are *sequenced* and retransmitted by
//!   a [`ReliableSender`] until the receiver's
//!   [`Ack`](crate::service::Service::Ack) arrives, with bounded
//!   exponential backoff; the receiver suppresses duplicates with a
//!   [`DedupReceiver`] (stop-and-wait per destination, so duplicates can
//!   only ever repeat the most recent sequence number);
//! - request/response services (`ReadFromMemory`, `Scanf`) treat the
//!   response as an implicit acknowledgement: the requester keeps a
//!   [`PendingRequest`] and retransmits the request itself on timeout.
//!
//! When the retry budget is exhausted the failure surfaces as the typed
//! [`SystemError::DeliveryFailed`] — never a hang, never a panic.
//!
//! The sender is *reconfiguration-aware*: when the network's online
//! fault diagnosis declares a link dead it bumps a reconfiguration
//! epoch (visible through [`NetPort::epoch`]). Messages that were
//! already on the wire may have been flushed with the wedged wormhole
//! or delayed by the reroute, so their accumulated backoff says nothing
//! about the *new* topology. On an epoch change the sender resets the
//! retry clock of everything in flight instead of burning retries —
//! a message only fails after exhausting its full budget against the
//! reconfigured network. If the diagnosis has cut the destination off
//! entirely, sends surface the definitive [`SystemError::Unreachable`]
//! instead of timing out pointlessly.

use std::collections::VecDeque;
use std::fmt;

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::error::SystemError;
use crate::net::NetPort;
use crate::node::NodeId;
use crate::service::Service;

/// Timeout and retry budget for reliable sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Cycles to wait for an acknowledgement before the first
    /// retransmission; later attempts back off exponentially.
    pub base_timeout: u64,
    /// Retransmissions allowed before the delivery is declared failed.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// The timeout after `attempt` transmissions (bounded exponential
    /// backoff: doubles per attempt, capped at 64× the base).
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        self.base_timeout.saturating_mul(1 << attempt.min(6))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // A 2×2-mesh round trip is a few hundred cycles with the paper's
        // parameters; 512 leaves headroom without dragging out recovery.
        Self {
            base_timeout: 512,
            max_retries: 6,
        }
    }
}

/// Counters describing the work the reliability layer has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Sequenced messages handed to the sender.
    pub sent: u64,
    /// Timed-out (re)transmissions, explicit-ack and implicit-ack alike.
    pub retransmissions: u64,
    /// Deliveries confirmed by an acknowledgement.
    pub acked: u64,
    /// Retry clocks reset because a network reconfiguration epoch
    /// invalidated the backoff accumulated against the old topology.
    pub reroute_resets: u64,
}

/// Maps the transport's typed partition error onto the system-level
/// [`SystemError::Unreachable`], attributing it to the sending IP. Any
/// other transport error passes through unchanged.
fn promote_unreachable(node: NodeId, dest: RouterAddr, err: SystemError) -> SystemError {
    match err {
        SystemError::Noc(hermes_noc::NocError::Route(hermes_noc::RouteError::Unreachable {
            ..
        })) => SystemError::Unreachable { node, dest },
        other => other,
    }
}

/// One unacknowledged message on the wire.
#[derive(Debug, Clone)]
struct Inflight {
    seq: u16,
    service: Service,
    sent_at: u64,
    /// Transmissions so far (1 after the initial send).
    attempt: u32,
}

/// Stop-and-wait state towards one destination: at most one sequenced
/// message in flight; later sends queue behind it so retransmissions can
/// never reorder writes.
#[derive(Debug)]
struct DestQueue {
    dest: RouterAddr,
    /// Next sequence number for this destination (never 0).
    next_seq: u16,
    inflight: Option<Inflight>,
    backlog: VecDeque<(u16, Service)>,
}

/// Retransmitting sender for sequenced (explicit-ack) services.
#[derive(Debug)]
pub struct ReliableSender {
    node: NodeId,
    policy: RetryPolicy,
    /// `Vec`, not a map: iteration order must be deterministic.
    queues: Vec<DestQueue>,
    counters: RetryCounters,
    /// Last reconfiguration epoch observed on the network.
    last_epoch: u64,
    /// Cycle of the most recent epoch change; transmissions older than
    /// this get their retry clock reset instead of burning retries.
    epoch_reset_at: Option<u64>,
}

impl ReliableSender {
    /// A sender for the IP at `node` with the default [`RetryPolicy`].
    pub fn new(node: NodeId) -> Self {
        Self {
            node,
            policy: RetryPolicy::default(),
            queues: Vec::new(),
            counters: RetryCounters::default(),
            last_epoch: 0,
            epoch_reset_at: None,
        }
    }

    /// Overrides the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Work counters.
    pub fn counters(&self) -> RetryCounters {
        self.counters
    }

    /// Allocates the next non-zero sequence number for messages to
    /// `dest`.
    ///
    /// Sequence numbers count *per destination*, not globally. The
    /// receiving [`DedupReceiver`] remembers only the latest number per
    /// peer, and a per-destination counter steps by exactly one between
    /// a peer's consecutive messages, so a fresh message can never
    /// collide with the remembered one — not even after the counter
    /// wraps. (A single shared counter had exactly that bug: traffic to
    /// other destinations could wrap it back onto a peer's remembered
    /// number, and the next fresh message to that peer was then refused
    /// as a duplicate forever while still being acknowledged — silent
    /// message loss.)
    pub fn alloc_seq(&mut self, dest: RouterAddr) -> u16 {
        let i = self.queue_idx(dest);
        let q = &mut self.queues[i];
        let seq = q.next_seq;
        q.next_seq = q.next_seq.checked_add(1).unwrap_or(1);
        seq
    }

    /// No sequenced message is in flight or queued.
    pub fn is_idle(&self) -> bool {
        self.queues
            .iter()
            .all(|q| q.inflight.is_none() && q.backlog.is_empty())
    }

    fn queue_idx(&mut self, dest: RouterAddr) -> usize {
        if let Some(i) = self.queues.iter().position(|q| q.dest == dest) {
            return i;
        }
        self.queues.push(DestQueue {
            dest,
            next_seq: 1,
            inflight: None,
            backlog: VecDeque::new(),
        });
        self.queues.len() - 1
    }

    /// Queues `service` for reliable delivery to `dest`, transmitting
    /// immediately if the destination has nothing in flight. Returns the
    /// assigned sequence number.
    ///
    /// # Errors
    ///
    /// Transport errors from [`NetPort::send_seq`].
    pub fn send(
        &mut self,
        net: &mut NetPort<'_>,
        dest: RouterAddr,
        service: Service,
        now: u64,
    ) -> Result<u16, SystemError> {
        self.note_epoch(net, now);
        let node = self.node;
        let seq = self.alloc_seq(dest);
        self.counters.sent += 1;
        let i = self.queue_idx(dest);
        if self.queues[i].inflight.is_none() {
            net.send_seq(dest, service.clone(), seq)
                .map_err(|e| promote_unreachable(node, dest, e))?;
            self.queues[i].inflight = Some(Inflight {
                seq,
                service,
                sent_at: now,
                attempt: 1,
            });
        } else {
            self.queues[i].backlog.push_back((seq, service));
        }
        Ok(seq)
    }

    /// Processes an [`Ack`](Service::Ack) received from `from` for `seq`:
    /// completes the matching in-flight message and launches the next one
    /// queued for that destination, if any.
    ///
    /// # Errors
    ///
    /// Transport errors from transmitting the next queued message.
    pub fn on_ack(
        &mut self,
        net: &mut NetPort<'_>,
        from: RouterAddr,
        seq: u16,
        now: u64,
    ) -> Result<(), SystemError> {
        let node = self.node;
        let Some(q) = self.queues.iter_mut().find(|q| q.dest == from) else {
            return Ok(()); // stray ack
        };
        if q.inflight.as_ref().is_none_or(|inf| inf.seq != seq) {
            return Ok(()); // duplicate or stale ack
        }
        q.inflight = None;
        self.counters.acked += 1;
        if let Some((next_seq, service)) = q.backlog.pop_front() {
            let dest = q.dest;
            net.send_seq(dest, service.clone(), next_seq)
                .map_err(|e| promote_unreachable(node, dest, e))?;
            q.inflight = Some(Inflight {
                seq: next_seq,
                service,
                sent_at: now,
                attempt: 1,
            });
        }
        Ok(())
    }

    /// Retransmits timed-out messages; call once per cycle.
    ///
    /// # Errors
    ///
    /// [`SystemError::DeliveryFailed`] once a message has exhausted its
    /// retry budget; transport errors from retransmitting.
    pub fn poll(&mut self, net: &mut NetPort<'_>, now: u64) -> Result<(), SystemError> {
        self.note_epoch(net, now);
        let node = self.node;
        for q in &mut self.queues {
            let Some(inf) = q.inflight.as_mut() else {
                continue;
            };
            if now.saturating_sub(inf.sent_at) < self.policy.timeout_for(inf.attempt - 1) {
                continue;
            }
            if inf.attempt > self.policy.max_retries {
                return Err(SystemError::DeliveryFailed {
                    node,
                    dest: q.dest,
                    seq: inf.seq,
                    attempts: inf.attempt,
                });
            }
            let dest = q.dest;
            net.send_seq(dest, inf.service.clone(), inf.seq)
                .map_err(|e| promote_unreachable(node, dest, e))?;
            inf.sent_at = now;
            inf.attempt += 1;
            self.counters.retransmissions += 1;
        }
        Ok(())
    }

    /// The earliest cycle at which [`poll`](Self::poll) has work to do —
    /// the soonest retransmission deadline among in-flight messages.
    /// `None` when nothing is in flight, so the sender can sleep until
    /// something external wakes it. Drives the system's idle
    /// fast-forward.
    pub fn next_deadline(&self) -> Option<u64> {
        self.queues
            .iter()
            .filter_map(|q| q.inflight.as_ref())
            .map(|inf| {
                inf.sent_at
                    .saturating_add(self.policy.timeout_for(inf.attempt - 1))
            })
            .min()
    }

    /// The cycle at which `pending` times out and will be retransmitted
    /// by [`poll_request`](Self::poll_request) under this sender's
    /// policy.
    pub fn request_deadline(&self, pending: &PendingRequest) -> u64 {
        pending
            .sent_at
            .saturating_add(self.policy.timeout_for(pending.attempt.saturating_sub(1)))
    }

    /// Observes the network's reconfiguration epoch. On a change, every
    /// in-flight message's retry clock restarts from `now`: the backoff
    /// it accumulated measured the dead topology, not the reconfigured
    /// one, and the message itself may have been flushed with a wedged
    /// wormhole through no fault of the destination.
    fn note_epoch(&mut self, net: &NetPort<'_>, now: u64) {
        let epoch = net.epoch();
        if epoch == self.last_epoch {
            return;
        }
        self.last_epoch = epoch;
        self.epoch_reset_at = Some(now);
        for q in &mut self.queues {
            if let Some(inf) = q.inflight.as_mut() {
                inf.sent_at = now;
                inf.attempt = 1;
                self.counters.reroute_resets += 1;
            }
        }
    }

    /// Retransmits a timed-out implicit-ack request using this sender's
    /// policy, counting the work here.
    ///
    /// # Errors
    ///
    /// As [`poll`](Self::poll).
    pub fn poll_request(
        &mut self,
        net: &mut NetPort<'_>,
        pending: &mut PendingRequest,
        now: u64,
    ) -> Result<(), SystemError> {
        self.note_epoch(net, now);
        if self.reset_for_reroute(pending, now) {
            return Ok(());
        }
        if now.saturating_sub(pending.sent_at) < self.policy.timeout_for(pending.attempt - 1) {
            return Ok(());
        }
        if pending.attempt > self.policy.max_retries {
            return Err(SystemError::DeliveryFailed {
                node: self.node,
                dest: pending.dest,
                seq: pending.seq,
                attempts: pending.attempt,
            });
        }
        net.send_seq(pending.dest, pending.request.clone(), pending.seq)
            .map_err(|e| promote_unreachable(self.node, pending.dest, e))?;
        pending.sent_at = now;
        pending.attempt += 1;
        self.counters.retransmissions += 1;
        Ok(())
    }

    /// Restarts a pending request's retry clock if it was last
    /// transmitted before the most recent reconfiguration epoch change.
    /// Self-disarming: the reset stamps `sent_at` at or past the change.
    fn reset_for_reroute(&mut self, pending: &mut PendingRequest, now: u64) -> bool {
        let Some(reset_at) = self.epoch_reset_at else {
            return false;
        };
        if pending.sent_at >= reset_at {
            return false;
        }
        pending.sent_at = now;
        pending.attempt = 1;
        self.counters.reroute_resets += 1;
        true
    }

    /// Retargets all reliability state aimed at `old` to `new`: the
    /// destination queue (in-flight message, backlog and the sequence
    /// counter keep going against the new address) has its retry clock
    /// restarted from `now`, exactly as after a reconfiguration epoch —
    /// the backoff accumulated against the dead destination says nothing
    /// about the replacement. Used when a service fails over to a
    /// replica on another node: the replica's duplicate suppression
    /// already knows this sender's sequence numbers from replication, so
    /// continuing the counter is what makes retransmitted writes
    /// recognizable as duplicates across the failover.
    pub fn redirect_dest(&mut self, old: RouterAddr, new: RouterAddr, now: u64) {
        // A pre-existing (necessarily idle) queue towards the new address
        // would shadow the retargeted one in `queue_idx`; drop it. The
        // retargeted queue's counter is the one the replica knows.
        if let Some(i) = self
            .queues
            .iter()
            .position(|q| q.dest == new && q.inflight.is_none() && q.backlog.is_empty())
        {
            self.queues.remove(i);
        }
        for q in &mut self.queues {
            if q.dest != old {
                continue;
            }
            q.dest = new;
            if let Some(inf) = q.inflight.as_mut() {
                inf.sent_at = now;
                inf.attempt = 1;
                self.counters.reroute_resets += 1;
            }
        }
    }

    /// Drops all reliability state towards `dest`, abandoning anything
    /// in flight or queued. Used when the destination is declared dead
    /// with no replacement (e.g. a replica backup dies while the primary
    /// is healthy): retrying against it forever would end in a spurious
    /// [`SystemError::DeliveryFailed`].
    pub fn forget_dest(&mut self, dest: RouterAddr) {
        self.queues.retain(|q| q.dest != dest);
    }

    /// Snapshot codec: policy, per-destination queues (with their
    /// in-flight message and backlog), counters and the epoch-reset
    /// bookkeeping. The owning node id is implied by the IP slot and not
    /// written.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.policy.base_timeout);
        w.put_u32(self.policy.max_retries);
        w.put_usize(self.queues.len());
        for q in &self.queues {
            w.put_addr(q.dest);
            w.put_u16(q.next_seq);
            match &q.inflight {
                None => w.put_u8(0),
                Some(inf) => {
                    w.put_u8(1);
                    w.put_u16(inf.seq);
                    inf.service.snapshot_write(w);
                    w.put_u64(inf.sent_at);
                    w.put_u32(inf.attempt);
                }
            }
            w.put_usize(q.backlog.len());
            for (seq, service) in &q.backlog {
                w.put_u16(*seq);
                service.snapshot_write(w);
            }
        }
        w.put_u64(self.counters.sent);
        w.put_u64(self.counters.retransmissions);
        w.put_u64(self.counters.acked);
        w.put_u64(self.counters.reroute_resets);
        w.put_u64(self.last_epoch);
        w.put_opt_u64(self.epoch_reset_at);
    }

    /// Decodes a sender written by
    /// [`snapshot_write`](Self::snapshot_write) for the IP at `node`.
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        node: NodeId,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let policy = RetryPolicy {
            base_timeout: r.take_u64()?,
            max_retries: r.take_u32()?,
        };
        let queue_count = r.take_len(4)?;
        let mut queues = Vec::with_capacity(queue_count);
        for _ in 0..queue_count {
            let dest = r.take_addr_in(width, height)?;
            let next_seq = r.take_u16()?;
            if next_seq == 0 {
                return Err(SnapshotError::Malformed("sequence counter is 0"));
            }
            let inflight = match r.take_u8()? {
                0 => None,
                1 => {
                    let seq = r.take_u16()?;
                    let service = Service::snapshot_read(r, width, height)?;
                    let sent_at = r.take_u64()?;
                    let attempt = r.take_u32()?;
                    if seq == 0 || attempt == 0 {
                        return Err(SnapshotError::Malformed("in-flight message state"));
                    }
                    Some(Inflight {
                        seq,
                        service,
                        sent_at,
                        attempt,
                    })
                }
                _ => return Err(SnapshotError::Malformed("in-flight tag")),
            };
            let backlog_len = r.take_len(3)?;
            let mut backlog = VecDeque::with_capacity(backlog_len);
            for _ in 0..backlog_len {
                let seq = r.take_u16()?;
                if seq == 0 {
                    return Err(SnapshotError::Malformed("backlog sequence is 0"));
                }
                backlog.push_back((seq, Service::snapshot_read(r, width, height)?));
            }
            queues.push(DestQueue {
                dest,
                next_seq,
                inflight,
                backlog,
            });
        }
        let counters = RetryCounters {
            sent: r.take_u64()?,
            retransmissions: r.take_u64()?,
            acked: r.take_u64()?,
            reroute_resets: r.take_u64()?,
        };
        let last_epoch = r.take_u64()?;
        let epoch_reset_at = r.take_opt_u64()?;
        Ok(Self {
            node,
            policy,
            queues,
            counters,
            last_epoch,
            epoch_reset_at,
        })
    }

    /// Like [`poll_request`](Self::poll_request), but without a retry
    /// budget: the request keeps retransmitting at the widest backoff
    /// forever. For requests answered by the *host* (`Scanf`), where a
    /// long silence means a slow human, not a lost packet.
    ///
    /// # Errors
    ///
    /// Transport errors from retransmitting.
    pub fn poll_request_patient(
        &mut self,
        net: &mut NetPort<'_>,
        pending: &mut PendingRequest,
        now: u64,
    ) -> Result<(), SystemError> {
        self.note_epoch(net, now);
        if self.reset_for_reroute(pending, now) {
            return Ok(());
        }
        if now.saturating_sub(pending.sent_at) < self.policy.timeout_for(pending.attempt - 1) {
            return Ok(());
        }
        net.send_seq(pending.dest, pending.request.clone(), pending.seq)
            .map_err(|e| promote_unreachable(self.node, pending.dest, e))?;
        pending.sent_at = now;
        pending.attempt = pending.attempt.saturating_add(1);
        self.counters.retransmissions += 1;
        Ok(())
    }
}

/// A request whose response acts as its acknowledgement
/// (`ReadFromMemory` → `ReadReturn`, `Scanf` → `ScanfReturn`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// Where the request went.
    pub dest: RouterAddr,
    /// Its sequence number; the response must echo it.
    pub seq: u16,
    /// The request itself, kept for retransmission.
    pub request: Service,
    /// Cycle of the most recent transmission.
    pub sent_at: u64,
    /// Transmissions so far.
    pub attempt: u32,
}

impl PendingRequest {
    /// Records a request just transmitted at `now`.
    pub fn new(dest: RouterAddr, seq: u16, request: Service, now: u64) -> Self {
        Self {
            dest,
            seq,
            request,
            sent_at: now,
            attempt: 1,
        }
    }

    /// Whether a response carrying `seq` from `src` answers this request.
    pub fn matches(&self, src: RouterAddr, seq: u16) -> bool {
        self.dest == src && self.seq == seq
    }

    /// Retargets the request to `new` if it was aimed at `old`,
    /// restarting its retry clock; the next poll retransmits it to the
    /// replacement and only its response is accepted from then on.
    pub fn redirect(&mut self, old: RouterAddr, new: RouterAddr, now: u64) {
        if self.dest != old {
            return;
        }
        self.dest = new;
        self.sent_at = now;
        self.attempt = 1;
    }

    /// Snapshot codec for a pending implicit-ack request.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_addr(self.dest);
        w.put_u16(self.seq);
        self.request.snapshot_write(w);
        w.put_u64(self.sent_at);
        w.put_u32(self.attempt);
    }

    /// Decodes a request written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        Ok(Self {
            dest: r.take_addr_in(width, height)?,
            seq: r.take_u16()?,
            request: Service::snapshot_read(r, width, height)?,
            sent_at: r.take_u64()?,
            attempt: r.take_u32()?,
        })
    }
}

/// Receiver-side duplicate suppression for sequenced messages.
///
/// Stop-and-wait sending means a duplicate can only repeat the *latest*
/// sequence number from a peer, so remembering one number per peer is
/// exact, not heuristic.
#[derive(Debug, Default)]
pub struct DedupReceiver {
    seen: Vec<(RouterAddr, u16)>,
    duplicates: u64,
}

impl DedupReceiver {
    /// A receiver with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the message `(src, seq)` is fresh and should be applied.
    /// Duplicates are counted and refused (the caller still acknowledges
    /// them, since the first ack evidently went missing). Unsequenced
    /// messages (`seq == 0`) are always fresh.
    pub fn accept(&mut self, src: RouterAddr, seq: u16) -> bool {
        if seq == 0 {
            return true;
        }
        match self.seen.iter_mut().find(|(peer, _)| *peer == src) {
            Some((_, last)) if *last == seq => {
                self.duplicates += 1;
                false
            }
            Some((_, last)) => {
                *last = seq;
                true
            }
            None => {
                self.seen.push((src, seq));
                true
            }
        }
    }

    /// Duplicates refused so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Snapshot codec: remembered `(peer, seq)` pairs plus the duplicate
    /// counter.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.seen.len());
        for (peer, seq) in &self.seen {
            w.put_addr(*peer);
            w.put_u16(*seq);
        }
        w.put_u64(self.duplicates);
    }

    /// Decodes a receiver written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let len = r.take_len(4)?;
        let mut seen = Vec::with_capacity(len);
        for _ in 0..len {
            let peer = r.take_addr_in(width, height)?;
            let seq = r.take_u16()?;
            seen.push((peer, seq));
        }
        let duplicates = r.take_u64()?;
        Ok(Self { seen, duplicates })
    }
}

impl fmt::Display for RetryCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sent, {} retransmitted, {} acked",
            self.sent, self.retransmissions, self.acked
        )?;
        if self.reroute_resets > 0 {
            write!(f, ", {} reroute resets", self.reroute_resets)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_noc::{Noc, NocConfig};

    fn mesh() -> Noc {
        Noc::new(NocConfig::mesh(2, 2)).expect("2x2 mesh")
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_timeout: 100,
            max_retries: 20,
        };
        assert_eq!(p.timeout_for(0), 100);
        assert_eq!(p.timeout_for(1), 200);
        assert_eq!(p.timeout_for(3), 800);
        assert_eq!(p.timeout_for(6), 6_400);
        assert_eq!(p.timeout_for(19), 6_400, "backoff is bounded");
    }

    #[test]
    fn redirect_dest_retargets_queue_and_continues_the_counter() {
        let mut noc = mesh();
        let mut s = ReliableSender::new(NodeId(1));
        let here = RouterAddr::new(0, 0);
        let old = RouterAddr::new(1, 1);
        let new = RouterAddr::new(1, 0);
        let mut net = NetPort::new(&mut noc, here);
        let seq1 = s
            .send(&mut net, old, Service::ActivateProcessor, 0)
            .unwrap();
        assert_eq!(seq1, 1);
        // An idle pre-existing queue towards the new address must not
        // shadow the retargeted one.
        s.alloc_seq(new);
        let resets_before = s.counters().reroute_resets;
        s.redirect_dest(old, new, 50);
        assert!(
            s.counters().reroute_resets > resets_before,
            "the in-flight retry clock restarted"
        );
        // The sequence counter continues against the new destination —
        // the replica knows our numbers from the replication stream.
        assert_eq!(s.alloc_seq(new), 2);
        assert!(!s.is_idle(), "the in-flight message survived the redirect");
        // Acks from the new destination complete it.
        s.on_ack(&mut net, new, seq1, 60).unwrap();
        assert!(s.is_idle());
    }

    #[test]
    fn forget_dest_abandons_in_flight_traffic() {
        let mut noc = mesh();
        let mut s = ReliableSender::new(NodeId(1));
        let here = RouterAddr::new(0, 0);
        let dead = RouterAddr::new(1, 1);
        let mut net = NetPort::new(&mut noc, here);
        s.send(&mut net, dead, Service::ActivateProcessor, 0)
            .unwrap();
        assert!(!s.is_idle());
        s.forget_dest(dead);
        assert!(s.is_idle(), "nothing left to retry against a dead node");
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn pending_request_redirect_rebinds_the_implicit_ack() {
        let req = PendingRequest::new(
            RouterAddr::new(1, 1),
            7,
            Service::ReadFromMemory { addr: 0, count: 1 },
            0,
        );
        let mut moved = req.clone();
        moved.redirect(RouterAddr::new(1, 1), RouterAddr::new(1, 0), 10);
        assert!(
            !moved.matches(RouterAddr::new(1, 1), 7),
            "a stale reply from the dead router no longer matches"
        );
        assert!(moved.matches(RouterAddr::new(1, 0), 7));
        // A request aimed elsewhere is untouched.
        let mut other = req.clone();
        other.redirect(RouterAddr::new(0, 1), RouterAddr::new(1, 0), 10);
        assert!(other.matches(RouterAddr::new(1, 1), 7));
    }

    #[test]
    fn seq_allocation_is_per_destination_and_skips_zero() {
        let mut s = ReliableSender::new(NodeId(1));
        let a = RouterAddr::new(0, 0);
        let b = RouterAddr::new(1, 1);
        assert_eq!(s.alloc_seq(a), 1);
        assert_eq!(s.alloc_seq(a), 2);
        assert_eq!(s.alloc_seq(b), 1, "destinations count independently");
        let i = s.queue_idx(a);
        s.queues[i].next_seq = u16::MAX;
        assert_eq!(s.alloc_seq(a), u16::MAX);
        assert_eq!(s.alloc_seq(a), 1, "wraps past the reserved 0");
        assert_eq!(s.alloc_seq(b), 2, "the wrap did not disturb b");
    }

    #[test]
    fn wraparound_cannot_collide_with_a_peers_remembered_seq() {
        // Regression: with one counter shared across destinations,
        // traffic to other peers could wrap it back onto the last number
        // some peer had seen; the next fresh message to that peer then
        // reused the remembered number and the receiver refused it as a
        // duplicate forever — while still acknowledging it, so the loss
        // was silent. Per-destination counters step by exactly one
        // between a peer's consecutive messages, so fresh never equals
        // remembered, all the way around the sequence space.
        let mut s = ReliableSender::new(NodeId(1));
        let mut d = DedupReceiver::new();
        let peer = RouterAddr::new(1, 1);
        let elsewhere = RouterAddr::new(0, 1);
        let mut last = s.alloc_seq(peer);
        assert!(d.accept(peer, last));
        for _ in 0..(usize::from(u16::MAX) + 10) {
            // The old counter's poison: interleaved traffic elsewhere.
            let _ = s.alloc_seq(elsewhere);
            let seq = s.alloc_seq(peer);
            assert_ne!(seq, 0, "0 stays reserved for unsequenced traffic");
            assert_ne!(seq, last, "consecutive seqs to one peer repeated");
            assert!(d.accept(peer, seq), "fresh message refused as duplicate");
            last = seq;
        }
    }

    #[test]
    fn deadlines_follow_the_backoff_schedule() {
        let mut noc = mesh();
        let here = RouterAddr::new(0, 0);
        let dest = RouterAddr::new(1, 1);
        let mut sender = ReliableSender::new(NodeId(0)).with_policy(RetryPolicy {
            base_timeout: 100,
            max_retries: 5,
        });
        assert_eq!(sender.next_deadline(), None, "idle sender never wakes");
        let mut net = NetPort::new(&mut noc, here);
        sender
            .send(&mut net, dest, Service::Notify { from: 0 }, 40)
            .expect("send");
        assert_eq!(sender.next_deadline(), Some(140));
        // After the first retransmission the backoff doubles.
        sender.poll(&mut net, 140).expect("poll");
        assert_eq!(sender.counters().retransmissions, 1);
        assert_eq!(sender.next_deadline(), Some(140 + 200));
        let req = PendingRequest::new(dest, 9, Service::Scanf, 1_000);
        assert_eq!(sender.request_deadline(&req), 1_100);
    }

    #[test]
    fn stop_and_wait_queues_behind_the_inflight_message() {
        let mut noc = mesh();
        let here = RouterAddr::new(0, 0);
        let dest = RouterAddr::new(1, 1);
        let mut sender = ReliableSender::new(NodeId(0));
        let mut net = NetPort::new(&mut noc, here);
        let s1 = sender
            .send(&mut net, dest, Service::Notify { from: 0 }, 0)
            .expect("send");
        let s2 = sender
            .send(&mut net, dest, Service::Notify { from: 0 }, 0)
            .expect("send");
        assert_ne!(s1, s2);
        assert!(!sender.is_idle());
        // Only the first is on the wire until its ack arrives.
        noc.run_until_idle(10_000).expect("delivers");
        let mut net = NetPort::new(&mut noc, dest);
        let got = net.recv().expect("recv").expect("one message");
        assert_eq!(got.seq, s1);
        assert!(net.recv().expect("recv").is_none());
        // Ack the first: the second launches.
        let mut net = NetPort::new(&mut noc, here);
        sender.on_ack(&mut net, dest, s1, 100).expect("ack");
        noc.run_until_idle(10_000).expect("delivers");
        let mut net = NetPort::new(&mut noc, dest);
        assert_eq!(net.recv().expect("recv").expect("second").seq, s2);
        sender
            .on_ack(&mut NetPort::new(&mut noc, here), dest, s2, 200)
            .expect("ack");
        assert!(sender.is_idle());
        assert_eq!(sender.counters().acked, 2);
    }

    #[test]
    fn timeouts_retransmit_then_fail_typed() {
        let mut noc = mesh();
        let here = RouterAddr::new(0, 0);
        let dest = RouterAddr::new(1, 1);
        let mut sender = ReliableSender::new(NodeId(3)).with_policy(RetryPolicy {
            base_timeout: 10,
            max_retries: 2,
        });
        let mut net = NetPort::new(&mut noc, here);
        sender
            .send(&mut net, dest, Service::ActivateProcessor, 0)
            .expect("send");
        // No ack ever arrives: two retransmissions, then a typed failure.
        let mut t = 0;
        let err = loop {
            t += 1_000;
            let mut net = NetPort::new(&mut noc, here);
            match sender.poll(&mut net, t) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(sender.counters().retransmissions, 2);
        match err {
            SystemError::DeliveryFailed {
                node,
                dest: d,
                attempts,
                ..
            } => {
                assert_eq!(node, NodeId(3));
                assert_eq!(d, dest);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected DeliveryFailed, got {other}"),
        }
    }

    #[test]
    fn dedup_refuses_repeats_but_accepts_progress() {
        let mut d = DedupReceiver::new();
        let a = RouterAddr::new(0, 0);
        let b = RouterAddr::new(1, 0);
        assert!(d.accept(a, 1));
        assert!(!d.accept(a, 1), "duplicate refused");
        assert!(d.accept(a, 2));
        assert!(d.accept(b, 1), "peers are independent");
        assert!(d.accept(a, 0), "unsequenced always fresh");
        assert!(d.accept(a, 0));
        assert_eq!(d.duplicates(), 1);
    }

    #[test]
    fn epoch_change_resets_backoff_and_delivery_survives_a_dead_link() {
        use hermes_noc::{CycleWindow, FaultPlan, Port, Routing};
        let mut config = NocConfig::mesh(2, 2);
        config.routing = Routing::FaultTolerantXy;
        let mut noc = Noc::new(config).expect("mesh");
        noc.set_fault_plan(FaultPlan::new(7).with_link_down(
            RouterAddr::new(0, 0),
            Port::East,
            CycleWindow::open_ended(0),
        ))
        .unwrap();
        let here = RouterAddr::new(0, 0);
        let dest = RouterAddr::new(1, 0);
        let mut sender = ReliableSender::new(NodeId(0)).with_policy(RetryPolicy {
            base_timeout: 64,
            max_retries: 3,
        });
        sender
            .send(
                &mut NetPort::new(&mut noc, here),
                dest,
                Service::Notify { from: 0 },
                0,
            )
            .expect("send");
        // The first copy wedges on the dying link and is flushed by the
        // diagnosis; the epoch bump resets the sender's retry clock, and
        // the retransmission detours around the dead link.
        let mut delivered = false;
        for _ in 0..40 {
            // Step a fixed slice so the retry clock advances even while
            // the (flushed) network sits idle.
            for _ in 0..200 {
                noc.step();
            }
            let now = noc.cycle();
            sender
                .poll(&mut NetPort::new(&mut noc, here), now)
                .expect("budget never exhausted");
            if NetPort::new(&mut noc, dest).recv().expect("recv").is_some() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "delivery survives the dead link");
        assert_eq!(noc.current_epoch(), 1, "the link death reconfigured");
        assert!(
            sender.counters().reroute_resets >= 1,
            "the reconfiguration reset the retry clock: {}",
            sender.counters()
        );
    }

    #[test]
    fn partition_surfaces_typed_unreachable() {
        use hermes_noc::{CycleWindow, FaultPlan, Packet, Port, Routing};
        let mut config = NocConfig::mesh(2, 2);
        config.routing = Routing::FaultTolerantXy;
        let mut noc = Noc::new(config).expect("mesh");
        let corner = RouterAddr::new(0, 0);
        noc.set_fault_plan(
            FaultPlan::new(4)
                .with_link_down(corner, Port::East, CycleWindow::open_ended(0))
                .with_link_down(corner, Port::North, CycleWindow::open_ended(0)),
        )
        .unwrap();
        // Two probes kill the corner's links; the corner is then cut off.
        noc.send(corner, Packet::new(RouterAddr::new(1, 1), vec![1]))
            .unwrap();
        noc.run_until_idle(50_000).unwrap();
        noc.send(corner, Packet::new(RouterAddr::new(1, 1), vec![2]))
            .unwrap();
        noc.run_until_idle(50_000).unwrap();
        assert_eq!(noc.current_epoch(), 2);
        let now = noc.cycle();
        let mut sender = ReliableSender::new(NodeId(2));
        let err = sender
            .send(
                &mut NetPort::new(&mut noc, RouterAddr::new(1, 1)),
                corner,
                Service::Notify { from: 2 },
                now,
            )
            .expect_err("the corner is partitioned off");
        match err {
            SystemError::Unreachable { node, dest } => {
                assert_eq!(node, NodeId(2));
                assert_eq!(dest, corner);
            }
            other => panic!("expected Unreachable, got {other}"),
        }
    }

    #[test]
    fn stray_and_stale_acks_are_ignored() {
        let mut noc = mesh();
        let here = RouterAddr::new(0, 0);
        let dest = RouterAddr::new(1, 1);
        let mut sender = ReliableSender::new(NodeId(0));
        let mut net = NetPort::new(&mut noc, here);
        let seq = sender
            .send(&mut net, dest, Service::Notify { from: 0 }, 0)
            .expect("send");
        sender
            .on_ack(&mut net, RouterAddr::new(0, 1), seq, 1)
            .expect("stray peer");
        sender
            .on_ack(&mut net, dest, seq.wrapping_add(9), 1)
            .expect("wrong seq");
        assert!(!sender.is_idle());
        sender.on_ack(&mut net, dest, seq, 1).expect("real ack");
        assert!(sender.is_idle());
        sender
            .on_ack(&mut net, dest, seq, 2)
            .expect("duplicate ack");
        assert_eq!(sender.counters().acked, 1);
    }
}

//! Ready-made MultiNoC applications.
//!
//! The paper demonstrates the platform with applications driven from the
//! host ("More complex applications have been developed. One example is
//! a parallel edge detection…", §4). This module packages those
//! workloads — R8 assembly plus the host-side driver — so examples,
//! integration tests and the benchmark harness share one implementation:
//!
//! - [`edge`] — the parallel Sobel edge detection of Fig. 10;
//! - [`vecsum`] — a small vector-sum used by the quickstart flow;
//! - [`histogram`] — a distributed histogram with token-ring
//!   aggregation, written in the compiled R8C language.

pub mod edge;
pub mod histogram;
pub mod vecsum;

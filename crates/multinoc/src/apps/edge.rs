//! Parallel Sobel edge detection — the application of Fig. 10.
//!
//! "In this application the host computer sends an image line, after
//! what each embedded processor computes one gradient (gx and gy). Next,
//! that embedded processor adds gx and gy and notifies the host, which
//! receives the processed line, and sends a new line to the MultiNoC
//! system."
//!
//! Each output line needs a 3-line window. The host deposits the window
//! in the processor's local memory, activates it, and the program
//! computes `out[x] = |gx| + |gy|` for the interior pixels, prints a
//! completion marker, and halts. Lines are distributed round-robin over
//! the available processors so one computes while the host feeds the
//! next — the pipeline the paper describes.

use crate::error::SystemError;
use crate::host::Host;
use crate::node::NodeId;
use crate::system::System;

/// Local-memory address of the upper input row.
pub const ROW0_ADDR: u16 = 0x200;
/// Local-memory address of the middle input row.
pub const ROW1_ADDR: u16 = 0x240;
/// Local-memory address of the lower input row.
pub const ROW2_ADDR: u16 = 0x280;
/// Local-memory address of the output line.
pub const OUT_ADDR: u16 = 0x2C0;
/// Maximum line width the fixed row spacing supports.
pub const MAX_WIDTH: u16 = 64;
/// The completion marker each processor prints after a line.
pub const DONE_MARKER: u16 = 0x00D0;

/// A grayscale image with 16-bit pixels (values kept small enough that
/// the Sobel sums never overflow 16 bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u16>,
}

impl Image {
    /// An image from row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a pixel exceeds 255
    /// (8-bit grayscale, as a camera would supply).
    pub fn new(width: usize, height: usize, pixels: Vec<u16>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        assert!(
            pixels.iter().all(|&p| p <= 255),
            "pixels must be 8-bit grayscale"
        );
        Self {
            width,
            height,
            pixels,
        }
    }

    /// A deterministic synthetic test card: a bright diagonal bar and a
    /// rectangle on a dark gradient background.
    pub fn synthetic(width: usize, height: usize) -> Self {
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let background = ((x + 2 * y) % 32) as u16;
                let bar = if x.abs_diff(y) < 2 { 200 } else { 0 };
                let rect = if (width / 4..width / 2).contains(&x)
                    && (height / 4..height / 2).contains(&y)
                {
                    120
                } else {
                    0
                };
                pixels.push((background + bar + rect).min(255));
            }
        }
        Self::new(width, height, pixels)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row `y` as a slice.
    pub fn row(&self, y: usize) -> &[u16] {
        &self.pixels[y * self.width..(y + 1) * self.width]
    }
}

/// The R8 program computing one Sobel output line from the three input
/// rows, for lines of `width` pixels.
///
/// # Panics
///
/// Panics if `width < 3` or `width > MAX_WIDTH`.
pub fn program(width: u16) -> String {
    assert!(
        (3..=MAX_WIDTH).contains(&width),
        "width {width} unsupported"
    );
    let limit = width - 1;
    format!(
        "
        .equ IO,   0xFFFF
        .equ ROW0, {ROW0_ADDR}
        .equ ROW1, {ROW1_ADDR}
        .equ ROW2, {ROW2_ADDR}
        .equ OUT,  {OUT_ADDR}
        XOR  R0, R0, R0
        XOR  R10, R10, R10
        LIW  R3, OUT
        ST   R10, R3, R0        ; out[0] = 0
        LIW  R1, 1              ; x = 1
        LIW  R2, {limit}        ; W - 1
loop:
        ; gx: left column sum -> R4
        LIW  R3, ROW0
        ADD  R5, R3, R1
        SUBI R5, 1
        LD   R4, R5, R0
        LIW  R3, ROW1
        ADD  R5, R3, R1
        SUBI R5, 1
        LD   R6, R5, R0
        SL0  R6, R6
        ADD  R4, R4, R6
        LIW  R3, ROW2
        ADD  R5, R3, R1
        SUBI R5, 1
        LD   R6, R5, R0
        ADD  R4, R4, R6
        ; gx: right column sum -> R7
        LIW  R3, ROW0
        ADD  R5, R3, R1
        ADDI R5, 1
        LD   R7, R5, R0
        LIW  R3, ROW1
        ADD  R5, R3, R1
        ADDI R5, 1
        LD   R6, R5, R0
        SL0  R6, R6
        ADD  R7, R7, R6
        LIW  R3, ROW2
        ADD  R5, R3, R1
        ADDI R5, 1
        LD   R6, R5, R0
        ADD  R7, R7, R6
        ; R8 = |left - right|
        SUB  R8, R4, R7
        JMPND negx
        JMPD gotx
negx:   SUB  R8, R7, R4
gotx:
        ; gy: top row sum -> R4
        LIW  R3, ROW0
        ADD  R5, R3, R1
        LD   R4, R5, R0
        SL0  R4, R4
        SUBI R5, 1
        LD   R6, R5, R0
        ADD  R4, R4, R6
        ADDI R5, 2
        LD   R6, R5, R0
        ADD  R4, R4, R6
        ; gy: bottom row sum -> R7
        LIW  R3, ROW2
        ADD  R5, R3, R1
        LD   R7, R5, R0
        SL0  R7, R7
        SUBI R5, 1
        LD   R6, R5, R0
        ADD  R7, R7, R6
        ADDI R5, 2
        LD   R6, R5, R0
        ADD  R7, R7, R6
        ; R9 = |top - bottom|
        SUB  R9, R4, R7
        JMPND negy
        JMPD goty
negy:   SUB  R9, R7, R4
goty:
        ; out[x] = gx + gy
        ADD  R9, R8, R9
        LIW  R3, OUT
        ADD  R5, R3, R1
        ST   R9, R5, R0
        ADDI R1, 1
        SUB  R11, R2, R1
        JMPZD tail
        JMPD loop
tail:   LIW  R3, OUT
        ADD  R5, R3, R2
        XOR  R10, R10, R10
        ST   R10, R5, R0        ; out[W-1] = 0
        LIW  R12, {DONE_MARKER}
        LIW  R13, IO
        ST   R12, R13, R0       ; completion marker to the host
        HALT
"
    )
}

/// Host-side reference Sobel, bit-identical to what the R8 program
/// computes: interior pixels get `|gx| + |gy|`, borders are zero.
pub fn reference(image: &Image) -> Vec<u16> {
    let (w, h) = (image.width, image.height);
    let mut out = vec![0u16; w * h];
    let px = |x: usize, y: usize| i32::from(image.pixels[y * w + x]);
    for y in 1..h.saturating_sub(1) {
        for x in 1..w - 1 {
            let left = px(x - 1, y - 1) + 2 * px(x - 1, y) + px(x - 1, y + 1);
            let right = px(x + 1, y - 1) + 2 * px(x + 1, y) + px(x + 1, y + 1);
            let top = px(x - 1, y - 1) + 2 * px(x, y - 1) + px(x + 1, y - 1);
            let bottom = px(x - 1, y + 1) + 2 * px(x, y + 1) + px(x + 1, y + 1);
            out[y * w + x] = ((left - right).unsigned_abs() + (top - bottom).unsigned_abs()) as u16;
        }
    }
    out
}

/// Result of a hardware edge-detection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeRun {
    /// The detected edges, row-major, same dimensions as the input.
    pub output: Vec<u16>,
    /// Clock cycles the whole run took (loading, computing, reading).
    pub cycles: u64,
}

/// Runs edge detection on `image`, distributing lines round-robin over
/// `processors` exactly as the Fig. 10 application does. The processors
/// must already hold the [`program`] for `image.width()` (use
/// [`load`]).
///
/// # Errors
///
/// Any [`SystemError`] from the host protocol.
///
/// # Panics
///
/// Panics if `processors` is empty.
pub fn run(
    system: &mut System,
    host: &mut Host,
    processors: &[NodeId],
    image: &Image,
) -> Result<EdgeRun, SystemError> {
    assert!(!processors.is_empty(), "need at least one processor");
    let (w, h) = (image.width, image.height);
    let start = system.cycle();
    let mut output = vec![0u16; w * h];
    if h >= 3 {
        // In-flight bookkeeping: which output line a processor is
        // working on, and how many printf words we expect from it.
        let mut busy: Vec<Option<usize>> = vec![None; processors.len()];
        let mut printed: Vec<usize> = processors
            .iter()
            .map(|&p| host.printf_output(p).len())
            .collect();
        let mut next_line = 1usize;
        let mut remaining = h - 2;
        while remaining > 0 {
            for slot in 0..processors.len() {
                let node = processors[slot];
                if let Some(line) = busy[slot] {
                    // Collect the finished line.
                    host.wait_for_printf(system, node, printed[slot] + 1)?;
                    printed[slot] += 1;
                    let data = host.read_memory(system, node, OUT_ADDR, w)?;
                    output[line * w..(line + 1) * w].copy_from_slice(&data);
                    busy[slot] = None;
                    remaining -= 1;
                }
                if next_line < h - 1 {
                    // Feed the next window and set the processor going.
                    let line = next_line;
                    next_line += 1;
                    host.write_memory(system, node, ROW0_ADDR, image.row(line - 1))?;
                    host.write_memory(system, node, ROW1_ADDR, image.row(line))?;
                    host.write_memory(system, node, ROW2_ADDR, image.row(line + 1))?;
                    host.activate(system, node)?;
                    busy[slot] = Some(line);
                }
            }
        }
    }
    Ok(EdgeRun {
        output,
        cycles: system.cycle() - start,
    })
}

/// Loads the edge program for `width`-pixel lines into every processor
/// in `processors`.
///
/// # Errors
///
/// Any [`SystemError`] from the host protocol.
pub fn load(
    system: &mut System,
    host: &mut Host,
    processors: &[NodeId],
    width: u16,
) -> Result<(), SystemError> {
    let source = program(width);
    let image = r8::asm::assemble(&source)
        .map_err(|e| SystemError::Protocol(format!("built-in edge program: {e}")))?;
    for &node in processors {
        host.load_program(system, node, image.words())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PROCESSOR_1, PROCESSOR_2};

    #[test]
    fn program_assembles_for_all_supported_widths() {
        for width in [3u16, 16, 32, 64] {
            let p = r8::asm::assemble(&program(width)).expect("assembles");
            assert!(p.len() < 0x200, "program must fit below ROW0");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn width_must_be_supported() {
        program(65);
    }

    #[test]
    fn reference_detects_a_vertical_step() {
        // A hard vertical edge: columns 0..2 dark, 3.. bright.
        let w = 6;
        let pixels: Vec<u16> = (0..w * 5)
            .map(|i| if i % w < 3 { 0 } else { 100 })
            .collect();
        let image = Image::new(w, 5, pixels);
        let out = reference(&image);
        // The edge sits between x=2 and x=3; responses peak there.
        assert!(out[2 * w + 2] > 0);
        assert!(out[2 * w + 3] > 0);
        assert_eq!(out[2 * w + 1], 0); // flat area
        assert_eq!(out[0], 0); // border
    }

    #[test]
    fn single_processor_matches_reference() {
        let image = Image::synthetic(16, 6);
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        host.synchronize(&mut system).unwrap();
        load(&mut system, &mut host, &[PROCESSOR_1], 16).unwrap();
        let run = run(&mut system, &mut host, &[PROCESSOR_1], &image).unwrap();
        assert_eq!(run.output, reference(&image));
        assert!(run.cycles > 0);
    }

    #[test]
    fn two_processors_match_reference_and_are_faster() {
        let image = Image::synthetic(16, 10);

        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        host.synchronize(&mut system).unwrap();
        load(&mut system, &mut host, &[PROCESSOR_1], 16).unwrap();
        let serial = run(&mut system, &mut host, &[PROCESSOR_1], &image).unwrap();

        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        host.synchronize(&mut system).unwrap();
        let both = [PROCESSOR_1, PROCESSOR_2];
        load(&mut system, &mut host, &both, 16).unwrap();
        let parallel = run(&mut system, &mut host, &both, &image).unwrap();

        assert_eq!(serial.output, reference(&image));
        assert_eq!(parallel.output, reference(&image));
        assert!(
            parallel.cycles < serial.cycles,
            "parallel {} !< serial {}",
            parallel.cycles,
            serial.cycles
        );
    }

    #[test]
    fn tiny_images_yield_zero_output() {
        let image = Image::synthetic(8, 2); // no interior line
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        host.synchronize(&mut system).unwrap();
        load(&mut system, &mut host, &[PROCESSOR_1], 8).unwrap();
        let run = run(&mut system, &mut host, &[PROCESSOR_1], &image).unwrap();
        assert!(run.output.iter().all(|&p| p == 0));
    }
}

//! Distributed histogram with token-ring aggregation — a second
//! multiprocessor application in the spirit of §4, written entirely in
//! the compiled R8C language.
//!
//! The host scatters a data block over the processors' local memories.
//! Each processor bins its chunk locally (16 bins of the low nibble),
//! then the partial histograms are merged into a region of the remote
//! memory IP under a **token ring**: processor *i* waits for a notify
//! from processor *i−1*, performs its read-modify-write merge, and
//! notifies processor *i+1* — the paper's message-passing
//! synchronization carrying real mutual exclusion. The last processor
//! reports completion with a printf.
//!
//! Before passing the token, each processor reads back the last shared
//! bin: on the wormhole NoC this read is ordered behind the processor's
//! own writes (same source-destination path), so its reply proves the
//! merge has landed before the next processor may start.

use crate::error::SystemError;
use crate::host::Host;
use crate::node::NodeId;
use crate::system::System;

/// Number of histogram bins (low nibble of each sample).
pub const BINS: u16 = 16;
/// Local address of the chunk the host scatters to each processor.
pub const DATA_ADDR: u16 = 0x300;
/// Largest chunk one processor can take.
pub const MAX_CHUNK: usize = 0x80;
/// Parameter block: chunk length.
pub const PARAM_LEN: u16 = 0x380;
/// Parameter block: predecessor node number (0 = first in the ring).
pub const PARAM_PRED: u16 = 0x381;
/// Parameter block: successor node number (0 = last in the ring).
pub const PARAM_SUCC: u16 = 0x382;
/// Parameter block: window address of the shared bins.
pub const PARAM_SHARED: u16 = 0x383;
/// Local scratch where each processor builds its partial histogram.
pub const LOCAL_BINS: u16 = 0x3A0;
/// Offset of the shared bins inside the remote memory IP.
pub const SHARED_BINS_OFFSET: u16 = 0x40;
/// The completion marker the last processor prints.
pub const DONE_MARKER: u16 = 0x00D1;

/// The R8C source of the per-processor worker.
pub fn source() -> String {
    format!(
        "
        // Distributed histogram worker (generated; see apps::histogram).
        func main() {{
            var n = peek({PARAM_LEN});
            var pred = peek({PARAM_PRED});
            var succ = peek({PARAM_SUCC});
            var shared = peek({PARAM_SHARED});
            var i = 0;
            while (i < {BINS}) {{
                poke({LOCAL_BINS} + i, 0);
                i = i + 1;
            }}
            i = 0;
            while (i < n) {{
                var bin = peek({DATA_ADDR} + i) & 15;
                poke({LOCAL_BINS} + bin, peek({LOCAL_BINS} + bin) + 1);
                i = i + 1;
            }}
            if (pred) {{ wait(pred); }}
            i = 0;
            while (i < {BINS}) {{
                poke(shared + i, peek(shared + i) + peek({LOCAL_BINS} + i));
                i = i + 1;
            }}
            // Flush: a read on the same path drains the posted writes
            // before the token moves on.
            var fence = peek(shared + {BINS} - 1);
            if (succ) {{ notify(succ); }}
            else {{ printf({DONE_MARKER} + 0 * fence); }}
        }}
"
    )
}

/// Host-side reference histogram.
pub fn reference(data: &[u16]) -> Vec<u16> {
    let mut bins = vec![0u16; usize::from(BINS)];
    for &v in data {
        bins[usize::from(v & 15)] += 1;
    }
    bins
}

/// Result of a distributed histogram run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRun {
    /// The merged 16-bin histogram.
    pub bins: Vec<u16>,
    /// Clock cycles from scatter to the final read-back.
    pub cycles: u64,
}

/// Runs the distributed histogram of `data` over `processors` (ring
/// order = slice order), merging into `memory_node`'s storage.
///
/// # Errors
///
/// Any [`SystemError`] from the host protocol; `BadLayout` if the data
/// does not fit the processors' chunk buffers.
///
/// # Panics
///
/// Panics if `processors` is empty.
pub fn run(
    system: &mut System,
    host: &mut Host,
    processors: &[NodeId],
    memory_node: NodeId,
    data: &[u16],
) -> Result<HistogramRun, SystemError> {
    assert!(!processors.is_empty(), "need at least one processor");
    let chunk = data.len().div_ceil(processors.len());
    if chunk > MAX_CHUNK {
        return Err(SystemError::BadLayout(format!(
            "chunks of {chunk} words exceed the {MAX_CHUNK}-word buffer"
        )));
    }
    let start = system.cycle();
    let program = r8c::build(&source())
        .map_err(|e| SystemError::Protocol(format!("built-in histogram worker: {e}")))?;

    // Zero the shared bins.
    host.write_memory(
        system,
        memory_node,
        SHARED_BINS_OFFSET,
        &vec![0u16; usize::from(BINS)],
    )?;

    let last = processors.len() - 1;
    for (k, &node) in processors.iter().enumerate() {
        let chunk_data = data.chunks(chunk).nth(k).unwrap_or(&[]);
        let shared =
            system
                .address_map(node)?
                .window_base(memory_node)
                .ok_or(SystemError::BadNode {
                    node: memory_node,
                    expected: "a memory window of every processor",
                })?
                + SHARED_BINS_OFFSET;
        host.load_program(system, node, program.words())?;
        host.write_memory(system, node, DATA_ADDR, chunk_data)?;
        let params = [
            chunk_data.len() as u16,
            if k == 0 {
                0
            } else {
                processors[k - 1].as_u16()
            },
            if k == last {
                0
            } else {
                processors[k + 1].as_u16()
            },
            shared,
        ];
        host.write_memory(system, node, PARAM_LEN, &params)?;
    }
    for &node in processors {
        host.activate(system, node)?;
    }
    // The last processor in the ring prints the completion marker.
    let last_node = processors[last];
    let already = host.printf_output(last_node).len();
    host.wait_for_printf(system, last_node, already + 1)?;
    let bins = host.read_memory(system, memory_node, SHARED_BINS_OFFSET, usize::from(BINS))?;
    Ok(HistogramRun {
        bins,
        cycles: system.cycle() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{System, PROCESSOR_1, PROCESSOR_2, REMOTE_MEMORY};

    fn data(len: usize) -> Vec<u16> {
        (0..len).map(|i| ((i * 37 + 11) % 251) as u16).collect()
    }

    #[test]
    fn worker_compiles() {
        r8c::build(&source()).expect("compiles");
    }

    #[test]
    fn single_processor_matches_reference() {
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new().with_budget(20_000_000);
        host.synchronize(&mut system).unwrap();
        let data = data(100);
        let run = run(&mut system, &mut host, &[PROCESSOR_1], REMOTE_MEMORY, &data).unwrap();
        assert_eq!(run.bins, reference(&data));
    }

    #[test]
    fn two_processors_merge_correctly() {
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new().with_budget(20_000_000);
        host.synchronize(&mut system).unwrap();
        let data = data(200);
        let run = run(
            &mut system,
            &mut host,
            &[PROCESSOR_1, PROCESSOR_2],
            REMOTE_MEMORY,
            &data,
        )
        .unwrap();
        assert_eq!(run.bins, reference(&data));
        // The total count equals the input length.
        assert_eq!(run.bins.iter().map(|&b| u32::from(b)).sum::<u32>(), 200);
    }

    #[test]
    fn uneven_chunks_are_handled() {
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new().with_budget(20_000_000);
        host.synchronize(&mut system).unwrap();
        let data = data(101); // 51 + 50
        let run = run(
            &mut system,
            &mut host,
            &[PROCESSOR_1, PROCESSOR_2],
            REMOTE_MEMORY,
            &data,
        )
        .unwrap();
        assert_eq!(run.bins, reference(&data));
    }

    #[test]
    fn oversized_chunks_are_rejected() {
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        host.synchronize(&mut system).unwrap();
        let data = data(1000);
        assert!(matches!(
            run(&mut system, &mut host, &[PROCESSOR_1], REMOTE_MEMORY, &data),
            Err(SystemError::BadLayout(_))
        ));
    }
}

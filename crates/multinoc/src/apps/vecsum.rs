//! Vector sum: the "hello world" of the MultiNoC flow (Fig. 8/9).
//!
//! The host loads a data block and the program, activates the processor,
//! and gets the sum back twice: as a `printf` on the interaction monitor
//! and by reading the result address from memory — the two debug paths
//! of Fig. 9.

/// Where the host deposits the input vector.
pub const DATA_ADDR: u16 = 0x100;
/// Where the program leaves the sum.
pub const RESULT_ADDR: u16 = 0x90;

/// R8 assembly summing `count` words at [`DATA_ADDR`], storing the sum
/// at [`RESULT_ADDR`] and printing it.
///
/// # Panics
///
/// Panics if `count` is 0 (the countdown loop needs at least one
/// element) or would not fit the local memory.
pub fn program(count: u16) -> String {
    assert!(count > 0, "vector sum needs at least one element");
    assert!(
        DATA_ADDR + count <= crate::MEMORY_WORDS,
        "vector does not fit the local memory"
    );
    format!(
        "
        .equ IO, 0xFFFF
        XOR  R0, R0, R0
        XOR  R2, R2, R2      ; sum
        LIW  R1, {DATA_ADDR} ; cursor
        LIW  R3, {count}
loop:   LD   R4, R1, R0
        ADD  R2, R2, R4
        ADDI R1, 1
        SUBI R3, 1
        JMPZD done
        JMPD loop
done:   LIW  R5, {RESULT_ADDR}
        ST   R2, R5, R0
        LIW  R6, IO
        ST   R2, R6, R0      ; printf the sum
        HALT
"
    )
}

/// The sum the program computes (16-bit wrapping).
pub fn expected_sum(data: &[u16]) -> u16 {
    data.iter().fold(0u16, |acc, &v| acc.wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::{System, PROCESSOR_1};
    use r8::asm::assemble;

    #[test]
    fn program_assembles() {
        let p = assemble(&program(16)).expect("assembles");
        assert!(p.len() > 10);
    }

    #[test]
    fn sums_through_the_full_flow() {
        let mut system = System::paper_config().unwrap();
        let mut host = Host::new();
        let data: Vec<u16> = (1..=10).collect();
        let image = assemble(&program(data.len() as u16)).unwrap();
        host.synchronize(&mut system).unwrap();
        host.load_program(&mut system, PROCESSOR_1, image.words())
            .unwrap();
        host.write_memory(&mut system, PROCESSOR_1, DATA_ADDR, &data)
            .unwrap();
        host.activate(&mut system, PROCESSOR_1).unwrap();
        host.wait_for_printf(&mut system, PROCESSOR_1, 1).unwrap();
        assert_eq!(host.printf_output(PROCESSOR_1), &[55]);
        let mem = host
            .read_memory(&mut system, PROCESSOR_1, RESULT_ADDR, 1)
            .unwrap();
        assert_eq!(mem, vec![55]);
        assert_eq!(expected_sum(&data), 55);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_count_panics() {
        program(0);
    }
}

//! Service directory: which node currently *serves* each logical node.
//!
//! The paper's node table maps node numbers to routers and is only
//! rewritten by explicit reconfiguration. Fault tolerance adds a second,
//! dynamic level: a Memory IP can be *replicated* — a primary and a
//! write-through backup on distinct nodes — and when the network's
//! online diagnosis declares the primary's node dead, the system
//! promotes the backup. Clients keep addressing the logical (primary)
//! node number; the directory tells them which node is serving it right
//! now, and the node table then resolves that node to a router as
//! usual.
//!
//! The directory is deliberately dumb and deterministic: it holds no
//! timers and makes no decisions. The system drives it from the same
//! epoch/diagnosis machinery that rewrites routes, calling
//! [`fail_over`](ServiceDirectory::fail_over) exactly when a member
//! node is declared dead, so every kernel replays the identical
//! promotion at the identical cycle.

use hermes_noc::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::node::NodeId;

/// A primary/backup pair serving one logical node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaGroup {
    /// The logical node clients address; also the initial server.
    pub primary: NodeId,
    /// The write-through replica promoted if the primary dies.
    pub backup: NodeId,
    /// The member currently serving requests.
    pub serving: NodeId,
    /// Cycle of the promotion, once one happened.
    pub failed_over_at: Option<u64>,
}

impl ReplicaGroup {
    /// Whether `node` is one of this group's members.
    pub fn contains(&self, node: NodeId) -> bool {
        self.primary == node || self.backup == node
    }

    /// The member that is not `node` (caller guarantees membership).
    fn other(&self, node: NodeId) -> NodeId {
        if self.primary == node {
            self.backup
        } else {
            self.primary
        }
    }
}

/// Maps logical nodes to the node currently serving them.
///
/// Ungrouped nodes serve themselves; the directory only tracks
/// replicated services. Every IP holds a clone (pushed by the system on
/// every change, like the node table), so resolution is a local lookup
/// with no traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceDirectory {
    /// `Vec`, not a map: iteration order must be deterministic.
    groups: Vec<ReplicaGroup>,
}

impl ServiceDirectory {
    /// An empty directory: every node serves itself.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `backup` as the write-through replica of `primary`.
    pub fn register(&mut self, primary: NodeId, backup: NodeId) {
        self.groups.push(ReplicaGroup {
            primary,
            backup,
            serving: primary,
            failed_over_at: None,
        });
    }

    /// The node currently serving requests addressed to `node`.
    /// Identity for nodes without a replica group.
    pub fn serving(&self, node: NodeId) -> NodeId {
        self.groups
            .iter()
            .find(|g| g.primary == node)
            .map_or(node, |g| g.serving)
    }

    /// The replica group `node` belongs to, if any.
    pub fn group_of(&self, node: NodeId) -> Option<&ReplicaGroup> {
        self.groups.iter().find(|g| g.contains(node))
    }

    /// All registered groups.
    pub fn groups(&self) -> &[ReplicaGroup] {
        &self.groups
    }

    /// Snapshot codec: the registered groups in registration order.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.groups.len());
        for g in &self.groups {
            w.put_u8(g.primary.0);
            w.put_u8(g.backup.0);
            w.put_u8(g.serving.0);
            w.put_opt_u64(g.failed_over_at);
        }
    }

    /// Decodes a directory written by
    /// [`snapshot_write`](Self::snapshot_write). The serving member must
    /// be one of the group's two members.
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_len(4)?;
        let mut groups = Vec::with_capacity(len);
        for _ in 0..len {
            let primary = NodeId(r.take_u8()?);
            let backup = NodeId(r.take_u8()?);
            let serving = NodeId(r.take_u8()?);
            let failed_over_at = r.take_opt_u64()?;
            if serving != primary && serving != backup {
                return Err(SnapshotError::Malformed("serving node outside group"));
            }
            groups.push(ReplicaGroup {
                primary,
                backup,
                serving,
                failed_over_at,
            });
        }
        Ok(Self { groups })
    }

    /// Reacts to `dead` being declared dead at `cycle`. If it was the
    /// serving member of a group whose other member is still available,
    /// promotes the survivor and returns `(logical, survivor)` so the
    /// system can rewire clients. Returns `None` when the dead node
    /// serves nothing here (including the case where it is the inactive
    /// member: the serving side keeps serving, it merely loses its
    /// replica).
    pub fn fail_over(&mut self, dead: NodeId, cycle: u64) -> Option<(NodeId, NodeId)> {
        let g = self
            .groups
            .iter_mut()
            .find(|g| g.contains(dead) && g.serving == dead)?;
        let survivor = g.other(dead);
        g.serving = survivor;
        g.failed_over_at = Some(cycle);
        Some((g.primary, survivor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungrouped_nodes_serve_themselves() {
        let d = ServiceDirectory::new();
        assert_eq!(d.serving(NodeId(3)), NodeId(3));
        assert!(d.group_of(NodeId(3)).is_none());
    }

    #[test]
    fn primary_serves_until_failover_promotes_the_backup() {
        let mut d = ServiceDirectory::new();
        d.register(NodeId(3), NodeId(4));
        assert_eq!(d.serving(NodeId(3)), NodeId(3));
        assert_eq!(d.fail_over(NodeId(3), 77), Some((NodeId(3), NodeId(4))));
        assert_eq!(d.serving(NodeId(3)), NodeId(4));
        let g = d.group_of(NodeId(3)).unwrap();
        assert_eq!(g.failed_over_at, Some(77));
        assert_eq!(g.serving, NodeId(4));
    }

    #[test]
    fn backup_death_does_not_move_the_service() {
        let mut d = ServiceDirectory::new();
        d.register(NodeId(3), NodeId(4));
        assert_eq!(d.fail_over(NodeId(4), 10), None);
        assert_eq!(d.serving(NodeId(3)), NodeId(3));
        assert!(d.group_of(NodeId(3)).unwrap().failed_over_at.is_none());
    }

    #[test]
    fn dead_unrelated_node_is_ignored() {
        let mut d = ServiceDirectory::new();
        d.register(NodeId(3), NodeId(4));
        assert_eq!(d.fail_over(NodeId(1), 5), None);
    }

    #[test]
    fn failback_after_both_deaths_is_not_attempted_twice() {
        // Primary dies, backup promoted; then the backup dies too. The
        // group fails over back to the (dead) primary only if asked —
        // the system gates this on liveness, the directory just records.
        let mut d = ServiceDirectory::new();
        d.register(NodeId(3), NodeId(4));
        d.fail_over(NodeId(3), 1);
        assert_eq!(d.fail_over(NodeId(4), 2), Some((NodeId(3), NodeId(3))));
    }
}

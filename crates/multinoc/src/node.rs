//! Node identities.

use std::fmt;

use hermes_noc::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Logical number of an IP core in the MultiNoC system, as used by the
/// host protocol ("read from P1 local memory" = node 1) and by the
/// wait/notify commands ("the number of the processor").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The node number as carried in packets and registers.
    pub fn as_u16(self) -> u16 {
        u16::from(self.0)
    }

    /// Index into the system's node table.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

impl From<u8> for NodeId {
    fn from(n: u8) -> Self {
        Self(n)
    }
}

/// What kind of IP core occupies a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An R8 processor IP with its 1K-word local memory.
    Processor,
    /// An independently accessible remote memory IP.
    Memory,
    /// The RS-232 serial IP bridging to the host computer.
    Serial,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NodeKind::Processor => "processor",
            NodeKind::Memory => "memory",
            NodeKind::Serial => "serial",
        };
        f.write_str(name)
    }
}

/// The system's directory: which router each node sits on and what kind
/// of IP it is. Shared (by clone) with the IPs that need to translate
/// node numbers to router addresses. Slots may be vacant: node ids stay
/// stable when an IP core is removed by dynamic reconfiguration (§5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeTable {
    entries: Vec<Option<(hermes_noc::RouterAddr, NodeKind)>>,
}

impl NodeTable {
    /// Builds a table from `(router, kind)` pairs in node-id order.
    pub fn new(entries: Vec<(hermes_noc::RouterAddr, NodeKind)>) -> Self {
        Self {
            entries: entries.into_iter().map(Some).collect(),
        }
    }

    /// Number of node slots (including vacant ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no node slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Router address of `node` (`None` for unknown or vacant nodes).
    pub fn router_of(&self, node: NodeId) -> Option<hermes_noc::RouterAddr> {
        self.entries
            .get(node.index())
            .copied()
            .flatten()
            .map(|(addr, _)| addr)
    }

    /// Kind of `node` (`None` for unknown or vacant nodes).
    pub fn kind_of(&self, node: NodeId) -> Option<NodeKind> {
        self.entries
            .get(node.index())
            .copied()
            .flatten()
            .map(|(_, kind)| kind)
    }

    /// Node sitting on router `addr`.
    pub fn node_of(&self, addr: hermes_noc::RouterAddr) -> Option<NodeId> {
        self.entries
            .iter()
            .position(|e| e.is_some_and(|(a, _)| a == addr))
            .map(|i| NodeId(i as u8))
    }

    /// All nodes of a kind, in node-id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.is_some_and(|(_, k)| k == kind))
            .map(|(i, _)| NodeId(i as u8))
    }

    /// Moves `node` to `addr` (dynamic reconfiguration).
    pub(crate) fn relocate(&mut self, node: NodeId, addr: hermes_noc::RouterAddr) {
        if let Some(Some(entry)) = self.entries.get_mut(node.index()) {
            entry.0 = addr;
        }
    }

    /// Appends a node, returning its id.
    pub(crate) fn push(&mut self, addr: hermes_noc::RouterAddr, kind: NodeKind) -> NodeId {
        self.entries.push(Some((addr, kind)));
        NodeId(self.entries.len() as u8 - 1)
    }

    /// Vacates a node slot (the id is never reused).
    pub(crate) fn vacate(&mut self, node: NodeId) {
        if let Some(entry) = self.entries.get_mut(node.index()) {
            *entry = None;
        }
    }

    /// Snapshot codec: slot count, then per slot a vacancy tag and, if
    /// occupied, the router address and kind tag.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.entries.len());
        for entry in &self.entries {
            match entry {
                None => w.put_u8(0),
                Some((addr, kind)) => {
                    w.put_u8(1);
                    w.put_addr(*addr);
                    w.put_u8(match kind {
                        NodeKind::Processor => 0,
                        NodeKind::Memory => 1,
                        NodeKind::Serial => 2,
                    });
                }
            }
        }
    }

    /// Decodes a table written by
    /// [`snapshot_write`](Self::snapshot_write), preserving vacancies and
    /// validating router addresses against the mesh shape.
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let len = r.take_len(1)?;
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push(match r.take_u8()? {
                0 => None,
                1 => {
                    let addr = r.take_addr_in(width, height)?;
                    let kind = match r.take_u8()? {
                        0 => NodeKind::Processor,
                        1 => NodeKind::Memory,
                        2 => NodeKind::Serial,
                        _ => return Err(SnapshotError::Malformed("node kind tag")),
                    };
                    Some((addr, kind))
                }
                _ => return Err(SnapshotError::Malformed("node slot tag")),
            });
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_noc::RouterAddr;

    #[test]
    fn node_table_lookups() {
        let table = NodeTable::new(vec![
            (RouterAddr::new(0, 0), NodeKind::Serial),
            (RouterAddr::new(0, 1), NodeKind::Processor),
            (RouterAddr::new(1, 0), NodeKind::Processor),
            (RouterAddr::new(1, 1), NodeKind::Memory),
        ]);
        assert_eq!(table.len(), 4);
        assert_eq!(table.router_of(NodeId(1)), Some(RouterAddr::new(0, 1)));
        assert_eq!(table.node_of(RouterAddr::new(1, 1)), Some(NodeId(3)));
        assert_eq!(table.kind_of(NodeId(0)), Some(NodeKind::Serial));
        assert_eq!(table.router_of(NodeId(9)), None);
        assert_eq!(
            table.nodes_of_kind(NodeKind::Processor).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn conversions_and_display() {
        let n = NodeId(3);
        assert_eq!(n.as_u16(), 3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "node 3");
        assert_eq!(NodeId::from(7u8), NodeId(7));
        assert_eq!(NodeKind::Serial.to_string(), "serial");
    }
}

//! The Processor IP core (§2.4 of the paper).
//!
//! An R8 soft core plus a 1K-word local memory (acting as a unified
//! cache) plus the control logic interfacing both to the Hermes NoC. The
//! control logic "commands the execution of the R8 processor, putting it
//! in wait state each time the processor executes a load-store
//! instruction" that leaves the local memory:
//!
//! - loads/stores into a remote window become `ReadFromMemory` /
//!   `WriteInMemory` service packets (reads stall the core until the
//!   `ReadReturn` arrives; writes are posted);
//! - `ST` at `0xFFFF` sends `Printf`, `LD` at `0xFFFF` sends `Scanf` and
//!   stalls until the `ScanfReturn` arrives;
//! - `ST` at `0xFFFE` (`wait`) stalls until a `Notify` from the named
//!   processor arrives;
//! - `ST` at `0xFFFD` (`notify`) sends a `Notify` packet to the named
//!   processor.
//!
//! The IP also serves the network side of the NUMA model: incoming
//! `ReadFromMemory` / `WriteInMemory` messages access the local memory
//! with the processor having bus priority, and `ActivateProcessor`
//! starts execution from address 0.

use std::collections::HashMap;

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};
use r8::core::{Bus, BusResponse, Cpu, CpuImage, CpuState, Flags, Pending, StepOutcome};

use crate::addrmap::{AddressMap, Target};
use crate::directory::ServiceDirectory;
use crate::error::SystemError;
use crate::memory::MemoryCore;
use crate::net::NetPort;
use crate::node::{NodeId, NodeTable};
use crate::reliable::{DedupReceiver, PendingRequest, ReliableSender, RetryCounters};
use crate::service::Service;

/// An in-flight network transaction of the control logic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum NetPending {
    /// No transaction in flight.
    #[default]
    Idle,
    /// A remote read was sent; waiting for the `ReadReturn` that echoes
    /// its sequence number (retransmitted on timeout).
    RemoteRead(PendingRequest),
    /// A remote read completed with this value; the core collects it on
    /// its retry. Carries the router that answered so a
    /// `ReplicaInvalidate` naming it can discard the value before the
    /// core consumes it (the read then re-issues against the promoted
    /// replica).
    RemoteReadDone {
        /// The value read.
        value: u16,
        /// The router that served it.
        from: RouterAddr,
    },
    /// A `Scanf` was sent; waiting for the `ScanfReturn`.
    Scanf(PendingRequest),
    /// The scanf answer arrived.
    ScanfDone(u16),
}

/// Why (and for whom) the core is blocked in a wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum WaitState {
    /// Not waiting.
    #[default]
    None,
    /// The core executed the wait command (`ST` at `0xFFFE`); the stalled
    /// store retries and consumes the notify itself.
    Internal(u16),
    /// A `Wait` service packet blocked the core; the step loop consumes
    /// the notify when it arrives.
    External(u16),
}

/// Why a [`ProcessorStatus::Blocked`] processor is blocked — the
/// observable state the paper's proposed multiprocessor debugger needs
/// "to detect distributed application errors" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Executing `wait`, parked until the named node notifies.
    WaitFor(NodeId),
    /// A remote load is in flight on the NoC.
    RemoteRead,
    /// A `scanf` awaits host input.
    Scanf,
}

/// Execution status a processor can be observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorStatus {
    /// Not yet activated by the host.
    Inactive,
    /// Fetching/executing instructions.
    Running,
    /// Blocked: in a `wait`, a remote read, or a `scanf`.
    Blocked,
    /// Executed `HALT`.
    Halted,
    /// Hit an illegal instruction; stopped.
    Faulted,
}

/// Where a processor's cycles went, sampled once per clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationCounters {
    /// Cycles spent executing (including instruction pacing).
    pub running: u64,
    /// Cycles blocked on the network: wait, remote reads, scanf.
    pub blocked: u64,
    /// Cycles halted after `HALT`.
    pub halted: u64,
    /// Cycles before activation (or after a fault).
    pub idle: u64,
}

impl UtilizationCounters {
    /// Total sampled cycles.
    pub fn total(&self) -> u64 {
        self.running + self.blocked + self.halted + self.idle
    }

    /// Fraction of sampled cycles spent running, `0.0..=1.0`.
    pub fn busy_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.running as f64 / self.total() as f64
        }
    }

    /// Fraction of sampled cycles blocked on the network.
    pub fn blocked_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.blocked as f64 / self.total() as f64
        }
    }
}

/// The Processor IP: R8 core, local memory and NoC control logic.
#[derive(Debug)]
pub struct ProcessorIp {
    node: NodeId,
    addr: RouterAddr,
    cpu: Cpu,
    local: MemoryCore,
    map: AddressMap,
    table: NodeTable,
    /// Which node currently serves each logical node (replica failover).
    directory: ServiceDirectory,
    /// Router of the serial IP, where printf/scanf go; `None` makes
    /// printf a no-op and scanf return 0 (headless systems).
    io_router: Option<RouterAddr>,
    active: bool,
    fault: Option<String>,
    next_ready: u64,
    /// Stall cycles already charged for the in-flight instruction.
    stalled_cycles: u32,
    pending: NetPending,
    /// Wait/notify blocking state.
    wait: WaitState,
    /// Notifies received and not yet consumed, by sender node number.
    notifies: HashMap<u16, u32>,
    utilization: UtilizationCounters,
    /// Retransmitting sender for writes and notifies (explicit ack).
    reliable: ReliableSender,
    /// Duplicate suppression for sequenced messages this IP receives.
    dedup: DedupReceiver,
}

impl ProcessorIp {
    /// Builds a processor IP.
    pub fn new(
        node: NodeId,
        addr: RouterAddr,
        local_words: u16,
        map: AddressMap,
        table: NodeTable,
        io_router: Option<RouterAddr>,
    ) -> Self {
        Self {
            node,
            addr,
            cpu: Cpu::new(),
            local: MemoryCore::new(local_words),
            map,
            table,
            directory: ServiceDirectory::new(),
            io_router,
            active: false,
            fault: None,
            next_ready: 0,
            stalled_cycles: 0,
            pending: NetPending::Idle,
            wait: WaitState::None,
            notifies: HashMap::new(),
            utilization: UtilizationCounters::default(),
            reliable: ReliableSender::new(node),
            dedup: DedupReceiver::new(),
        }
    }

    /// The router this IP is attached to.
    pub fn router(&self) -> RouterAddr {
        self.addr
    }

    /// This processor's node number.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The R8 core, for inspection.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The local memory, for inspection.
    pub fn local(&self) -> &MemoryCore {
        &self.local
    }

    /// Mutable local memory (host-side preloading in tests; the real
    /// system loads through the serial link).
    pub fn local_mut(&mut self) -> &mut MemoryCore {
        &mut self.local
    }

    /// This processor's address map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Mutable address map (dynamic reconfiguration appends windows).
    pub fn map_mut(&mut self) -> &mut AddressMap {
        &mut self.map
    }

    /// Updates this IP's view of the system after a reconfiguration.
    pub(crate) fn reconfigure(
        &mut self,
        addr: RouterAddr,
        table: NodeTable,
        io_router: Option<RouterAddr>,
    ) {
        self.addr = addr;
        self.table = table;
        self.io_router = io_router;
    }

    /// Installs this IP's view of the service directory (pushed by the
    /// system whenever a replica group changes hands).
    pub(crate) fn set_directory(&mut self, directory: ServiceDirectory) {
        self.directory = directory;
    }

    /// Retargets everything this IP has in flight towards `old` — the
    /// reliable write/notify queue and a pending remote read — at `new`,
    /// with retry clocks restarted from `now`. Called by the system when
    /// a service this IP talks to fails over to a replica.
    pub(crate) fn redirect(&mut self, old: RouterAddr, new: RouterAddr, now: u64) {
        self.reliable.redirect_dest(old, new, now);
        if let NetPending::RemoteRead(req) = &mut self.pending {
            req.redirect(old, new, now);
        }
    }

    /// Whether the host has activated this processor.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Current status.
    pub fn status(&self) -> ProcessorStatus {
        if self.fault.is_some() {
            ProcessorStatus::Faulted
        } else if !self.active {
            ProcessorStatus::Inactive
        } else if self.cpu.is_halted() {
            ProcessorStatus::Halted
        } else if self.wait != WaitState::None || self.pending != NetPending::Idle {
            ProcessorStatus::Blocked
        } else {
            ProcessorStatus::Running
        }
    }

    /// The fault message, if the core stopped on an illegal instruction.
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Why the processor is blocked, if it is.
    pub fn block_reason(&self) -> Option<BlockReason> {
        match self.wait {
            WaitState::Internal(n) | WaitState::External(n) => {
                return Some(BlockReason::WaitFor(NodeId(n as u8)));
            }
            WaitState::None => {}
        }
        match self.pending {
            NetPending::RemoteRead(_) => Some(BlockReason::RemoteRead),
            NetPending::Scanf(_) => Some(BlockReason::Scanf),
            _ => None,
        }
    }

    /// Where this processor's cycles have gone so far.
    pub fn utilization(&self) -> UtilizationCounters {
        self.utilization
    }

    /// Whether this IP has no reliable traffic in flight or queued (its
    /// writes and notifies have all been acknowledged).
    pub fn net_quiet(&self) -> bool {
        self.reliable.is_idle()
    }

    /// Work done by this IP's reliability layer.
    pub fn retry_counters(&self) -> RetryCounters {
        self.reliable.counters()
    }

    /// Duplicate sequenced messages this IP refused.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dedup.duplicates()
    }

    /// The earliest future cycle at which this IP has work to do without
    /// receiving anything — the soonest retransmission deadline of its
    /// reliability layer or pending request. `Some(now)` means it is
    /// busy right now; `None` means only external input (a delivered
    /// packet) can wake it. Drives the system's idle fast-forward.
    pub(crate) fn next_deadline(&self, now: u64) -> Option<u64> {
        if self.status() == ProcessorStatus::Running {
            return Some(now);
        }
        // A satisfied wait releases the core on its very next step.
        match self.wait {
            WaitState::Internal(n) | WaitState::External(n) => {
                if self.notifies.get(&n).copied().unwrap_or(0) > 0 {
                    return Some(now);
                }
            }
            WaitState::None => {}
        }
        let mut deadline = self.reliable.next_deadline();
        match &self.pending {
            NetPending::RemoteRead(req) | NetPending::Scanf(req) => {
                let d = self.reliable.request_deadline(req);
                deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
            }
            // A completed read or scanf is collected by the core on its
            // next retry: work right now.
            NetPending::RemoteReadDone { .. } | NetPending::ScanfDone(_) => return Some(now),
            NetPending::Idle => {}
        }
        deadline
    }

    /// Whether stepping this IP this cycle can have any effect: only
    /// false for cores that cannot execute (inactive, halted, faulted)
    /// with a quiet reliability layer. The caller must separately ensure
    /// no packet is waiting at this IP's router.
    pub(crate) fn can_skip_cycle(&self, now: u64) -> bool {
        matches!(
            self.status(),
            ProcessorStatus::Inactive | ProcessorStatus::Halted | ProcessorStatus::Faulted
        ) && self.next_deadline(now).is_none()
    }

    /// Books `cycles` the kernel skipped over into the utilization
    /// category the processor currently occupies — exactly what per-cycle
    /// sampling would have recorded, since a skipped processor cannot
    /// change state.
    pub(crate) fn credit_skipped(&mut self, cycles: u64) {
        match self.status() {
            ProcessorStatus::Running => self.utilization.running += cycles,
            ProcessorStatus::Blocked => self.utilization.blocked += cycles,
            ProcessorStatus::Halted => self.utilization.halted += cycles,
            ProcessorStatus::Inactive | ProcessorStatus::Faulted => {
                self.utilization.idle += cycles;
            }
        }
    }

    /// One clock step: service the network, then (at the pace set by
    /// instruction timing) the core.
    ///
    /// # Errors
    ///
    /// [`SystemError`] on malformed network traffic. An illegal
    /// instruction does not error the step; it faults the processor
    /// (see [`status`](Self::status) and [`fault`](Self::fault)) so the
    /// rest of the system keeps running, and is surfaced by the system's
    /// run methods.
    pub fn step(&mut self, now: u64, net: &mut NetPort<'_>) -> Result<(), SystemError> {
        match self.status() {
            ProcessorStatus::Running => self.utilization.running += 1,
            ProcessorStatus::Blocked => self.utilization.blocked += 1,
            ProcessorStatus::Halted => self.utilization.halted += 1,
            ProcessorStatus::Inactive | ProcessorStatus::Faulted => self.utilization.idle += 1,
        }
        // Network side first: the paper gives the processor priority on
        // the memory banks, but the NoC interface is independent logic.
        while let Some(msg) = net.recv()? {
            match msg.service {
                Service::ReadFromMemory { addr, count } => {
                    let data = self.local.read_block(addr, count);
                    net.send_seq(msg.src, Service::ReadReturn { addr, data }, msg.seq)?;
                }
                Service::WriteInMemory { addr, data } => {
                    if self.dedup.accept(msg.src, msg.seq) {
                        self.local.write_block(addr, &data);
                    }
                    if msg.seq != 0 {
                        net.send_seq(msg.src, Service::Ack, msg.seq)?;
                    }
                }
                Service::ActivateProcessor => {
                    // A retransmitted duplicate must not reset a running
                    // core: the first activation was delivered, only its
                    // ack was lost.
                    if self.dedup.accept(msg.src, msg.seq) {
                        self.cpu.reset();
                        self.active = true;
                        self.fault = None;
                        self.pending = NetPending::Idle;
                        self.wait = WaitState::None;
                    }
                    if msg.seq != 0 {
                        net.send_seq(msg.src, Service::Ack, msg.seq)?;
                    }
                }
                Service::ReadReturn { data, .. } => {
                    if let NetPending::RemoteRead(req) = &self.pending {
                        if req.matches(msg.src, msg.seq) {
                            let value = data.first().copied().unwrap_or(0);
                            self.pending = NetPending::RemoteReadDone {
                                value,
                                from: msg.src,
                            };
                        }
                    }
                }
                Service::ScanfReturn { value } => {
                    if let NetPending::Scanf(req) = &self.pending {
                        if req.matches(msg.src, msg.seq) {
                            self.pending = NetPending::ScanfDone(value);
                        }
                    }
                }
                Service::Notify { from } => {
                    if self.dedup.accept(msg.src, msg.seq) {
                        *self.notifies.entry(from).or_insert(0) += 1;
                    }
                    if msg.seq != 0 {
                        net.send_seq(msg.src, Service::Ack, msg.seq)?;
                    }
                }
                Service::Wait { from } => {
                    self.wait = WaitState::External(from);
                }
                Service::Ack => {
                    self.reliable.on_ack(net, msg.src, msg.seq, now)?;
                }
                Service::ReplicaInvalidate { stale } => {
                    // A failover promoted a new replica. A read answer
                    // still parked from the dead primary is discarded so
                    // the stalled load re-issues against the survivor.
                    if matches!(self.pending, NetPending::RemoteReadDone { from, .. } if from == stale)
                    {
                        self.pending = NetPending::Idle;
                    }
                }
                Service::Printf { .. } | Service::Scanf => {
                    return Err(SystemError::Protocol(format!(
                        "processor {} received a host-bound service",
                        self.node
                    )));
                }
                Service::ReplicateWrite { .. } => {
                    return Err(SystemError::Protocol(format!(
                        "processor {} received a memory-bound replication service",
                        self.node
                    )));
                }
            }
        }

        // Reliability timers: retransmit unacknowledged writes/notifies
        // and the pending remote read or scanf, if any timed out. The
        // scanf is answered by the host, which may legitimately take
        // arbitrarily long — it retries patiently instead of exhausting.
        self.reliable.poll(net, now)?;
        match &mut self.pending {
            NetPending::RemoteRead(req) => self.reliable.poll_request(net, req, now)?,
            NetPending::Scanf(req) => self.reliable.poll_request_patient(net, req, now)?,
            _ => {}
        }

        // Release a blocked core once the matching notify shows up. An
        // internal wait (stalled ST at 0xFFFE) consumes the notify in its
        // own retry; an external wait consumes it here.
        match self.wait {
            WaitState::None => {}
            WaitState::Internal(expected) => {
                if self.notifies.get(&expected).copied().unwrap_or(0) == 0 {
                    return Ok(()); // still blocked
                }
                self.wait = WaitState::None;
            }
            WaitState::External(expected) => match self.notifies.get_mut(&expected) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    self.wait = WaitState::None;
                }
                _ => return Ok(()), // still blocked
            },
        }

        if !self.active || self.cpu.is_halted() || self.fault.is_some() || now < self.next_ready {
            return Ok(());
        }

        let mut bus = CtrlBus {
            local: &mut self.local,
            map: &self.map,
            table: &self.table,
            directory: &self.directory,
            io_router: self.io_router,
            pending: &mut self.pending,
            wait: &mut self.wait,
            notifies: &mut self.notifies,
            node: self.node,
            reliable: &mut self.reliable,
            now,
            error: None,
            net,
        };
        let outcome = self.cpu.step(&mut bus);
        if let Some(e) = bus.error.take() {
            return Err(e);
        }
        match outcome {
            Ok(StepOutcome::Retired { cycles, .. }) => {
                // Stall cycles were already spent in real time while the
                // bus answered Wait; only the base cost remains.
                let remaining = cycles.saturating_sub(self.stalled_cycles);
                self.next_ready = now + u64::from(remaining.max(1));
                self.stalled_cycles = 0;
            }
            Ok(StepOutcome::Stalled) => {
                self.stalled_cycles += 1;
                self.next_ready = now + 1;
            }
            Ok(StepOutcome::Halted) => {}
            Err(e) => {
                self.fault = Some(e.to_string());
            }
        }
        Ok(())
    }

    /// Snapshot codec: the complete per-processor state — core image,
    /// local memory, address map, control-logic and reliability state.
    /// The system-level context (node number, router, node table,
    /// directory, I/O router) is not written here; the system restores
    /// it from its own snapshot and passes it to
    /// [`snapshot_read`](Self::snapshot_read).
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        put_cpu_image(w, &self.cpu.image());
        self.local.snapshot_write(w);
        self.map.snapshot_write(w);
        w.put_bool(self.active);
        match &self.fault {
            None => w.put_u8(0),
            Some(msg) => {
                w.put_u8(1);
                w.put_str(msg);
            }
        }
        w.put_u64(self.next_ready);
        w.put_u32(self.stalled_cycles);
        match &self.pending {
            NetPending::Idle => w.put_u8(0),
            NetPending::RemoteRead(req) => {
                w.put_u8(1);
                req.snapshot_write(w);
            }
            NetPending::RemoteReadDone { value, from } => {
                w.put_u8(2);
                w.put_u16(*value);
                w.put_addr(*from);
            }
            NetPending::Scanf(req) => {
                w.put_u8(3);
                req.snapshot_write(w);
            }
            NetPending::ScanfDone(value) => {
                w.put_u8(4);
                w.put_u16(*value);
            }
        }
        match self.wait {
            WaitState::None => w.put_u8(0),
            WaitState::Internal(n) => {
                w.put_u8(1);
                w.put_u16(n);
            }
            WaitState::External(n) => {
                w.put_u8(2);
                w.put_u16(n);
            }
        }
        // HashMap iteration order is nondeterministic; write sorted so
        // identical states produce identical bytes.
        let mut notifies: Vec<(u16, u32)> = self.notifies.iter().map(|(&k, &v)| (k, v)).collect();
        notifies.sort_unstable();
        w.put_usize(notifies.len());
        for (from, count) in notifies {
            w.put_u16(from);
            w.put_u32(count);
        }
        w.put_u64(self.utilization.running);
        w.put_u64(self.utilization.blocked);
        w.put_u64(self.utilization.halted);
        w.put_u64(self.utilization.idle);
        self.reliable.snapshot_write(w);
        self.dedup.snapshot_write(w);
    }

    /// Decodes a processor written by
    /// [`snapshot_write`](Self::snapshot_write). The system-level view
    /// (`node`, `addr`, `table`, `directory`, `io_router`) comes from
    /// the enclosing system snapshot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        node: NodeId,
        addr: RouterAddr,
        table: NodeTable,
        directory: ServiceDirectory,
        io_router: Option<RouterAddr>,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let image = take_cpu_image(r)?;
        let cpu = Cpu::from_image(image)
            .map_err(|_| SnapshotError::Malformed("decoded instruction slot"))?;
        let local = MemoryCore::snapshot_read(r)?;
        let map = AddressMap::snapshot_read(r)?;
        let active = r.take_bool()?;
        let fault = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_str()?),
            _ => return Err(SnapshotError::Malformed("fault tag")),
        };
        let next_ready = r.take_u64()?;
        let stalled_cycles = r.take_u32()?;
        let pending = match r.take_u8()? {
            0 => NetPending::Idle,
            1 => NetPending::RemoteRead(PendingRequest::snapshot_read(r, width, height)?),
            2 => NetPending::RemoteReadDone {
                value: r.take_u16()?,
                from: r.take_addr_in(width, height)?,
            },
            3 => NetPending::Scanf(PendingRequest::snapshot_read(r, width, height)?),
            4 => NetPending::ScanfDone(r.take_u16()?),
            _ => return Err(SnapshotError::Malformed("processor pending tag")),
        };
        let wait = match r.take_u8()? {
            0 => WaitState::None,
            1 => WaitState::Internal(r.take_u16()?),
            2 => WaitState::External(r.take_u16()?),
            _ => return Err(SnapshotError::Malformed("wait state tag")),
        };
        let count = r.take_len(6)?;
        let mut notifies = HashMap::with_capacity(count);
        for _ in 0..count {
            let from = r.take_u16()?;
            let pending_notifies = r.take_u32()?;
            if notifies.insert(from, pending_notifies).is_some() {
                return Err(SnapshotError::Malformed("duplicate notify entry"));
            }
        }
        let utilization = UtilizationCounters {
            running: r.take_u64()?,
            blocked: r.take_u64()?,
            halted: r.take_u64()?,
            idle: r.take_u64()?,
        };
        let reliable = ReliableSender::snapshot_read(r, node, width, height)?;
        let dedup = DedupReceiver::snapshot_read(r, width, height)?;
        Ok(Self {
            node,
            addr,
            cpu,
            local,
            map,
            table,
            directory,
            io_router,
            active,
            fault,
            next_ready,
            stalled_cycles,
            pending,
            wait,
            notifies,
            utilization,
            reliable,
            dedup,
        })
    }
}

/// Writes an R8 core image: registers, control state and the in-flight
/// instruction of the two-phase stepping model.
fn put_cpu_image(w: &mut SnapshotWriter, image: &CpuImage) {
    for reg in image.regs {
        w.put_u16(reg);
    }
    w.put_u16(image.pc);
    w.put_u16(image.sp);
    w.put_bool(image.flags.n);
    w.put_bool(image.flags.z);
    w.put_bool(image.flags.c);
    w.put_bool(image.flags.v);
    w.put_u8(match image.state {
        CpuState::Running => 0,
        CpuState::Halted => 1,
    });
    w.put_u64(image.cycles);
    w.put_u64(image.retired);
    match image.pending {
        Pending::Fetch => w.put_u8(0),
        Pending::Read { addr } => {
            w.put_u8(1);
            w.put_u16(addr);
        }
        Pending::Write { addr, value } => {
            w.put_u8(2);
            w.put_u16(addr);
            w.put_u16(value);
        }
    }
    match image.decoded {
        None => w.put_u8(0),
        Some(word) => {
            w.put_u8(1);
            w.put_u16(word);
        }
    }
    w.put_u32(image.inflight_cycles);
}

/// Decodes an R8 core image written by [`put_cpu_image`].
fn take_cpu_image(r: &mut SnapshotReader<'_>) -> Result<CpuImage, SnapshotError> {
    let mut regs = [0u16; 16];
    for reg in &mut regs {
        *reg = r.take_u16()?;
    }
    let pc = r.take_u16()?;
    let sp = r.take_u16()?;
    let flags = Flags {
        n: r.take_bool()?,
        z: r.take_bool()?,
        c: r.take_bool()?,
        v: r.take_bool()?,
    };
    let state = match r.take_u8()? {
        0 => CpuState::Running,
        1 => CpuState::Halted,
        _ => return Err(SnapshotError::Malformed("cpu state tag")),
    };
    let cycles = r.take_u64()?;
    let retired = r.take_u64()?;
    let pending = match r.take_u8()? {
        0 => Pending::Fetch,
        1 => Pending::Read {
            addr: r.take_u16()?,
        },
        2 => Pending::Write {
            addr: r.take_u16()?,
            value: r.take_u16()?,
        },
        _ => return Err(SnapshotError::Malformed("cpu pending tag")),
    };
    let decoded = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_u16()?),
        _ => return Err(SnapshotError::Malformed("decoded slot tag")),
    };
    let inflight_cycles = r.take_u32()?;
    Ok(CpuImage {
        regs,
        pc,
        sp,
        flags,
        state,
        cycles,
        retired,
        pending,
        decoded,
        inflight_cycles,
    })
}

/// The bus the control logic presents to the R8 core: decodes the NUMA
/// address map and turns non-local accesses into service packets and
/// wait states.
#[derive(Debug)]
struct CtrlBus<'a, 'n> {
    local: &'a mut MemoryCore,
    map: &'a AddressMap,
    table: &'a NodeTable,
    directory: &'a ServiceDirectory,
    io_router: Option<RouterAddr>,
    pending: &'a mut NetPending,
    wait: &'a mut WaitState,
    notifies: &'a mut HashMap<u16, u32>,
    node: NodeId,
    reliable: &'a mut ReliableSender,
    now: u64,
    /// The `Bus` trait cannot return errors; a failed send is parked
    /// here and surfaced by `ProcessorIp::step` right after the core
    /// step, instead of panicking inside the bus.
    error: Option<SystemError>,
    net: &'a mut NetPort<'n>,
}

impl CtrlBus<'_, '_> {
    /// Best-effort send (printf): loss is acceptable, corruption is
    /// caught by the checksum at the receiver.
    fn send_unreliable(&mut self, dest: RouterAddr, service: Service) {
        if let Err(e) = self.net.send(dest, service) {
            self.error.get_or_insert(e);
        }
    }

    /// Acknowledged send (writes, notifies): queued with the reliable
    /// sender, retransmitted until acked.
    fn send_reliable(&mut self, dest: RouterAddr, service: Service) {
        if let Err(e) = self.reliable.send(self.net, dest, service, self.now) {
            self.error.get_or_insert(e);
        }
    }

    /// Transmits a request whose response is its implicit ack, returning
    /// the pending-request state to park in `NetPending`.
    fn start_request(&mut self, dest: RouterAddr, request: Service) -> PendingRequest {
        let seq = self.reliable.alloc_seq(dest);
        if let Err(e) = self.net.send_seq(dest, request.clone(), seq) {
            self.error.get_or_insert(e);
        }
        PendingRequest::new(dest, seq, request, self.now)
    }
}

impl Bus for CtrlBus<'_, '_> {
    fn read(&mut self, addr: u16) -> BusResponse {
        match self.map.decode(addr) {
            Target::Local { offset } => BusResponse::Data(self.local.read(offset)),
            Target::Remote { node, offset } => match *self.pending {
                NetPending::Idle => {
                    // The directory maps the logical node to whichever
                    // replica currently serves it (identity for
                    // unreplicated nodes).
                    let Some(dest) = self.table.router_of(self.directory.serving(node)) else {
                        return BusResponse::Data(0);
                    };
                    let req = self.start_request(
                        dest,
                        Service::ReadFromMemory {
                            addr: offset,
                            count: 1,
                        },
                    );
                    *self.pending = NetPending::RemoteRead(req);
                    BusResponse::Wait
                }
                NetPending::RemoteReadDone { value, .. } => {
                    *self.pending = NetPending::Idle;
                    BusResponse::Data(value)
                }
                _ => BusResponse::Wait,
            },
            Target::Io => match *self.pending {
                NetPending::Idle => {
                    let Some(dest) = self.io_router else {
                        // Headless system: scanf reads 0.
                        return BusResponse::Data(0);
                    };
                    let req = self.start_request(dest, Service::Scanf);
                    *self.pending = NetPending::Scanf(req);
                    BusResponse::Wait
                }
                NetPending::ScanfDone(value) => {
                    *self.pending = NetPending::Idle;
                    BusResponse::Data(value)
                }
                _ => BusResponse::Wait,
            },
            // Reads of the command addresses and holes are undefined in
            // the paper; the hardware bus would float. Return 0.
            Target::WaitCmd | Target::NotifyCmd | Target::Unmapped => BusResponse::Data(0),
        }
    }

    fn write(&mut self, addr: u16, value: u16) -> BusResponse {
        match self.map.decode(addr) {
            Target::Local { offset } => {
                self.local.write(offset, value);
                BusResponse::Data(0)
            }
            Target::Remote { node, offset } => {
                if let Some(dest) = self.table.router_of(self.directory.serving(node)) {
                    self.send_reliable(
                        dest,
                        Service::WriteInMemory {
                            addr: offset,
                            data: vec![value],
                        },
                    );
                }
                BusResponse::Data(0) // posted write (acked asynchronously)
            }
            Target::Io => {
                if let Some(dest) = self.io_router {
                    self.send_unreliable(dest, Service::Printf { data: vec![value] });
                }
                BusResponse::Data(0)
            }
            Target::WaitCmd => {
                // Block until a notify from node `value` is available.
                match self.notifies.get_mut(&value) {
                    Some(count) if *count > 0 => {
                        *count -= 1;
                        *self.wait = WaitState::None;
                        BusResponse::Data(0)
                    }
                    _ => {
                        *self.wait = WaitState::Internal(value);
                        BusResponse::Wait
                    }
                }
            }
            Target::NotifyCmd => {
                if let Some(dest) = self.table.router_of(NodeId(value as u8)) {
                    self.send_reliable(
                        dest,
                        Service::Notify {
                            from: self.node.as_u16(),
                        },
                    );
                }
                BusResponse::Data(0)
            }
            Target::Unmapped => BusResponse::Data(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use hermes_noc::{Noc, NocConfig};
    use r8::asm::assemble;

    fn table() -> NodeTable {
        NodeTable::new(vec![
            (RouterAddr::new(0, 0), NodeKind::Serial),
            (RouterAddr::new(0, 1), NodeKind::Processor),
            (RouterAddr::new(1, 0), NodeKind::Processor),
            (RouterAddr::new(1, 1), NodeKind::Memory),
        ])
    }

    fn processor(node: u8, addr: RouterAddr, windows: Vec<NodeId>) -> ProcessorIp {
        ProcessorIp::new(
            NodeId(node),
            addr,
            1024,
            AddressMap::paper(windows),
            table(),
            Some(RouterAddr::new(0, 0)),
        )
    }

    #[test]
    fn inactive_processor_does_not_execute() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        let program = assemble("LIW R1, 7\nHALT").unwrap();
        ip.local_mut().write_block(0, program.words());
        for now in 1..100 {
            noc.step();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
        }
        assert_eq!(ip.status(), ProcessorStatus::Inactive);
        assert_eq!(ip.cpu().reg(1), 0);
    }

    #[test]
    fn activation_starts_execution_from_zero() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        let program = assemble("LIW R1, 7\nHALT").unwrap();
        ip.local_mut().write_block(0, program.words());
        // Activation arrives over the network from the serial router.
        let msg = crate::service::Message::new(RouterAddr::new(0, 0), Service::ActivateProcessor);
        noc.send(
            RouterAddr::new(0, 0),
            msg.to_packet(RouterAddr::new(0, 1), 8),
        )
        .unwrap();
        for _ in 0..500 {
            noc.step();
            let now = noc.cycle();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
        }
        assert_eq!(ip.status(), ProcessorStatus::Halted);
        assert_eq!(ip.cpu().reg(1), 7);
    }

    #[test]
    fn cpi_pacing_spreads_instructions_over_cycles() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        // 10 ALU instructions at 2 cycles each, then HALT.
        let mut src = String::new();
        for _ in 0..10 {
            src.push_str("ADDI R1, 1\n");
        }
        src.push_str("HALT");
        ip.local_mut()
            .write_block(0, assemble(&src).unwrap().words());
        ip.active = true;
        let mut halted_at = 0;
        for _ in 0..200 {
            noc.step();
            let now = noc.cycle();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
            if ip.cpu().is_halted() {
                halted_at = now;
                break;
            }
        }
        assert_eq!(ip.cpu().reg(1), 10);
        // 11 instructions × 2 cycles ≈ 22 cycles; pacing must be visible.
        assert!(halted_at >= 20, "halted already at {halted_at}");
    }

    #[test]
    fn serves_remote_reads_of_its_local_memory() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        ip.local_mut().write(0x30, 4242);
        let requester = RouterAddr::new(1, 1);
        let msg = crate::service::Message::new(
            requester,
            Service::ReadFromMemory {
                addr: 0x30,
                count: 1,
            },
        );
        noc.send(requester, msg.to_packet(RouterAddr::new(0, 1), 8))
            .unwrap();
        for _ in 0..500 {
            noc.step();
            let now = noc.cycle();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
        }
        let (_, packet) = noc.try_recv(requester).expect("reply delivered");
        let reply = crate::service::Message::from_packet(&packet, 8).unwrap();
        assert_eq!(
            reply.service,
            Service::ReadReturn {
                addr: 0x30,
                data: vec![4242]
            }
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_mid_flight_state() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        // A remote read stalls the core mid-instruction: rich state to
        // round-trip (pending request, stall counter, CPU wait).
        let program = assemble("LIW R1, 1024\nLD R2, R1, R0\nHALT").unwrap();
        ip.local_mut().write_block(0, program.words());
        ip.active = true;
        ip.notifies.insert(3, 2);
        for _ in 0..20 {
            noc.step();
            let now = noc.cycle();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
        }
        assert_eq!(ip.status(), ProcessorStatus::Blocked);

        let mut w = SnapshotWriter::new();
        ip.snapshot_write(&mut w);
        let bytes = w.finish(hermes_noc::snapshot::KIND_SYSTEM);

        let mut r = SnapshotReader::open(&bytes, hermes_noc::snapshot::KIND_SYSTEM).unwrap();
        let restored = ProcessorIp::snapshot_read(
            &mut r,
            ip.node,
            ip.addr,
            ip.table.clone(),
            ip.directory.clone(),
            ip.io_router,
            2,
            2,
        )
        .unwrap();
        r.finish().unwrap();

        // Re-encoding the restored processor must reproduce the exact
        // bytes: every field survived.
        let mut w2 = SnapshotWriter::new();
        restored.snapshot_write(&mut w2);
        let again = w2.finish(hermes_noc::snapshot::KIND_SYSTEM);
        assert_eq!(bytes, again);
        assert_eq!(restored.status(), ProcessorStatus::Blocked);
        assert_eq!(restored.cpu().pc(), ip.cpu().pc());
    }

    #[test]
    fn fault_on_illegal_instruction_is_contained() {
        let mut noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
        let mut ip = processor(1, RouterAddr::new(0, 1), vec![NodeId(2), NodeId(3)]);
        ip.local_mut().write(0, 0x00B0); // invalid word
        ip.active = true;
        for _ in 0..50 {
            noc.step();
            let now = noc.cycle();
            let mut net = NetPort::new(&mut noc, RouterAddr::new(0, 1));
            ip.step(now, &mut net).unwrap();
        }
        assert_eq!(ip.status(), ProcessorStatus::Faulted);
        assert!(ip.fault().unwrap().contains("illegal instruction"));
    }
}

//! The host computer: a programmatic model of the paper's "Serial
//! software" (§4, Figs. 8–9).
//!
//! The host drives the MultiNoC system over the serial link: it
//! synchronizes (0x55), fills memories with object code and data,
//! activates processors, answers `scanf` requests and collects `printf`
//! output and memory read-backs. Every method pumps the system clock
//! while it waits, so a single call corresponds to one interaction of the
//! original GUI.

use std::collections::{BTreeMap, VecDeque};

use crate::error::SystemError;
use crate::node::NodeId;
use crate::serial::{DeviceFrame, FrameBuffer, HostCommand, SYNC_BYTE};
use crate::service::Message;
use crate::system::System;

/// The host-side endpoint of the serial protocol.
#[derive(Debug)]
pub struct Host {
    rx: FrameBuffer,
    printf_log: BTreeMap<u8, Vec<u16>>,
    scanf_requests: VecDeque<u8>,
    budget: u64,
    synced: bool,
}

impl Host {
    /// A host with the default per-operation cycle budget (1M cycles).
    pub fn new() -> Self {
        Self {
            rx: FrameBuffer::new(),
            printf_log: BTreeMap::new(),
            scanf_requests: VecDeque::new(),
            budget: 1_000_000,
            synced: false,
        }
    }

    /// Sets the cycle budget each blocking operation may consume.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Drains bytes arriving from the system into frames, filing printf
    /// output and scanf requests.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] on an unknown frame opcode.
    pub fn poll(&mut self, system: &mut System) -> Result<Vec<DeviceFrame>, SystemError> {
        while let Some(byte) = system.link_mut().host_recv() {
            self.rx.push(byte);
        }
        let mut frames = Vec::new();
        loop {
            match self.rx.parse_device_frame() {
                Ok(Some(frame)) => {
                    match &frame {
                        DeviceFrame::Printf { node, value } => {
                            self.printf_log.entry(*node).or_default().push(*value);
                        }
                        DeviceFrame::ScanfRequest { node } => {
                            self.scanf_requests.push_back(*node);
                        }
                        DeviceFrame::ReadReturn { .. } => {}
                    }
                    frames.push(frame);
                }
                Ok(None) => return Ok(frames),
                Err(e) => return Err(SystemError::Protocol(e.to_string())),
            }
        }
    }

    /// Steps the system until `done` holds, polling frames along the way.
    fn pump<F>(
        &mut self,
        system: &mut System,
        what: &'static str,
        mut done: F,
    ) -> Result<Vec<DeviceFrame>, SystemError>
    where
        F: FnMut(&System, &[DeviceFrame]) -> bool,
    {
        let start = system.cycle();
        let mut collected = Vec::new();
        loop {
            collected.extend(self.poll(system)?);
            if done(system, &collected) {
                return Ok(collected);
            }
            if system.cycle() - start >= self.budget {
                return Err(SystemError::BudgetExhausted {
                    budget: self.budget,
                    waiting_for: what,
                });
            }
            system.step()?;
        }
    }

    /// Sends the 0x55 synchronization byte and waits until the serial IP
    /// locks on ("Synchronize SW/HW" in Fig. 8).
    ///
    /// # Errors
    ///
    /// [`SystemError::BudgetExhausted`] if the byte never arrives.
    pub fn synchronize(&mut self, system: &mut System) -> Result<(), SystemError> {
        system.link_mut().host_send(&[SYNC_BYTE]);
        self.synced = true;
        self.pump(system, "serial synchronization", |sys, _| {
            sys.link().is_idle()
        })?;
        Ok(())
    }

    fn ensure_synced(&mut self, system: &mut System) -> Result<(), SystemError> {
        if !self.synced {
            self.synchronize(system)?;
        }
        Ok(())
    }

    /// Writes `data` into `node`'s memory starting at `addr`, chunking as
    /// needed, and waits until the system drains so the write has landed
    /// ("Send Generated Object Code" / "Fill Memory Contents" of Fig. 8).
    ///
    /// # Errors
    ///
    /// [`SystemError::AddressRange`] if the block does not fit a 16-bit
    /// address space; budget/protocol errors from pumping.
    pub fn write_memory(
        &mut self,
        system: &mut System,
        node: NodeId,
        addr: u16,
        data: &[u16],
    ) -> Result<(), SystemError> {
        self.ensure_synced(system)?;
        if usize::from(addr) + data.len() > usize::from(u16::MAX) + 1 {
            return Err(SystemError::AddressRange {
                addr,
                count: data.len(),
            });
        }
        let chunk_size = Message::max_data_words(system.noc().config().flit_bits).min(64);
        let mut offset = 0usize;
        while offset < data.len() {
            let chunk = &data[offset..(offset + chunk_size).min(data.len())];
            let cmd = HostCommand::WriteMemory {
                node: node.0,
                addr: addr + offset as u16,
                data: chunk.to_vec(),
            };
            system.link_mut().host_send(&cmd.to_bytes());
            offset += chunk.len();
        }
        // Drain: the writes have landed once the link and network are
        // empty AND the serial IP holds no unacknowledged writes — under
        // fault injection a quiet network may just mean a retransmission
        // timer is pending.
        self.pump(system, "memory write to drain", |sys, _| {
            sys.link().is_idle() && sys.noc().is_idle() && sys.net_quiet()
        })?;
        Ok(())
    }

    /// Loads a program image at address 0 of `node`'s local memory.
    ///
    /// # Errors
    ///
    /// As [`write_memory`](Self::write_memory).
    pub fn load_program(
        &mut self,
        system: &mut System,
        node: NodeId,
        words: &[u16],
    ) -> Result<(), SystemError> {
        self.write_memory(system, node, 0, words)
    }

    /// Reads `count` words starting at `addr` from `node`'s memory (the
    /// debug flow of Fig. 9, step 1).
    ///
    /// # Errors
    ///
    /// Budget/protocol errors; [`SystemError::AddressRange`] for
    /// impossible ranges.
    pub fn read_memory(
        &mut self,
        system: &mut System,
        node: NodeId,
        addr: u16,
        count: usize,
    ) -> Result<Vec<u16>, SystemError> {
        self.ensure_synced(system)?;
        if usize::from(addr) + count > usize::from(u16::MAX) + 1 {
            return Err(SystemError::AddressRange { addr, count });
        }
        let chunk_size = Message::max_data_words(system.noc().config().flit_bits).min(64);
        let mut result = Vec::with_capacity(count);
        let mut offset = 0usize;
        while offset < count {
            let chunk = (count - offset).min(chunk_size);
            let chunk_addr = addr + offset as u16;
            let cmd = HostCommand::ReadMemory {
                node: node.0,
                count: chunk as u8,
                addr: chunk_addr,
            };
            system.link_mut().host_send(&cmd.to_bytes());
            let frames = self.pump(system, "read return", |_, frames| {
                frames.iter().any(|f| {
                    matches!(f, DeviceFrame::ReadReturn { node: n, addr: a, .. }
                             if *n == node.0 && *a == chunk_addr)
                })
            })?;
            for frame in frames {
                if let DeviceFrame::ReadReturn {
                    node: n,
                    addr: a,
                    data,
                } = frame
                {
                    if n == node.0 && a == chunk_addr {
                        result.extend(data);
                    }
                }
            }
            offset += chunk;
        }
        Ok(result)
    }

    /// Activates `node`'s processor ("Activate Processors" of Fig. 8) and
    /// waits until it actually starts.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor; budget/
    /// protocol errors from pumping.
    pub fn activate(&mut self, system: &mut System, node: NodeId) -> Result<(), SystemError> {
        self.ensure_synced(system)?;
        system.processor_status(node)?; // kind check up front
        let cmd = HostCommand::Activate { node: node.0 };
        system.link_mut().host_send(&cmd.to_bytes());
        self.pump(system, "processor activation", |sys, _| {
            sys.processor_status(node)
                .map(|s| s != crate::processor::ProcessorStatus::Inactive)
                .unwrap_or(false)
        })?;
        Ok(())
    }

    /// Printf output collected so far from `node`.
    pub fn printf_output(&self, node: NodeId) -> &[u16] {
        self.printf_log
            .get(&node.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Takes (and clears) the printf output of `node`.
    pub fn take_printf(&mut self, node: NodeId) -> Vec<u16> {
        self.printf_log.remove(&node.0).unwrap_or_default()
    }

    /// Nodes with a pending scanf request, oldest first.
    pub fn pending_scanf(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.scanf_requests.iter().map(|&n| NodeId(n))
    }

    /// Answers the oldest pending scanf of `node` with `value` (the
    /// interaction monitors of Fig. 9, step 2).
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] if `node` has no pending scanf; budget
    /// errors from pumping.
    pub fn answer_scanf(
        &mut self,
        system: &mut System,
        node: NodeId,
        value: u16,
    ) -> Result<(), SystemError> {
        let pos = self
            .scanf_requests
            .iter()
            .position(|&n| n == node.0)
            .ok_or_else(|| SystemError::Protocol(format!("{node} has no pending scanf")))?;
        self.scanf_requests.remove(pos);
        let cmd = HostCommand::ScanfReturn {
            node: node.0,
            value,
        };
        system.link_mut().host_send(&cmd.to_bytes());
        self.pump(system, "scanf answer delivery", |sys, _| {
            sys.link().is_idle()
        })?;
        Ok(())
    }

    /// Runs the system until `node` has produced at least `count` printf
    /// words in total (as counted by [`printf_output`](Self::printf_output)).
    ///
    /// # Errors
    ///
    /// Budget/protocol errors from pumping.
    pub fn wait_for_printf(
        &mut self,
        system: &mut System,
        node: NodeId,
        count: usize,
    ) -> Result<(), SystemError> {
        if self.printf_output(node).len() >= count {
            return Ok(());
        }
        let start = system.cycle();
        loop {
            self.poll(system)?;
            if self.printf_output(node).len() >= count {
                return Ok(());
            }
            if system.cycle() - start >= self.budget {
                return Err(SystemError::BudgetExhausted {
                    budget: self.budget,
                    waiting_for: "printf output",
                });
            }
            system.step()?;
        }
    }

    /// Runs the system until a scanf request from any node arrives
    /// (useful for interactive applications like the edge detector).
    ///
    /// # Errors
    ///
    /// Budget/protocol errors from pumping.
    pub fn wait_for_scanf(&mut self, system: &mut System) -> Result<NodeId, SystemError> {
        if let Some(&n) = self.scanf_requests.front() {
            return Ok(NodeId(n));
        }
        self.pump(system, "a scanf request", |_, frames| {
            frames
                .iter()
                .any(|f| matches!(f, DeviceFrame::ScanfRequest { .. }))
        })?;
        let n = *self.scanf_requests.front().ok_or_else(|| {
            SystemError::Protocol("pump returned on a scanf frame but none was queued".into())
        })?;
        Ok(NodeId(n))
    }
}

impl Default for Host {
    fn default() -> Self {
        Self::new()
    }
}

//! `multinoc-run` — the console version of the paper's "Serial
//! software" (§4): load object code onto the MultiNoC processors,
//! activate them, and interact.
//!
//! ```text
//! multinoc-run <p1.obj> [<p2.obj>] [--budget <cycles>] [--read <node> <addr> <len>]
//! ```
//!
//! `printf` words appear on stdout as `P<n>: <value>`; a `scanf` request
//! reads one decimal word per line from stdin. After all processors
//! halt, each `--read` dumps memory exactly like the Fig. 9
//! `00 01 01 00 20` read command.

use std::io::BufRead;
use std::process::ExitCode;

use multinoc::host::Host;
use multinoc::{NodeId, System, PROCESSOR_1, PROCESSOR_2};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("multinoc-run: {message}");
            ExitCode::FAILURE
        }
    }
}

fn parse_u16(s: &str) -> Option<u16> {
    if let Some(hex) = s.strip_prefix("0x") {
        u16::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut images: Vec<String> = Vec::new();
    let mut budget = 50_000_000u64;
    let mut reads: Vec<(NodeId, u16, u16)> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget" => {
                budget = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--budget needs a number")?;
            }
            "--read" => {
                let node = iter.next().and_then(|s| s.parse::<u8>().ok());
                let addr = iter.next().and_then(|s| parse_u16(s));
                let len = iter.next().and_then(|s| parse_u16(s));
                match (node, addr, len) {
                    (Some(n), Some(a), Some(l)) => reads.push((NodeId(n), a, l)),
                    _ => return Err("--read needs <node> <addr> <len>".into()),
                }
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: multinoc-run <p1.obj> [<p2.obj>] [--budget <cycles>] [--read <node> <addr> <len>]"
                );
                return Ok(());
            }
            path => images.push(path.to_string()),
        }
    }
    if images.is_empty() || images.len() > 2 {
        return Err("expected one or two object files".into());
    }

    let mut system = System::paper_config().map_err(|e| e.to_string())?;
    let mut host = Host::new().with_budget(budget);
    host.synchronize(&mut system).map_err(|e| e.to_string())?;

    let nodes = [PROCESSOR_1, PROCESSOR_2];
    for (path, &node) in images.iter().zip(&nodes) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let words = r8::objfile::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
        host.load_program(&mut system, node, &words)
            .map_err(|e| e.to_string())?;
        eprintln!("loaded {} words into {node} from {path}", words.len());
    }
    for (_, &node) in images.iter().zip(&nodes) {
        host.activate(&mut system, node)
            .map_err(|e| e.to_string())?;
    }
    eprintln!("processors activated; running…");

    let mut printed = [0usize; 2];
    let start = system.cycle();
    loop {
        host.poll(&mut system).map_err(|e| e.to_string())?;
        for (i, &node) in nodes.iter().enumerate().take(images.len()) {
            let output = host.printf_output(node);
            for value in &output[printed[i]..] {
                println!("P{}: {value}", node.0);
            }
            printed[i] = output.len();
        }
        let pending = host.pending_scanf().next();
        if let Some(node) = pending {
            eprint!("{node} scanf> ");
            let mut line = String::new();
            std::io::stdin()
                .lock()
                .read_line(&mut line)
                .map_err(|e| e.to_string())?;
            let value = line.trim().parse::<u16>().unwrap_or(0);
            host.answer_scanf(&mut system, node, value)
                .map_err(|e| e.to_string())?;
        }
        if system.all_halted() && system.noc().is_idle() && system.link().is_idle() {
            break;
        }
        if system.is_idle() && !system.all_halted() {
            let report = multinoc::debug::analyze_deadlock(&system);
            eprintln!("system blocked without progress:\n{report}");
            return Err("blocked".into());
        }
        if system.cycle() - start >= budget {
            return Err(format!("budget of {budget} cycles exhausted"));
        }
        system.step().map_err(|e| e.to_string())?;
    }
    eprintln!(
        "all processors halted after {} cycles ({:.2} ms at 25 MHz)",
        system.cycle(),
        system.cycle() as f64 / system.clock_hz() * 1e3
    );
    for (node, addr, len) in reads {
        let data = host
            .read_memory(&mut system, node, addr, usize::from(len))
            .map_err(|e| e.to_string())?;
        print!("{node} [{addr:#06x}..]:");
        for value in data {
            print!(" {value:04X}");
        }
        println!();
    }
    Ok(())
}

//! System-level error type.

use std::error::Error;
use std::fmt;

use hermes_noc::{NocError, RouterAddr};

use crate::node::NodeId;

/// Any failure building or running a [`System`](crate::System) or
/// driving it from the [`Host`](crate::host::Host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Underlying network error.
    Noc(NocError),
    /// A node id that does not exist (or has the wrong kind for the
    /// operation).
    BadNode {
        /// The offending node.
        node: NodeId,
        /// What was expected of it.
        expected: &'static str,
    },
    /// The builder was given an invalid layout.
    BadLayout(String),
    /// A run method exhausted its cycle budget.
    BudgetExhausted {
        /// The exhausted budget in cycles.
        budget: u64,
        /// What the run was waiting for.
        waiting_for: &'static str,
    },
    /// A processor hit an execution error (illegal instruction).
    Cpu {
        /// The processor that failed.
        node: NodeId,
        /// Human-readable description.
        message: String,
    },
    /// Malformed traffic on the serial link or the NoC services.
    Protocol(String),
    /// An address or length that does not fit the target memory.
    AddressRange {
        /// Start address of the rejected access.
        addr: u16,
        /// Word count of the rejected access.
        count: usize,
    },
    /// A sequenced message exhausted its retransmission budget without
    /// ever being acknowledged (see [`crate::reliable`]).
    DeliveryFailed {
        /// The sending IP.
        node: NodeId,
        /// The unreachable destination router.
        dest: RouterAddr,
        /// Sequence number of the undeliverable message.
        seq: u16,
        /// Transmissions attempted, initial send included.
        attempts: u32,
    },
    /// The network's online fault diagnosis declared enough links dead to
    /// cut the destination router off entirely. Unlike
    /// [`DeliveryFailed`](SystemError::DeliveryFailed) this is definitive:
    /// no retransmission can ever succeed until the mesh is repaired.
    Unreachable {
        /// The sending IP.
        node: NodeId,
        /// The partitioned-off destination router.
        dest: RouterAddr,
    },
    /// The watchdog found every active processor blocked in `wait` with
    /// the network drained: nobody is left to send the missing notifies.
    Deadlock {
        /// `(waiter, waited-for)` node pairs, in node order.
        waiting: Vec<(NodeId, NodeId)>,
    },
    /// The watchdog found traffic wedged in the network with no forward
    /// progress — the signature of a permanently dead link.
    DeadLink {
        /// Cycles without a single flit moving, with flits in flight.
        stalled_for: u64,
    },
    /// The destination node's router was declared dead by the network's
    /// online diagnosis and no live replica serves in its place. Like
    /// [`Unreachable`](SystemError::Unreachable) this is definitive, but
    /// carries the *node-level* diagnosis: the IP core itself is gone,
    /// not just the paths to it.
    NodeDown {
        /// The dead node.
        node: NodeId,
        /// The router it was attached to.
        router: RouterAddr,
    },
    /// The injected fault plan failed validation (see
    /// [`hermes_noc::PlanError`]).
    FaultPlan(hermes_noc::PlanError),
    /// An automatic checkpoint could not be written (see
    /// [`System::enable_auto_checkpoint`](crate::System::enable_auto_checkpoint)).
    Snapshot(String),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Noc(e) => e.fmt(f),
            SystemError::BadNode { node, expected } => {
                write!(f, "{node} is not {expected}")
            }
            SystemError::BadLayout(msg) => write!(f, "invalid system layout: {msg}"),
            SystemError::BudgetExhausted {
                budget,
                waiting_for,
            } => write!(
                f,
                "budget of {budget} cycles exhausted waiting for {waiting_for}"
            ),
            SystemError::Cpu { node, message } => write!(f, "{node}: {message}"),
            SystemError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            SystemError::AddressRange { addr, count } => {
                write!(
                    f,
                    "access of {count} words at {addr:#06x} leaves the memory"
                )
            }
            SystemError::DeliveryFailed {
                node,
                dest,
                seq,
                attempts,
            } => write!(
                f,
                "{node}: message seq {seq} to router {dest} undelivered after {attempts} attempts"
            ),
            SystemError::Unreachable { node, dest } => write!(
                f,
                "{node}: router {dest} is unreachable — dead links partition the mesh"
            ),
            SystemError::Deadlock { waiting } => {
                write!(f, "deadlock: ")?;
                for (i, (waiter, target)) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{waiter} waits for {target}")?;
                }
                write!(f, "; network idle")
            }
            SystemError::DeadLink { stalled_for } => write!(
                f,
                "dead link: flits in flight made no progress for {stalled_for} cycles"
            ),
            SystemError::NodeDown { node, router } => {
                write!(f, "{node} at router {router} is dead with no live replica")
            }
            SystemError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            SystemError::Snapshot(msg) => write!(f, "checkpoint failed: {msg}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Noc(e) => Some(e),
            SystemError::FaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NocError> for SystemError {
    fn from(e: NocError) -> Self {
        SystemError::Noc(e)
    }
}

impl From<hermes_noc::PlanError> for SystemError {
    fn from(e: hermes_noc::PlanError) -> Self {
        SystemError::FaultPlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SystemError::BadNode {
            node: NodeId(9),
            expected: "a processor",
        };
        assert_eq!(e.to_string(), "node 9 is not a processor");
        assert!(e.source().is_none());
        let e: SystemError = NocError::NotIdle { budget: 5 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn node_down_and_plan_errors_display() {
        let e = SystemError::NodeDown {
            node: NodeId(3),
            router: hermes_noc::RouterAddr::new(1, 1),
        };
        assert_eq!(
            e.to_string(),
            "node 3 at router 11 is dead with no live replica"
        );
        assert!(e.source().is_none());
        let e: SystemError = hermes_noc::PlanError::BadRate {
            kind: "drop",
            rate: -1.0,
        }
        .into();
        assert!(e.to_string().starts_with("invalid fault plan"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SystemError>();
    }
}

//! System-level error type.

use std::error::Error;
use std::fmt;

use hermes_noc::NocError;

use crate::node::NodeId;

/// Any failure building or running a [`System`](crate::System) or
/// driving it from the [`Host`](crate::host::Host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// Underlying network error.
    Noc(NocError),
    /// A node id that does not exist (or has the wrong kind for the
    /// operation).
    BadNode {
        /// The offending node.
        node: NodeId,
        /// What was expected of it.
        expected: &'static str,
    },
    /// The builder was given an invalid layout.
    BadLayout(String),
    /// A run method exhausted its cycle budget.
    BudgetExhausted {
        /// The exhausted budget in cycles.
        budget: u64,
        /// What the run was waiting for.
        waiting_for: &'static str,
    },
    /// A processor hit an execution error (illegal instruction).
    Cpu {
        /// The processor that failed.
        node: NodeId,
        /// Human-readable description.
        message: String,
    },
    /// Malformed traffic on the serial link or the NoC services.
    Protocol(String),
    /// An address or length that does not fit the target memory.
    AddressRange {
        /// Start address of the rejected access.
        addr: u16,
        /// Word count of the rejected access.
        count: usize,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Noc(e) => e.fmt(f),
            SystemError::BadNode { node, expected } => {
                write!(f, "{node} is not {expected}")
            }
            SystemError::BadLayout(msg) => write!(f, "invalid system layout: {msg}"),
            SystemError::BudgetExhausted {
                budget,
                waiting_for,
            } => write!(f, "budget of {budget} cycles exhausted waiting for {waiting_for}"),
            SystemError::Cpu { node, message } => write!(f, "{node}: {message}"),
            SystemError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            SystemError::AddressRange { addr, count } => {
                write!(f, "access of {count} words at {addr:#06x} leaves the memory")
            }
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NocError> for SystemError {
    fn from(e: NocError) -> Self {
        SystemError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SystemError::BadNode {
            node: NodeId(9),
            expected: "a processor",
        };
        assert_eq!(e.to_string(), "node 9 is not a processor");
        assert!(e.source().is_none());
        let e: SystemError = NocError::NotIdle { budget: 5 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SystemError>();
    }
}

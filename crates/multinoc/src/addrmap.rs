//! The NUMA address map (Fig. 6 of the paper).
//!
//! Each processor sees its own 1K-word local memory at the bottom of the
//! address space, followed by one 1K window per remote target (in the
//! paper's 2×2 system: the other processor, then the remote memory IP).
//! Three memory-mapped command addresses sit at the top:
//! `0xFFFD` (notify), `0xFFFE` (wait) and `0xFFFF` (printf/scanf I/O).
//!
//! The paper's listing computes `globalAddress = 1024 - address` for the
//! second range; that is a typo for `address - 1024` (offsets must grow
//! with the address), which is what this implementation does.

use hermes_noc::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::node::NodeId;
use crate::{IO_ADDR, NOTIFY_ADDR, WAIT_ADDR};

/// Where a processor address lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Word `offset` of the processor's own local memory.
    Local {
        /// Word offset inside the local memory.
        offset: u16,
    },
    /// Word `offset` of the memory owned by `node` (another processor's
    /// local memory or a remote memory IP).
    Remote {
        /// The node owning the memory.
        node: NodeId,
        /// Word offset inside that memory.
        offset: u16,
    },
    /// The printf/scanf I/O port (`0xFFFF`).
    Io,
    /// The `wait` command address (`0xFFFE`).
    WaitCmd,
    /// The `notify` command address (`0xFFFD`).
    NotifyCmd,
    /// No device claims this address.
    Unmapped,
}

/// A processor's view of the system: the size of its local memory and
/// the ordered list of remote windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    window_words: u16,
    windows: Vec<NodeId>,
}

impl AddressMap {
    /// Builds a map with `window_words`-sized local memory and one
    /// equally sized window per entry of `windows` (in address order).
    ///
    /// # Panics
    ///
    /// Panics if `window_words` is 0 or the windows would overlap the
    /// command addresses at the top of the address space.
    pub fn new(window_words: u16, windows: Vec<NodeId>) -> Self {
        assert!(window_words > 0, "window size must be positive");
        let top = u32::from(window_words) * (windows.len() as u32 + 1);
        assert!(
            top <= u32::from(NOTIFY_ADDR),
            "windows overlap the command addresses"
        );
        Self {
            window_words,
            windows,
        }
    }

    /// The paper's map: 1K local, then the given targets (other
    /// processor, remote memory).
    pub fn paper(windows: Vec<NodeId>) -> Self {
        Self::new(crate::MEMORY_WORDS, windows)
    }

    /// Size of the local memory and of each window, in words.
    pub fn window_words(&self) -> u16 {
        self.window_words
    }

    /// The remote windows in address order.
    pub fn windows(&self) -> &[NodeId] {
        &self.windows
    }

    /// Classifies a processor address.
    pub fn decode(&self, addr: u16) -> Target {
        match addr {
            IO_ADDR => return Target::Io,
            WAIT_ADDR => return Target::WaitCmd,
            NOTIFY_ADDR => return Target::NotifyCmd,
            _ => {}
        }
        let window = usize::from(addr / self.window_words);
        let offset = addr % self.window_words;
        if window == 0 {
            Target::Local { offset }
        } else if let Some(&node) = self.windows.get(window - 1) {
            Target::Remote { node, offset }
        } else {
            Target::Unmapped
        }
    }

    /// The base address of the window onto `node`, if this map has one.
    /// Programs use this to form pointers into remote memories.
    pub fn window_base(&self, node: NodeId) -> Option<u16> {
        self.windows
            .iter()
            .position(|&n| n == node)
            .map(|i| (i as u16 + 1) * self.window_words)
    }

    /// Snapshot codec: window size plus the ordered window list.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_u16(self.window_words);
        w.put_usize(self.windows.len());
        for node in &self.windows {
            w.put_u8(node.0);
        }
    }

    /// Decodes a map written by
    /// [`snapshot_write`](Self::snapshot_write), re-checking the
    /// invariants [`new`](Self::new) asserts so corrupt input yields a
    /// typed error instead of a panic.
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let window_words = r.take_u16()?;
        let len = r.take_len(1)?;
        let mut windows = Vec::with_capacity(len);
        for _ in 0..len {
            windows.push(NodeId(r.take_u8()?));
        }
        if window_words == 0 {
            return Err(SnapshotError::Malformed("address window size is 0"));
        }
        let top = u64::from(window_words) * (windows.len() as u64 + 1);
        if top > u64::from(NOTIFY_ADDR) {
            return Err(SnapshotError::Malformed(
                "address windows overlap command addresses",
            ));
        }
        Ok(Self {
            window_words,
            windows,
        })
    }

    /// Appends a window onto `node` after the existing ones (dynamic
    /// reconfiguration: existing window bases stay stable). Returns the
    /// new window's base address, or `None` if another window would
    /// collide with the command addresses at the top of the address
    /// space.
    pub fn push_window(&mut self, node: NodeId) -> Option<u16> {
        let base = u32::from(self.window_words) * (self.windows.len() as u32 + 1);
        let top = base + u32::from(self.window_words);
        if top > u32::from(crate::NOTIFY_ADDR) {
            return None;
        }
        self.windows.push(node);
        Some(base as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_map() -> AddressMap {
        // As seen from P1: window 1 = P2 (node 2), window 2 = memory (node 3).
        AddressMap::paper(vec![NodeId(2), NodeId(3)])
    }

    #[test]
    fn paper_ranges() {
        let map = paper_map();
        assert_eq!(map.decode(0), Target::Local { offset: 0 });
        assert_eq!(map.decode(1023), Target::Local { offset: 1023 });
        assert_eq!(
            map.decode(1024),
            Target::Remote {
                node: NodeId(2),
                offset: 0
            }
        );
        assert_eq!(
            map.decode(2047),
            Target::Remote {
                node: NodeId(2),
                offset: 1023
            }
        );
        assert_eq!(
            map.decode(2048),
            Target::Remote {
                node: NodeId(3),
                offset: 0
            }
        );
        assert_eq!(
            map.decode(3071),
            Target::Remote {
                node: NodeId(3),
                offset: 1023
            }
        );
        assert_eq!(map.decode(3072), Target::Unmapped);
    }

    #[test]
    fn command_addresses() {
        let map = paper_map();
        assert_eq!(map.decode(0xFFFF), Target::Io);
        assert_eq!(map.decode(0xFFFE), Target::WaitCmd);
        assert_eq!(map.decode(0xFFFD), Target::NotifyCmd);
        assert_eq!(map.decode(0xFFFC), Target::Unmapped);
    }

    #[test]
    fn window_bases() {
        let map = paper_map();
        assert_eq!(map.window_base(NodeId(2)), Some(1024));
        assert_eq!(map.window_base(NodeId(3)), Some(2048));
        assert_eq!(map.window_base(NodeId(7)), None);
    }

    #[test]
    fn many_windows() {
        // An 8-processor system: 7 peers + 1 memory = 8 windows.
        let windows: Vec<NodeId> = (1..=8).map(NodeId).collect();
        let map = AddressMap::new(1024, windows);
        assert_eq!(
            map.decode(8 * 1024 + 5),
            Target::Remote {
                node: NodeId(8),
                offset: 5
            }
        );
        assert_eq!(map.decode(9 * 1024), Target::Unmapped);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn windows_cannot_reach_command_addresses() {
        AddressMap::new(1024, (0..63).map(NodeId).collect());
    }
}

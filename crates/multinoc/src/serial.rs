//! The RS-232 serial link and the host protocol frames (§2.2, §4).
//!
//! The physical UART is modelled as two independent byte channels with a
//! configurable per-byte transfer time (`cycles_per_byte` — at 25 MHz and
//! 115 200 baud a 10-bit character takes ~2170 clock cycles; tests
//! default to a fast link so they exercise the protocol, experiment E10
//! sweeps realistic rates).
//!
//! On top of the byte stream, the Serial software speaks a small framed
//! protocol. The paper shows its shape in the Fig. 9 walkthrough: the
//! user types `00 01 01 00 20`, "a read operation (00) from P1 processor
//! local memory (01), reading just one memory position (01) and starting
//! at address 0020H" — i.e. `[command, node, count, addr_hi, addr_lo]`.
//! Commands carrying data append two big-endian bytes per word.

use std::collections::VecDeque;
use std::fmt;

use hermes_noc::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Serial link timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialConfig {
    /// Clock cycles one byte occupies on the wire in each direction.
    pub cycles_per_byte: u64,
}

impl SerialConfig {
    /// Fast link for tests and functional runs (4 cycles per byte).
    pub fn fast() -> Self {
        Self { cycles_per_byte: 4 }
    }

    /// Timing of a real UART: `clock_hz` system clock, `baud` line rate,
    /// 10 bits per character (start + 8 data + stop).
    pub fn from_baud(clock_hz: f64, baud: f64) -> Self {
        Self {
            cycles_per_byte: (clock_hz / baud * 10.0).ceil() as u64,
        }
    }
}

impl Default for SerialConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// One direction of the link: bytes in flight become available
/// `cycles_per_byte` apart.
#[derive(Debug, Default)]
struct Channel {
    in_flight: VecDeque<u8>,
    ready: VecDeque<u8>,
    next_deliver: u64,
}

impl Channel {
    fn step(&mut self, now: u64, cycles_per_byte: u64) {
        if now >= self.next_deliver {
            if let Some(byte) = self.in_flight.pop_front() {
                self.ready.push_back(byte);
                self.next_deliver = now + cycles_per_byte;
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.ready.is_empty()
    }

    fn snapshot_write(&self, w: &mut SnapshotWriter) {
        for queue in [&self.in_flight, &self.ready] {
            let bytes: Vec<u8> = queue.iter().copied().collect();
            w.put_bytes(&bytes);
        }
        w.put_u64(self.next_deliver);
    }

    fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let in_flight = VecDeque::from(r.take_bytes()?);
        let ready = VecDeque::from(r.take_bytes()?);
        let next_deliver = r.take_u64()?;
        Ok(Self {
            in_flight,
            ready,
            next_deliver,
        })
    }
}

/// The bidirectional RS-232 link between host computer and MultiNoC
/// (`tx`/`rx` of Fig. 1).
#[derive(Debug, Default)]
pub struct SerialLink {
    config: SerialConfig,
    to_device: Channel,
    to_host: Channel,
}

impl SerialLink {
    /// A link with the given timing.
    pub fn new(config: SerialConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The link timing.
    pub fn config(&self) -> SerialConfig {
        self.config
    }

    /// Advances the per-byte timers by one clock cycle.
    pub fn step(&mut self, now: u64) {
        self.to_device.step(now, self.config.cycles_per_byte);
        self.to_host.step(now, self.config.cycles_per_byte);
    }

    /// Host transmits bytes towards the device.
    pub fn host_send(&mut self, bytes: &[u8]) {
        self.to_device.in_flight.extend(bytes.iter().copied());
    }

    /// Host collects one received byte, if any has arrived.
    pub fn host_recv(&mut self) -> Option<u8> {
        self.to_host.ready.pop_front()
    }

    /// Device transmits bytes towards the host.
    pub fn device_send(&mut self, bytes: &[u8]) {
        self.to_host.in_flight.extend(bytes.iter().copied());
    }

    /// Device collects one received byte, if any has arrived.
    pub fn device_recv(&mut self) -> Option<u8> {
        self.to_device.ready.pop_front()
    }

    /// Whether no byte is queued or in flight in either direction.
    pub fn is_idle(&self) -> bool {
        self.to_device.is_idle() && self.to_host.is_idle()
    }

    /// Snapshot codec: link timing plus both directions' byte queues and
    /// delivery timers.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.config.cycles_per_byte);
        self.to_device.snapshot_write(w);
        self.to_host.snapshot_write(w);
    }

    /// Decodes a link written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let config = SerialConfig {
            cycles_per_byte: r.take_u64()?,
        };
        let to_device = Channel::snapshot_read(r)?;
        let to_host = Channel::snapshot_read(r)?;
        Ok(Self {
            config,
            to_device,
            to_host,
        })
    }

    /// The earliest cycle at which this link does clocked work: `now`
    /// when received bytes already await the serial IP, otherwise the
    /// soonest baud tick that moves a byte in flight. `None` when the
    /// link needs no simulation cycles — bytes already delivered to the
    /// host side wait on the host program, not on the clock. Drives the
    /// system's idle fast-forward.
    pub(crate) fn next_deadline(&self, now: u64) -> Option<u64> {
        let mut deadline = None;
        let mut note = |c: u64| deadline = Some(deadline.map_or(c, |cur: u64| cur.min(c)));
        if !self.to_device.ready.is_empty() {
            note(now); // the serial IP drains these on its next step
        }
        if !self.to_device.in_flight.is_empty() {
            note(self.to_device.next_deliver);
        }
        if !self.to_host.in_flight.is_empty() {
            note(self.to_host.next_deliver);
        }
        deadline
    }
}

/// The synchronization byte the host sends first so the prototype can
/// lock to its baud rate (§4: "transmitting the value 55H").
pub const SYNC_BYTE: u8 = 0x55;

/// Commands the host sends to the MultiNoC system. The serial IP accepts
/// exactly these four (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCommand {
    /// Read `count` words starting at `addr` from `node`'s memory.
    ReadMemory {
        /// Target node number.
        node: u8,
        /// Number of words (1–255).
        count: u8,
        /// First word address.
        addr: u16,
    },
    /// Write `data` starting at `addr` into `node`'s memory.
    WriteMemory {
        /// Target node number.
        node: u8,
        /// First word address.
        addr: u16,
        /// Words to write (at most 255).
        data: Vec<u16>,
    },
    /// Activate `node`'s processor.
    Activate {
        /// Target node number.
        node: u8,
    },
    /// Answer a pending scanf of `node` with `value`.
    ScanfReturn {
        /// Target node number.
        node: u8,
        /// The input word.
        value: u16,
    },
}

/// Command opcodes on the wire.
mod opcode {
    pub const READ: u8 = 0x00;
    pub const WRITE: u8 = 0x01;
    pub const ACTIVATE: u8 = 0x02;
    pub const SCANF_RETURN: u8 = 0x03;
    pub const PRINTF: u8 = 0x05;
    pub const SCANF_REQUEST: u8 = 0x06;
    pub const READ_RETURN: u8 = 0x07;
}

impl HostCommand {
    /// Serializes the command into its byte frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            HostCommand::ReadMemory { node, count, addr } => {
                vec![
                    opcode::READ,
                    *node,
                    *count,
                    (addr >> 8) as u8,
                    (addr & 0xFF) as u8,
                ]
            }
            HostCommand::WriteMemory { node, addr, data } => {
                let mut bytes = vec![
                    opcode::WRITE,
                    *node,
                    data.len() as u8,
                    (addr >> 8) as u8,
                    (addr & 0xFF) as u8,
                ];
                for &word in data {
                    bytes.push((word >> 8) as u8);
                    bytes.push((word & 0xFF) as u8);
                }
                bytes
            }
            HostCommand::Activate { node } => vec![opcode::ACTIVATE, *node],
            HostCommand::ScanfReturn { node, value } => vec![
                opcode::SCANF_RETURN,
                *node,
                (value >> 8) as u8,
                (value & 0xFF) as u8,
            ],
        }
    }
}

/// Frames the MultiNoC system sends to the host: printf output, scanf
/// requests and read returns (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceFrame {
    /// One printf word from a processor.
    Printf {
        /// Originating node number.
        node: u8,
        /// The printed word.
        value: u16,
    },
    /// A processor is blocked in scanf, waiting for input.
    ScanfRequest {
        /// Requesting node number.
        node: u8,
    },
    /// Data answering a host read command.
    ReadReturn {
        /// Node the data came from.
        node: u8,
        /// First word address.
        addr: u16,
        /// The words read.
        data: Vec<u16>,
    },
}

impl DeviceFrame {
    /// Serializes the frame into bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            DeviceFrame::Printf { node, value } => vec![
                opcode::PRINTF,
                *node,
                (value >> 8) as u8,
                (value & 0xFF) as u8,
            ],
            DeviceFrame::ScanfRequest { node } => vec![opcode::SCANF_REQUEST, *node],
            DeviceFrame::ReadReturn { node, addr, data } => {
                let mut bytes = vec![
                    opcode::READ_RETURN,
                    *node,
                    data.len() as u8,
                    (addr >> 8) as u8,
                    (addr & 0xFF) as u8,
                ];
                for &word in data {
                    bytes.push((word >> 8) as u8);
                    bytes.push((word & 0xFF) as u8);
                }
                bytes
            }
        }
    }
}

/// Incremental frame parser: feed bytes, collect complete frames.
/// Used on both ends (the serial IP parses [`HostCommand`]s, the host
/// parses [`DeviceFrame`]s) through the two `parse_*` functions.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    bytes: Vec<u8>,
}

/// Malformed byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// The opcode byte that was not recognized.
    pub opcode: u8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown frame opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for FrameError {}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one received byte.
    pub fn push(&mut self, byte: u8) {
        self.bytes.push(byte);
    }

    /// Bytes currently buffered (a partial frame).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn word(&self, at: usize) -> u16 {
        (u16::from(self.bytes[at]) << 8) | u16::from(self.bytes[at + 1])
    }

    fn words(&self, at: usize, count: usize) -> Vec<u16> {
        (0..count).map(|i| self.word(at + 2 * i)).collect()
    }

    fn consume(&mut self, len: usize) {
        self.bytes.drain(..len);
    }

    /// Snapshot codec: the buffered partial-frame bytes.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_bytes(&self.bytes);
    }

    /// Decodes a buffer written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            bytes: r.take_bytes()?,
        })
    }

    /// Tries to parse one complete [`HostCommand`] from the buffered
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError`] if the first byte is not a host command opcode
    /// (the buffer is left untouched; the caller decides how to resync).
    pub fn parse_host_command(&mut self) -> Result<Option<HostCommand>, FrameError> {
        let Some(&op) = self.bytes.first() else {
            return Ok(None);
        };
        let need = match op {
            opcode::READ => 5,
            opcode::WRITE => {
                if self.bytes.len() < 3 {
                    return Ok(None);
                }
                5 + 2 * usize::from(self.bytes[2])
            }
            opcode::ACTIVATE => 2,
            opcode::SCANF_RETURN => 4,
            other => return Err(FrameError { opcode: other }),
        };
        if self.bytes.len() < need {
            return Ok(None);
        }
        let cmd = match op {
            opcode::READ => HostCommand::ReadMemory {
                node: self.bytes[1],
                count: self.bytes[2],
                addr: self.word(3),
            },
            opcode::WRITE => HostCommand::WriteMemory {
                node: self.bytes[1],
                addr: self.word(3),
                data: self.words(5, usize::from(self.bytes[2])),
            },
            opcode::ACTIVATE => HostCommand::Activate {
                node: self.bytes[1],
            },
            opcode::SCANF_RETURN => HostCommand::ScanfReturn {
                node: self.bytes[1],
                value: self.word(2),
            },
            _ => unreachable!(),
        };
        self.consume(need);
        Ok(Some(cmd))
    }

    /// Tries to parse one complete [`DeviceFrame`] from the buffered
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError`] if the first byte is not a device frame opcode.
    pub fn parse_device_frame(&mut self) -> Result<Option<DeviceFrame>, FrameError> {
        let Some(&op) = self.bytes.first() else {
            return Ok(None);
        };
        let need = match op {
            opcode::PRINTF => 4,
            opcode::SCANF_REQUEST => 2,
            opcode::READ_RETURN => {
                if self.bytes.len() < 3 {
                    return Ok(None);
                }
                5 + 2 * usize::from(self.bytes[2])
            }
            other => return Err(FrameError { opcode: other }),
        };
        if self.bytes.len() < need {
            return Ok(None);
        }
        let frame = match op {
            opcode::PRINTF => DeviceFrame::Printf {
                node: self.bytes[1],
                value: self.word(2),
            },
            opcode::SCANF_REQUEST => DeviceFrame::ScanfRequest {
                node: self.bytes[1],
            },
            opcode::READ_RETURN => DeviceFrame::ReadReturn {
                node: self.bytes[1],
                addr: self.word(3),
                data: self.words(5, usize::from(self.bytes[2])),
            },
            _ => unreachable!(),
        };
        self.consume(need);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_delivers_bytes_with_timing() {
        let mut link = SerialLink::new(SerialConfig {
            cycles_per_byte: 10,
        });
        link.host_send(&[1, 2, 3]);
        let mut arrivals = Vec::new();
        for now in 0..40 {
            link.step(now);
            if let Some(b) = link.device_recv() {
                arrivals.push((now, b));
            }
        }
        assert_eq!(arrivals, vec![(0, 1), (10, 2), (20, 3)]);
        assert!(link.is_idle());
    }

    #[test]
    fn both_directions_are_independent() {
        let mut link = SerialLink::new(SerialConfig { cycles_per_byte: 1 });
        link.host_send(&[0xAA]);
        link.device_send(&[0xBB]);
        link.step(0);
        assert_eq!(link.device_recv(), Some(0xAA));
        assert_eq!(link.host_recv(), Some(0xBB));
    }

    #[test]
    fn baud_timing() {
        // 25 MHz, 115200 baud: 25e6 / 115200 * 10 ≈ 2171 cycles per byte.
        let c = SerialConfig::from_baud(25.0e6, 115_200.0);
        assert_eq!(c.cycles_per_byte, 2171);
    }

    #[test]
    fn paper_read_command_byte_layout() {
        // "00 01 01 00 20": read (00) from P1 (01), one word (01), at 0020h.
        let cmd = HostCommand::ReadMemory {
            node: 1,
            count: 1,
            addr: 0x20,
        };
        assert_eq!(cmd.to_bytes(), vec![0x00, 0x01, 0x01, 0x00, 0x20]);
    }

    fn round_trip_host(cmd: HostCommand) {
        let mut buf = FrameBuffer::new();
        for b in cmd.to_bytes() {
            buf.push(b);
        }
        assert_eq!(buf.parse_host_command().unwrap(), Some(cmd));
        assert!(buf.is_empty());
    }

    #[test]
    fn host_commands_round_trip() {
        round_trip_host(HostCommand::ReadMemory {
            node: 3,
            count: 9,
            addr: 0x1234,
        });
        round_trip_host(HostCommand::WriteMemory {
            node: 1,
            addr: 0x0040,
            data: vec![0xDEAD, 0xBEEF],
        });
        round_trip_host(HostCommand::Activate { node: 2 });
        round_trip_host(HostCommand::ScanfReturn {
            node: 1,
            value: 777,
        });
    }

    fn round_trip_device(frame: DeviceFrame) {
        let mut buf = FrameBuffer::new();
        for b in frame.to_bytes() {
            buf.push(b);
        }
        assert_eq!(buf.parse_device_frame().unwrap(), Some(frame));
        assert!(buf.is_empty());
    }

    #[test]
    fn device_frames_round_trip() {
        round_trip_device(DeviceFrame::Printf {
            node: 1,
            value: 0xCAFE,
        });
        round_trip_device(DeviceFrame::ScanfRequest { node: 2 });
        round_trip_device(DeviceFrame::ReadReturn {
            node: 3,
            addr: 0x20,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = FrameBuffer::new();
        let bytes = HostCommand::WriteMemory {
            node: 1,
            addr: 0,
            data: vec![7; 4],
        }
        .to_bytes();
        for &b in &bytes[..bytes.len() - 1] {
            buf.push(b);
            assert_eq!(buf.parse_host_command().unwrap(), None);
        }
        buf.push(*bytes.last().unwrap());
        assert!(buf.parse_host_command().unwrap().is_some());
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        let mut buf = FrameBuffer::new();
        buf.push(0x99);
        assert_eq!(buf.parse_host_command(), Err(FrameError { opcode: 0x99 }));
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut buf = FrameBuffer::new();
        for b in (HostCommand::Activate { node: 1 }).to_bytes() {
            buf.push(b);
        }
        for b in (HostCommand::Activate { node: 2 }).to_bytes() {
            buf.push(b);
        }
        assert_eq!(
            buf.parse_host_command().unwrap(),
            Some(HostCommand::Activate { node: 1 })
        );
        assert_eq!(
            buf.parse_host_command().unwrap(),
            Some(HostCommand::Activate { node: 2 })
        );
    }
}

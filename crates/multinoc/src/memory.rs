//! The Memory IP core (§2.3 of the paper).
//!
//! A 1K × 16-bit storage built from **four BlockRAM banks of 1024 × 4-bit
//! words** accessed in parallel — bank 3 holds bits 15:12 down to bank 0
//! holding bits 3:0, exactly the organization of Fig. 4. The banked
//! structure is modelled faithfully (it matters for the FPGA area model
//! and it keeps the read/write datapath honest), and the IP carries the
//! paper's two interfaces: the processor port (which has priority) and
//! the NoC port, with the `busyNoC*` mutual-exclusion flags.

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::error::SystemError;
use crate::net::NetPort;
use crate::node::NodeId;
use crate::reliable::{DedupReceiver, ReliableSender, RetryCounters};
use crate::service::{Message, Service};

/// One 1024 × 4-bit BlockRAM bank.
#[derive(Debug, Clone)]
struct Bank {
    nibbles: Vec<u8>,
}

impl Bank {
    fn new(words: usize) -> Self {
        Self {
            nibbles: vec![0; words],
        }
    }
}

/// The banked storage core shared by the remote Memory IP and each
/// processor's local memory.
#[derive(Debug, Clone)]
pub struct MemoryCore {
    banks: [Bank; 4],
    words: u16,
}

impl MemoryCore {
    /// A memory of `words` 16-bit words (the paper uses 1024).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: u16) -> Self {
        assert!(words > 0, "memory must hold at least one word");
        Self {
            banks: std::array::from_fn(|_| Bank::new(usize::from(words))),
            words,
        }
    }

    /// Capacity in 16-bit words.
    pub fn words(&self) -> u16 {
        self.words
    }

    /// Reads the word at `addr` by assembling the four 4-bit bank
    /// outputs. Out-of-range addresses wrap (the hardware simply ignores
    /// the upper address bits).
    pub fn read(&self, addr: u16) -> u16 {
        let i = usize::from(addr % self.words);
        (0..4).fold(0u16, |acc, bank| {
            acc | (u16::from(self.banks[bank].nibbles[i]) << (4 * bank))
        })
    }

    /// Writes `value` at `addr`, splitting it over the four banks.
    pub fn write(&mut self, addr: u16, value: u16) {
        let i = usize::from(addr % self.words);
        for bank in 0..4 {
            self.banks[bank].nibbles[i] = ((value >> (4 * bank)) & 0xF) as u8;
        }
    }

    /// Reads `count` consecutive words starting at `addr` (wrapping).
    pub fn read_block(&self, addr: u16, count: u16) -> Vec<u16> {
        (0..count)
            .map(|i| self.read(addr.wrapping_add(i)))
            .collect()
    }

    /// Writes `data` consecutively starting at `addr` (wrapping).
    pub fn write_block(&mut self, addr: u16, data: &[u16]) {
        for (i, &value) in data.iter().enumerate() {
            self.write(addr.wrapping_add(i as u16), value);
        }
    }

    /// Snapshot codec: capacity followed by every word (the four-bank
    /// nibble split is recomputed on restore; a word round-trips the
    /// banks exactly).
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_u16(self.words);
        for addr in 0..self.words {
            w.put_u16(self.read(addr));
        }
    }

    /// Decodes a memory written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let words = r.take_u16()?;
        if words == 0 {
            return Err(SnapshotError::Malformed("memory capacity is 0"));
        }
        if usize::from(words) * 2 > r.remaining() {
            return Err(SnapshotError::Malformed("memory contents exceed payload"));
        }
        let mut core = Self::new(words);
        for addr in 0..words {
            core.write(addr, r.take_u16()?);
        }
        Ok(core)
    }
}

/// A client acknowledgement owed but withheld until the backup confirms
/// the replicated write — the invariant that makes failover lossless:
/// an acknowledged write is *always* recoverable from the survivor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingAck {
    client: RouterAddr,
    client_seq: u16,
    /// Sequence number of the `ReplicateWrite` carrying it to the backup.
    backup_seq: u16,
}

/// The standalone remote Memory IP: a [`MemoryCore`] plus the NoC-facing
/// control logic that answers read/write service messages. (In the
/// paper's words, the remote memory IP has no processor interface.)
///
/// A memory IP can additionally act as the *serving primary* of a
/// replica pair: every fresh write it applies is forwarded as a
/// [`Service::ReplicateWrite`] to the backup over the reliable layer,
/// carrying the originating client and its sequence number. The backup
/// registers the write under the *client's* identity, so if the primary
/// later dies and clients re-aim their unacknowledged writes at the
/// promoted backup, the retransmissions are recognized as duplicates —
/// exactly-once application survives the failover. The client's
/// acknowledgement is deferred until the backup has confirmed the
/// replica copy, so an acked write can never be lost while either
/// member survives.
#[derive(Debug)]
pub struct MemoryIp {
    core: MemoryCore,
    node: NodeId,
    addr: RouterAddr,
    dedup: DedupReceiver,
    /// Router of the write-through backup, when this IP is a serving
    /// primary.
    replica: Option<RouterAddr>,
    /// Retransmitting sender for the replication stream.
    reliable: ReliableSender,
    /// Client acks withheld until the backup confirms replication.
    pending_acks: Vec<PendingAck>,
    /// Fresh writes forwarded to the backup.
    replication_writes: u64,
}

impl MemoryIp {
    /// The memory IP of `node`, attached to router `addr`.
    pub fn new(node: NodeId, addr: RouterAddr, words: u16) -> Self {
        Self {
            core: MemoryCore::new(words),
            node,
            addr,
            dedup: DedupReceiver::new(),
            replica: None,
            reliable: ReliableSender::new(node),
            pending_acks: Vec::new(),
            replication_writes: 0,
        }
    }

    /// The router this IP is attached to.
    pub fn router(&self) -> RouterAddr {
        self.addr
    }

    /// Moves this IP to another router (dynamic reconfiguration).
    pub(crate) fn set_router(&mut self, addr: RouterAddr) {
        self.addr = addr;
    }

    /// Direct access to the storage (host-side inspection, tests).
    pub fn core(&self) -> &MemoryCore {
        &self.core
    }

    /// Mutable access to the storage.
    pub fn core_mut(&mut self) -> &mut MemoryCore {
        &mut self.core
    }

    /// Handles one incoming service message, returning the reply to send
    /// — `(destination, service, sequence number)` — or `None`.
    ///
    /// A read produces a `ReadReturn` echoing the request's sequence
    /// number (so the requester can match it as the implicit ack). A
    /// *sequenced* write is applied once — duplicates from retransmission
    /// are suppressed — and always acknowledged, since a duplicate means
    /// the previous ack was lost. Unsupported services are ignored, as a
    /// hardware memory controller would.
    pub fn handle(&mut self, msg: &Message) -> Option<(RouterAddr, Service, u16)> {
        match &msg.service {
            Service::ReadFromMemory { addr, count } => {
                let data = self.core.read_block(*addr, *count);
                Some((msg.src, Service::ReadReturn { addr: *addr, data }, msg.seq))
            }
            Service::WriteInMemory { addr, data } => {
                if self.dedup.accept(msg.src, msg.seq) {
                    self.core.write_block(*addr, data);
                }
                (msg.seq != 0).then_some((msg.src, Service::Ack, msg.seq))
            }
            _ => None,
        }
    }

    /// Duplicate writes suppressed by the reliability layer.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dedup.duplicates()
    }

    /// This memory's node number.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The router of this primary's write-through backup, if any.
    pub fn replica(&self) -> Option<RouterAddr> {
        self.replica
    }

    /// Makes this IP the serving primary of a pair, write-through
    /// replicating to the memory at `backup`.
    pub(crate) fn set_replica(&mut self, backup: Option<RouterAddr>) {
        self.replica = backup;
    }

    /// Fresh writes forwarded to the backup so far.
    pub fn replication_writes(&self) -> u64 {
        self.replication_writes
    }

    /// Replication-stream retry counters.
    pub fn replication_counters(&self) -> RetryCounters {
        self.reliable.counters()
    }

    /// One clock step: drains the NoC port, answering reads and applying
    /// writes exactly as [`handle`](Self::handle), and additionally runs
    /// the replication machinery — forwarding fresh writes to the
    /// backup, applying the replication stream when this IP *is* the
    /// backup, and retransmitting unacknowledged replication traffic.
    ///
    /// # Errors
    ///
    /// [`SystemError`] on malformed traffic or when the replication
    /// stream exhausts its retry budget against a silent backup.
    pub fn step(&mut self, now: u64, net: &mut NetPort<'_>) -> Result<(), SystemError> {
        while let Some(msg) = net.recv()? {
            match &msg.service {
                Service::ReadFromMemory { addr, count } => {
                    let data = self.core.read_block(*addr, *count);
                    net.send_seq(msg.src, Service::ReadReturn { addr: *addr, data }, msg.seq)?;
                }
                Service::WriteInMemory { addr, data } => {
                    let fresh = self.dedup.accept(msg.src, msg.seq);
                    if fresh {
                        self.core.write_block(*addr, data);
                        if let Some(backup) = self.replica {
                            let backup_seq = self.reliable.send(
                                net,
                                backup,
                                Service::ReplicateWrite {
                                    origin: msg.src,
                                    origin_seq: msg.seq,
                                    addr: *addr,
                                    data: data.clone(),
                                },
                                now,
                            )?;
                            self.replication_writes += 1;
                            if msg.seq != 0 {
                                // Ack once the backup holds the copy.
                                self.pending_acks.push(PendingAck {
                                    client: msg.src,
                                    client_seq: msg.seq,
                                    backup_seq,
                                });
                            }
                            continue;
                        }
                    }
                    // A duplicate whose first ack is still withheld must
                    // keep waiting for the backup, not be acked early.
                    let withheld = self
                        .pending_acks
                        .iter()
                        .any(|p| p.client == msg.src && p.client_seq == msg.seq);
                    if msg.seq != 0 && !withheld {
                        net.send_seq(msg.src, Service::Ack, msg.seq)?;
                    }
                }
                Service::ReplicateWrite {
                    origin,
                    origin_seq,
                    addr,
                    data,
                } => {
                    // Two layers of duplicate suppression: the replication
                    // stream itself (primary's stop-and-wait retransmits),
                    // then the originating client's sequence — registered
                    // here so the client's own post-failover retransmission
                    // of this write is refused as the duplicate it is.
                    if self.dedup.accept(msg.src, msg.seq)
                        && (*origin_seq == 0 || self.dedup.accept(*origin, *origin_seq))
                    {
                        self.core.write_block(*addr, data);
                    }
                    if msg.seq != 0 {
                        net.send_seq(msg.src, Service::Ack, msg.seq)?;
                    }
                }
                Service::Ack => {
                    self.reliable.on_ack(net, msg.src, msg.seq, now)?;
                    // The backup confirmed a replicated write: release the
                    // client ack that was withheld on it.
                    if self.replica == Some(msg.src) {
                        let mut released = Vec::new();
                        self.pending_acks.retain(|p| {
                            if p.backup_seq == msg.seq {
                                released.push(*p);
                                false
                            } else {
                                true
                            }
                        });
                        for p in released {
                            net.send_seq(p.client, Service::Ack, p.client_seq)?;
                        }
                    }
                }
                // Anything else a hardware memory controller ignores.
                _ => {}
            }
        }
        self.reliable.poll(net, now)?;
        Ok(())
    }

    /// Promotes this backup to serving primary after the old primary at
    /// `stale` was declared dead: stops treating the dead node as a
    /// replication peer and broadcasts [`Service::ReplicaInvalidate`] to
    /// every client so values still in flight from the dead primary are
    /// discarded. The broadcast is unsequenced and best-effort — a value
    /// the old primary committed before dying is correct, so a lost
    /// invalidation costs nothing.
    pub(crate) fn promote(
        &mut self,
        stale: RouterAddr,
        clients: &[RouterAddr],
        net: &mut NetPort<'_>,
    ) -> Result<(), SystemError> {
        self.replica = None;
        self.reliable.forget_dest(stale);
        self.pending_acks.clear();
        for &client in clients {
            match net.send(client, Service::ReplicaInvalidate { stale }) {
                // A client cut off by the same fault simply misses the
                // (optional) invalidation.
                Err(SystemError::Noc(hermes_noc::NocError::Route(
                    hermes_noc::RouteError::Unreachable { .. },
                ))) => {}
                other => other?,
            }
        }
        Ok(())
    }

    /// Degrades this serving primary to an unreplicated memory after its
    /// *backup* was declared dead: abandons the replication stream and
    /// releases every withheld client ack — the writes are applied here,
    /// and with the backup gone this copy is the only truth left.
    pub(crate) fn drop_replica(
        &mut self,
        dead_backup: RouterAddr,
        net: &mut NetPort<'_>,
    ) -> Result<(), SystemError> {
        self.replica = None;
        self.reliable.forget_dest(dead_backup);
        for p in std::mem::take(&mut self.pending_acks) {
            match net.send_seq(p.client, Service::Ack, p.client_seq) {
                Err(SystemError::Noc(hermes_noc::NocError::Route(
                    hermes_noc::RouteError::Unreachable { .. },
                ))) => {}
                other => other?,
            }
        }
        Ok(())
    }

    /// The earliest cycle at which [`step`](Self::step) has retransmission
    /// work to do; `None` when the replication stream is quiet. Drives
    /// the system's idle fast-forward.
    pub(crate) fn next_deadline(&self) -> Option<u64> {
        self.reliable.next_deadline()
    }

    /// Whether the replication stream is quiet: nothing in flight or
    /// queued towards the backup and no client ack withheld.
    pub fn net_quiet(&self) -> bool {
        self.reliable.is_idle() && self.pending_acks.is_empty()
    }

    /// Snapshot codec: storage, duplicate suppression, replication role
    /// and the withheld-ack ledger. Node id and router come from the
    /// system's node table and are not written.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        self.core.snapshot_write(w);
        self.dedup.snapshot_write(w);
        match self.replica {
            None => w.put_u8(0),
            Some(addr) => {
                w.put_u8(1);
                w.put_addr(addr);
            }
        }
        self.reliable.snapshot_write(w);
        w.put_usize(self.pending_acks.len());
        for p in &self.pending_acks {
            w.put_addr(p.client);
            w.put_u16(p.client_seq);
            w.put_u16(p.backup_seq);
        }
        w.put_u64(self.replication_writes);
    }

    /// Decodes a memory IP written by
    /// [`snapshot_write`](Self::snapshot_write) for the slot `node` on
    /// router `addr`.
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        node: NodeId,
        addr: RouterAddr,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let core = MemoryCore::snapshot_read(r)?;
        let dedup = DedupReceiver::snapshot_read(r, width, height)?;
        let replica = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_addr_in(width, height)?),
            _ => return Err(SnapshotError::Malformed("replica tag")),
        };
        let reliable = ReliableSender::snapshot_read(r, node, width, height)?;
        let acks = r.take_len(6)?;
        let mut pending_acks = Vec::with_capacity(acks);
        for _ in 0..acks {
            pending_acks.push(PendingAck {
                client: r.take_addr_in(width, height)?,
                client_seq: r.take_u16()?,
                backup_seq: r.take_u16()?,
            });
        }
        let replication_writes = r.take_u64()?;
        Ok(Self {
            core,
            node,
            addr,
            dedup,
            replica,
            reliable,
            pending_acks,
            replication_writes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banked_read_write_round_trip() {
        let mut m = MemoryCore::new(1024);
        for (addr, value) in [(0u16, 0x0000u16), (1, 0xFFFF), (2, 0xA5C3), (1023, 0x1234)] {
            m.write(addr, value);
            assert_eq!(m.read(addr), value);
        }
    }

    #[test]
    fn banks_hold_their_nibbles() {
        let mut m = MemoryCore::new(16);
        m.write(5, 0xABCD);
        assert_eq!(m.banks[3].nibbles[5], 0xA);
        assert_eq!(m.banks[2].nibbles[5], 0xB);
        assert_eq!(m.banks[1].nibbles[5], 0xC);
        assert_eq!(m.banks[0].nibbles[5], 0xD);
    }

    #[test]
    fn addresses_wrap_like_hardware() {
        let mut m = MemoryCore::new(1024);
        m.write(1024, 7); // wraps to 0
        assert_eq!(m.read(0), 7);
        assert_eq!(m.read(2048), 7);
    }

    #[test]
    fn block_operations() {
        let mut m = MemoryCore::new(64);
        m.write_block(60, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.read_block(60, 6), vec![1, 2, 3, 4, 5, 6]);
        // Wrapped across the top.
        assert_eq!(m.read(0), 5);
        assert_eq!(m.read(1), 6);
    }

    #[test]
    fn memory_ip_answers_reads() {
        let mut ip = MemoryIp::new(NodeId(3), RouterAddr::new(1, 1), 1024);
        ip.core_mut().write_block(0x10, &[10, 20, 30]);
        let requester = RouterAddr::new(0, 0);
        let msg = Message::new(
            requester,
            Service::ReadFromMemory {
                addr: 0x10,
                count: 3,
            },
        );
        let (to, reply, seq) = ip.handle(&msg).expect("read gets a reply");
        assert_eq!(to, requester);
        assert_eq!(seq, 0);
        assert_eq!(
            reply,
            Service::ReadReturn {
                addr: 0x10,
                data: vec![10, 20, 30]
            }
        );
    }

    #[test]
    fn memory_ip_applies_unsequenced_writes_silently() {
        let mut ip = MemoryIp::new(NodeId(3), RouterAddr::new(1, 1), 1024);
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::WriteInMemory {
                addr: 5,
                data: vec![42, 43],
            },
        );
        assert!(ip.handle(&msg).is_none());
        assert_eq!(ip.core().read(5), 42);
        assert_eq!(ip.core().read(6), 43);
    }

    #[test]
    fn memory_ip_acks_sequenced_writes_and_drops_duplicates() {
        let mut ip = MemoryIp::new(NodeId(3), RouterAddr::new(1, 1), 1024);
        let writer = RouterAddr::new(0, 0);
        let msg = Message::new(
            writer,
            Service::WriteInMemory {
                addr: 5,
                data: vec![42],
            },
        )
        .with_seq(7);
        let (to, reply, seq) = ip.handle(&msg).expect("sequenced write is acked");
        assert_eq!((to, reply, seq), (writer, Service::Ack, 7));
        assert_eq!(ip.core().read(5), 42);
        // The ack was lost; a retransmitted duplicate arrives after an
        // unrelated overwrite. It must be re-acked but NOT re-applied.
        ip.core_mut().write(5, 99);
        let (to, reply, seq) = ip.handle(&msg).expect("duplicate still acked");
        assert_eq!((to, reply, seq), (writer, Service::Ack, 7));
        assert_eq!(ip.core().read(5), 99, "duplicate write not re-applied");
        assert_eq!(ip.duplicates_dropped(), 1);
    }

    #[test]
    fn read_return_echoes_the_request_sequence() {
        let mut ip = MemoryIp::new(NodeId(3), RouterAddr::new(1, 1), 1024);
        let msg = Message::new(
            RouterAddr::new(0, 1),
            Service::ReadFromMemory { addr: 0, count: 1 },
        )
        .with_seq(33);
        let (_, _, seq) = ip.handle(&msg).expect("reply");
        assert_eq!(seq, 33);
    }

    #[test]
    fn memory_ip_ignores_other_services() {
        let mut ip = MemoryIp::new(NodeId(3), RouterAddr::new(1, 1), 1024);
        let msg = Message::new(RouterAddr::new(0, 0), Service::Scanf);
        assert!(ip.handle(&msg).is_none());
    }

    mod replication {
        use super::*;
        use hermes_noc::{Noc, NocConfig};

        const CLIENT: RouterAddr = RouterAddr::new(0, 0);
        const PRIMARY: RouterAddr = RouterAddr::new(1, 1);
        const BACKUP: RouterAddr = RouterAddr::new(1, 0);

        fn setup() -> (Noc, MemoryIp, MemoryIp) {
            let noc = Noc::new(NocConfig::mesh(2, 2)).unwrap();
            let mut primary = MemoryIp::new(NodeId(2), PRIMARY, 64);
            primary.set_replica(Some(BACKUP));
            let backup = MemoryIp::new(NodeId(3), BACKUP, 64);
            (noc, primary, backup)
        }

        fn inject(noc: &mut Noc, from: RouterAddr, to: RouterAddr, msg: Message) {
            noc.send(from, msg.to_packet(to, 8)).unwrap();
        }

        fn pump(noc: &mut Noc, primary: &mut MemoryIp, backup: Option<&mut MemoryIp>, n: u64) {
            let mut backup = backup;
            for _ in 0..n {
                noc.step();
                let now = noc.cycle();
                {
                    let mut net = NetPort::new(noc, PRIMARY);
                    primary.step(now, &mut net).unwrap();
                }
                if let Some(b) = backup.as_deref_mut() {
                    let mut net = NetPort::new(noc, BACKUP);
                    b.step(now, &mut net).unwrap();
                }
            }
        }

        fn client_frames(noc: &mut Noc) -> Vec<Message> {
            let mut out = Vec::new();
            while let Some((_, packet)) = noc.try_recv(CLIENT) {
                out.push(Message::from_packet(&packet, 8).unwrap());
            }
            out
        }

        #[test]
        fn write_is_acked_only_after_the_backup_confirms() {
            let (mut noc, mut primary, mut backup) = setup();
            let write = Message::new(
                CLIENT,
                Service::WriteInMemory {
                    addr: 5,
                    data: vec![42],
                },
            )
            .with_seq(9);
            inject(&mut noc, CLIENT, PRIMARY, write);
            // Backup unplugged: the primary applies the write and sends
            // the ReplicateWrite, but must withhold the client's ack.
            pump(&mut noc, &mut primary, None, 300);
            assert_eq!(primary.core().read(5), 42);
            assert_eq!(primary.replication_writes(), 1);
            assert!(
                client_frames(&mut noc).is_empty(),
                "no ack before the backup confirmed"
            );
            // Plug the backup in: it applies the replica write, acks,
            // and the withheld client ack is released.
            pump(&mut noc, &mut primary, Some(&mut backup), 200);
            assert_eq!(backup.core().read(5), 42);
            let frames = client_frames(&mut noc);
            assert!(
                frames
                    .iter()
                    .any(|m| m.service == Service::Ack && m.seq == 9),
                "client acked after replication: {frames:?}"
            );
            assert!(primary.net_quiet());
        }

        #[test]
        fn backup_death_releases_withheld_acks() {
            let (mut noc, mut primary, _backup) = setup();
            let write = Message::new(
                CLIENT,
                Service::WriteInMemory {
                    addr: 7,
                    data: vec![1],
                },
            )
            .with_seq(4);
            inject(&mut noc, CLIENT, PRIMARY, write);
            pump(&mut noc, &mut primary, None, 300);
            assert!(client_frames(&mut noc).is_empty());
            // The system declares the backup dead: replication stops and
            // every withheld ack is released (the primary alone is now
            // the source of truth).
            {
                let mut net = NetPort::new(&mut noc, PRIMARY);
                primary.drop_replica(BACKUP, &mut net).unwrap();
            }
            assert_eq!(primary.replica(), None);
            pump(&mut noc, &mut primary, None, 300);
            let frames = client_frames(&mut noc);
            assert!(frames
                .iter()
                .any(|m| m.service == Service::Ack && m.seq == 4));
            assert!(primary.net_quiet());
        }

        #[test]
        fn replicated_write_registers_the_origin_for_dedup() {
            // The client's write reached the old primary, was replicated,
            // and the primary died before acking. The client retransmits
            // to the promoted backup: the replica must recognize the
            // (origin, seq) pair and refuse to re-apply.
            let (mut noc, mut _primary, mut backup) = setup();
            let replicate = Message::new(
                PRIMARY,
                Service::ReplicateWrite {
                    origin: CLIENT,
                    origin_seq: 9,
                    addr: 3,
                    data: vec![55],
                },
            )
            .with_seq(1);
            inject(&mut noc, PRIMARY, BACKUP, replicate);
            for _ in 0..300 {
                noc.step();
                let now = noc.cycle();
                let mut net = NetPort::new(&mut noc, BACKUP);
                backup.step(now, &mut net).unwrap();
            }
            assert_eq!(backup.core().read(3), 55);
            // Overwrite to detect a re-apply.
            backup.core_mut().write(3, 99);
            let retransmission = Message::new(
                CLIENT,
                Service::WriteInMemory {
                    addr: 3,
                    data: vec![55],
                },
            )
            .with_seq(9);
            inject(&mut noc, CLIENT, BACKUP, retransmission);
            for _ in 0..300 {
                noc.step();
                let now = noc.cycle();
                let mut net = NetPort::new(&mut noc, BACKUP);
                backup.step(now, &mut net).unwrap();
            }
            assert_eq!(backup.core().read(3), 99, "retransmission not re-applied");
            let frames = client_frames(&mut noc);
            assert!(
                frames
                    .iter()
                    .any(|m| m.service == Service::Ack && m.seq == 9),
                "the duplicate is still acked so the client unblocks"
            );
        }

        #[test]
        fn promote_clears_replication_state_and_invalidates() {
            let (mut noc, mut primary, _backup) = setup();
            // Treat `primary` as the surviving backup being promoted; the
            // dead router is BACKUP for the purposes of this test.
            let clients = vec![CLIENT];
            {
                let mut net = NetPort::new(&mut noc, PRIMARY);
                primary.promote(BACKUP, &clients, &mut net).unwrap();
            }
            assert_eq!(primary.replica(), None);
            // The invalidation broadcast reached the client.
            for _ in 0..300 {
                noc.step();
            }
            let frames = client_frames(&mut noc);
            assert!(frames
                .iter()
                .any(|m| m.service == Service::ReplicaInvalidate { stale: BACKUP }));
        }
    }
}

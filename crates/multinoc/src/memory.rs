//! The Memory IP core (§2.3 of the paper).
//!
//! A 1K × 16-bit storage built from **four BlockRAM banks of 1024 × 4-bit
//! words** accessed in parallel — bank 3 holds bits 15:12 down to bank 0
//! holding bits 3:0, exactly the organization of Fig. 4. The banked
//! structure is modelled faithfully (it matters for the FPGA area model
//! and it keeps the read/write datapath honest), and the IP carries the
//! paper's two interfaces: the processor port (which has priority) and
//! the NoC port, with the `busyNoC*` mutual-exclusion flags.

use hermes_noc::RouterAddr;

use crate::reliable::DedupReceiver;
use crate::service::{Message, Service};

/// One 1024 × 4-bit BlockRAM bank.
#[derive(Debug, Clone)]
struct Bank {
    nibbles: Vec<u8>,
}

impl Bank {
    fn new(words: usize) -> Self {
        Self {
            nibbles: vec![0; words],
        }
    }
}

/// The banked storage core shared by the remote Memory IP and each
/// processor's local memory.
#[derive(Debug, Clone)]
pub struct MemoryCore {
    banks: [Bank; 4],
    words: u16,
}

impl MemoryCore {
    /// A memory of `words` 16-bit words (the paper uses 1024).
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: u16) -> Self {
        assert!(words > 0, "memory must hold at least one word");
        Self {
            banks: std::array::from_fn(|_| Bank::new(usize::from(words))),
            words,
        }
    }

    /// Capacity in 16-bit words.
    pub fn words(&self) -> u16 {
        self.words
    }

    /// Reads the word at `addr` by assembling the four 4-bit bank
    /// outputs. Out-of-range addresses wrap (the hardware simply ignores
    /// the upper address bits).
    pub fn read(&self, addr: u16) -> u16 {
        let i = usize::from(addr % self.words);
        (0..4).fold(0u16, |acc, bank| {
            acc | (u16::from(self.banks[bank].nibbles[i]) << (4 * bank))
        })
    }

    /// Writes `value` at `addr`, splitting it over the four banks.
    pub fn write(&mut self, addr: u16, value: u16) {
        let i = usize::from(addr % self.words);
        for bank in 0..4 {
            self.banks[bank].nibbles[i] = ((value >> (4 * bank)) & 0xF) as u8;
        }
    }

    /// Reads `count` consecutive words starting at `addr` (wrapping).
    pub fn read_block(&self, addr: u16, count: u16) -> Vec<u16> {
        (0..count)
            .map(|i| self.read(addr.wrapping_add(i)))
            .collect()
    }

    /// Writes `data` consecutively starting at `addr` (wrapping).
    pub fn write_block(&mut self, addr: u16, data: &[u16]) {
        for (i, &value) in data.iter().enumerate() {
            self.write(addr.wrapping_add(i as u16), value);
        }
    }
}

/// The standalone remote Memory IP: a [`MemoryCore`] plus the NoC-facing
/// control logic that answers read/write service messages. (In the
/// paper's words, the remote memory IP has no processor interface.)
#[derive(Debug)]
pub struct MemoryIp {
    core: MemoryCore,
    addr: RouterAddr,
    dedup: DedupReceiver,
}

impl MemoryIp {
    /// A memory IP attached to router `addr`.
    pub fn new(addr: RouterAddr, words: u16) -> Self {
        Self {
            core: MemoryCore::new(words),
            addr,
            dedup: DedupReceiver::new(),
        }
    }

    /// The router this IP is attached to.
    pub fn router(&self) -> RouterAddr {
        self.addr
    }

    /// Moves this IP to another router (dynamic reconfiguration).
    pub(crate) fn set_router(&mut self, addr: RouterAddr) {
        self.addr = addr;
    }

    /// Direct access to the storage (host-side inspection, tests).
    pub fn core(&self) -> &MemoryCore {
        &self.core
    }

    /// Mutable access to the storage.
    pub fn core_mut(&mut self) -> &mut MemoryCore {
        &mut self.core
    }

    /// Handles one incoming service message, returning the reply to send
    /// — `(destination, service, sequence number)` — or `None`.
    ///
    /// A read produces a `ReadReturn` echoing the request's sequence
    /// number (so the requester can match it as the implicit ack). A
    /// *sequenced* write is applied once — duplicates from retransmission
    /// are suppressed — and always acknowledged, since a duplicate means
    /// the previous ack was lost. Unsupported services are ignored, as a
    /// hardware memory controller would.
    pub fn handle(&mut self, msg: &Message) -> Option<(RouterAddr, Service, u16)> {
        match &msg.service {
            Service::ReadFromMemory { addr, count } => {
                let data = self.core.read_block(*addr, *count);
                Some((msg.src, Service::ReadReturn { addr: *addr, data }, msg.seq))
            }
            Service::WriteInMemory { addr, data } => {
                if self.dedup.accept(msg.src, msg.seq) {
                    self.core.write_block(*addr, data);
                }
                (msg.seq != 0).then_some((msg.src, Service::Ack, msg.seq))
            }
            _ => None,
        }
    }

    /// Duplicate writes suppressed by the reliability layer.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dedup.duplicates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banked_read_write_round_trip() {
        let mut m = MemoryCore::new(1024);
        for (addr, value) in [(0u16, 0x0000u16), (1, 0xFFFF), (2, 0xA5C3), (1023, 0x1234)] {
            m.write(addr, value);
            assert_eq!(m.read(addr), value);
        }
    }

    #[test]
    fn banks_hold_their_nibbles() {
        let mut m = MemoryCore::new(16);
        m.write(5, 0xABCD);
        assert_eq!(m.banks[3].nibbles[5], 0xA);
        assert_eq!(m.banks[2].nibbles[5], 0xB);
        assert_eq!(m.banks[1].nibbles[5], 0xC);
        assert_eq!(m.banks[0].nibbles[5], 0xD);
    }

    #[test]
    fn addresses_wrap_like_hardware() {
        let mut m = MemoryCore::new(1024);
        m.write(1024, 7); // wraps to 0
        assert_eq!(m.read(0), 7);
        assert_eq!(m.read(2048), 7);
    }

    #[test]
    fn block_operations() {
        let mut m = MemoryCore::new(64);
        m.write_block(60, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.read_block(60, 6), vec![1, 2, 3, 4, 5, 6]);
        // Wrapped across the top.
        assert_eq!(m.read(0), 5);
        assert_eq!(m.read(1), 6);
    }

    #[test]
    fn memory_ip_answers_reads() {
        let mut ip = MemoryIp::new(RouterAddr::new(1, 1), 1024);
        ip.core_mut().write_block(0x10, &[10, 20, 30]);
        let requester = RouterAddr::new(0, 0);
        let msg = Message::new(
            requester,
            Service::ReadFromMemory {
                addr: 0x10,
                count: 3,
            },
        );
        let (to, reply, seq) = ip.handle(&msg).expect("read gets a reply");
        assert_eq!(to, requester);
        assert_eq!(seq, 0);
        assert_eq!(
            reply,
            Service::ReadReturn {
                addr: 0x10,
                data: vec![10, 20, 30]
            }
        );
    }

    #[test]
    fn memory_ip_applies_unsequenced_writes_silently() {
        let mut ip = MemoryIp::new(RouterAddr::new(1, 1), 1024);
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::WriteInMemory {
                addr: 5,
                data: vec![42, 43],
            },
        );
        assert!(ip.handle(&msg).is_none());
        assert_eq!(ip.core().read(5), 42);
        assert_eq!(ip.core().read(6), 43);
    }

    #[test]
    fn memory_ip_acks_sequenced_writes_and_drops_duplicates() {
        let mut ip = MemoryIp::new(RouterAddr::new(1, 1), 1024);
        let writer = RouterAddr::new(0, 0);
        let msg = Message::new(
            writer,
            Service::WriteInMemory {
                addr: 5,
                data: vec![42],
            },
        )
        .with_seq(7);
        let (to, reply, seq) = ip.handle(&msg).expect("sequenced write is acked");
        assert_eq!((to, reply, seq), (writer, Service::Ack, 7));
        assert_eq!(ip.core().read(5), 42);
        // The ack was lost; a retransmitted duplicate arrives after an
        // unrelated overwrite. It must be re-acked but NOT re-applied.
        ip.core_mut().write(5, 99);
        let (to, reply, seq) = ip.handle(&msg).expect("duplicate still acked");
        assert_eq!((to, reply, seq), (writer, Service::Ack, 7));
        assert_eq!(ip.core().read(5), 99, "duplicate write not re-applied");
        assert_eq!(ip.duplicates_dropped(), 1);
    }

    #[test]
    fn read_return_echoes_the_request_sequence() {
        let mut ip = MemoryIp::new(RouterAddr::new(1, 1), 1024);
        let msg = Message::new(
            RouterAddr::new(0, 1),
            Service::ReadFromMemory { addr: 0, count: 1 },
        )
        .with_seq(33);
        let (_, _, seq) = ip.handle(&msg).expect("reply");
        assert_eq!(seq, 33);
    }

    #[test]
    fn memory_ip_ignores_other_services() {
        let mut ip = MemoryIp::new(RouterAddr::new(1, 1), 1024);
        let msg = Message::new(RouterAddr::new(0, 0), Service::Scanf);
        assert!(ip.handle(&msg).is_none());
    }
}

//! The integrated MultiNoC system: Hermes NoC + IP cores + serial link,
//! co-simulated cycle by cycle.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use hermes_noc::{
    snapshot, FaultPlan, KernelMode, Noc, NocConfig, NocStats, Port, RouterAddr, SnapshotError,
    SnapshotReader, SnapshotWriter,
};
use r8::core::Cpu;

use crate::addrmap::AddressMap;
use crate::directory::ServiceDirectory;
use crate::error::SystemError;
use crate::memory::{MemoryCore, MemoryIp};
use crate::net::NetPort;
use crate::node::{NodeId, NodeKind, NodeTable};
use crate::processor::{BlockReason, ProcessorIp, ProcessorStatus};
use crate::reliable::RetryCounters;
use crate::serial::{SerialConfig, SerialLink};
use crate::serial_ip::SerialIp;
use crate::span::SpanLog;
use crate::trace::{ServiceCounters, TraceLog};

/// Cycles without a single flit hop (with flits in flight) before the
/// watchdog declares a dead link. Comfortably above the worst-case
/// wormhole service time on the paper's mesh.
const WATCHDOG_WINDOW: u64 = 4096;

/// Progress monitor armed alongside fault injection. Healthy systems
/// either move flits or go quiet with nothing owed; the watchdog
/// recognises the two ways a faulty system can hang instead — every
/// active processor parked in `wait` with the network drained, or
/// traffic wedged in the mesh making no forward progress.
#[derive(Debug)]
struct Watchdog {
    /// Cycles of zero flit movement tolerated while flits are in flight.
    window: u64,
    /// `flit_hops` at the last observed movement.
    last_hops: u64,
    /// Cycle of the last observed movement.
    last_change: u64,
    /// Reconfiguration epoch at the last check; a bump is progress (the
    /// diagnosis just flushed a wedge and rerouted, not a hang).
    last_epoch: u64,
}

/// Opt-in automatic checkpointing: the full system snapshot is written
/// to one file every `every` cycles and when a fault-class event is
/// detected (a watchdog verdict, a node death). Each write goes to a
/// temporary file that is atomically renamed over the target, so a
/// crash mid-write never corrupts the last good checkpoint. Runtime
/// configuration — deliberately not part of the snapshot itself.
#[derive(Debug)]
struct AutoCheckpoint {
    /// The checkpoint file, overwritten in place on every write.
    path: PathBuf,
    /// Cycles between periodic checkpoints.
    every: u64,
    /// Cycle of the last checkpoint written.
    last: u64,
    /// Checkpoints written since the policy was enabled.
    written: u64,
}

/// One IP core instance. `Vacant` marks a node removed by dynamic
/// reconfiguration: its id is never reused and stray packets addressed
/// to it are dropped, as a de-configured FPGA region would.
#[derive(Debug)]
enum Ip {
    Processor(Box<ProcessorIp>),
    Memory(MemoryIp),
    Serial(SerialIp),
    Vacant,
}

/// One recorded service failover: the cycle the survivor took over and
/// who handed off to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// Cycle at which the survivor was promoted.
    pub cycle: u64,
    /// The logical node clients keep addressing.
    pub logical: NodeId,
    /// The member that died.
    pub from: NodeId,
    /// The member now serving.
    pub to: NodeId,
}

/// The whole MultiNoC system. Build one with [`System::paper_config`]
/// (the exact 2×2 system of the paper) or [`System::builder`] (arbitrary
/// meshes and IP mixes, "using the natural scalability of NoCs").
///
/// See the [crate-level example](crate) for the typical host-driven flow.
#[derive(Debug)]
pub struct System {
    noc: Noc,
    ips: Vec<Ip>,
    table: NodeTable,
    link: SerialLink,
    clock_hz: f64,
    counters: ServiceCounters,
    trace: Option<TraceLog>,
    /// Causal service-span log (request → packets → retransmissions →
    /// redirects → delivery); opt-in, like the trace log.
    spans: Option<SpanLog>,
    /// Routers whose IP was removed; stray deliveries there are dropped.
    vacated_routers: Vec<RouterAddr>,
    /// Armed by [`set_fault_plan`](Self::set_fault_plan) or
    /// [`enable_watchdog`](Self::enable_watchdog); off by default.
    watchdog: Option<Watchdog>,
    /// Which node currently serves each logical node (replica groups).
    directory: ServiceDirectory,
    /// Nodes whose router or IP core the diagnosis declared dead, in
    /// detection order.
    dead_nodes: Vec<NodeId>,
    /// Dead routers already reacted to (death handling runs once each).
    processed_dead: BTreeSet<RouterAddr>,
    /// Every completed failover, in promotion order.
    failover_log: Vec<FailoverRecord>,
    /// Armed by [`enable_auto_checkpoint`](Self::enable_auto_checkpoint);
    /// off by default and never serialized.
    auto_checkpoint: Option<AutoCheckpoint>,
}

impl System {
    /// The paper's configuration (Fig. 1): a 2×2 Hermes NoC with the
    /// serial IP at router 00, processors at 01 and 10, and the remote
    /// memory at 11.
    ///
    /// # Errors
    ///
    /// Never fails in practice; shares the builder's validation.
    pub fn paper_config() -> Result<Self, SystemError> {
        Self::builder()
            .noc(NocConfig::multinoc())
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
    }

    /// Starts building a custom system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The node directory.
    pub fn table(&self) -> &NodeTable {
        &self.table
    }

    /// The network, for statistics and configuration.
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Accumulated network statistics.
    pub fn noc_stats(&self) -> &NocStats {
        self.noc.stats()
    }

    /// The serial link, for inspection.
    pub fn link(&self) -> &SerialLink {
        &self.link
    }

    /// The serial link, as the host computer sees it.
    pub fn link_mut(&mut self) -> &mut SerialLink {
        &mut self.link
    }

    /// Simulated clock frequency (for converting cycles to wall time;
    /// the prototype ran at 25 MHz).
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.noc.cycle()
    }

    fn processor(&self, node: NodeId) -> Result<&ProcessorIp, SystemError> {
        match self.ips.get(node.index()) {
            Some(Ip::Processor(p)) => Ok(p),
            _ => Err(SystemError::BadNode {
                node,
                expected: "a processor",
            }),
        }
    }

    fn processor_mut(&mut self, node: NodeId) -> Result<&mut ProcessorIp, SystemError> {
        match self.ips.get_mut(node.index()) {
            Some(Ip::Processor(p)) => Ok(p),
            _ => Err(SystemError::BadNode {
                node,
                expected: "a processor",
            }),
        }
    }

    /// The R8 core of processor `node`, for inspection.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn cpu(&self, node: NodeId) -> Result<&Cpu, SystemError> {
        Ok(self.processor(node)?.cpu())
    }

    /// Status of processor `node`.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn processor_status(&self, node: NodeId) -> Result<ProcessorStatus, SystemError> {
        Ok(self.processor(node)?.status())
    }

    /// Where processor `node`'s cycles have gone.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn processor_utilization(
        &self,
        node: NodeId,
    ) -> Result<crate::processor::UtilizationCounters, SystemError> {
        Ok(self.processor(node)?.utilization())
    }

    /// Why processor `node` is blocked, if it is.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn block_reason(
        &self,
        node: NodeId,
    ) -> Result<Option<crate::processor::BlockReason>, SystemError> {
        Ok(self.processor(node)?.block_reason())
    }

    /// All processor nodes, in node order.
    pub fn processors(&self) -> Vec<NodeId> {
        self.table.nodes_of_kind(NodeKind::Processor).collect()
    }

    /// The address map of processor `node` (to compute window bases for
    /// programs that access remote memories).
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn address_map(&self, node: NodeId) -> Result<&AddressMap, SystemError> {
        Ok(self.processor(node)?.map())
    }

    /// Direct access to the memory contents of `node` — a processor's
    /// local memory or a memory IP. Intended for tests and experiment
    /// harnesses; the real system goes through the serial protocol.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` owns no memory.
    pub fn memory(&self, node: NodeId) -> Result<&MemoryCore, SystemError> {
        match self.ips.get(node.index()) {
            Some(Ip::Processor(p)) => Ok(p.local()),
            Some(Ip::Memory(m)) => Ok(m.core()),
            _ => Err(SystemError::BadNode {
                node,
                expected: "a node owning memory",
            }),
        }
    }

    /// Mutable access to the memory contents of `node`.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` owns no memory.
    pub fn memory_mut(&mut self, node: NodeId) -> Result<&mut MemoryCore, SystemError> {
        match self.ips.get_mut(node.index()) {
            Some(Ip::Processor(p)) => Ok(p.local_mut()),
            Some(Ip::Memory(m)) => Ok(m.core_mut()),
            _ => Err(SystemError::BadNode {
                node,
                expected: "a node owning memory",
            }),
        }
    }

    /// Directly activates processor `node`, bypassing the serial
    /// protocol (experiment harnesses; the host normally activates over
    /// the link).
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor.
    pub fn activate_directly(&mut self, node: NodeId) -> Result<(), SystemError> {
        let addr = self.table.router_of(node).ok_or(SystemError::BadNode {
            node,
            expected: "a node of this system",
        })?;
        if self.dead_nodes.contains(&node) {
            return Err(SystemError::NodeDown { node, router: addr });
        }
        self.processor_mut(node)?; // kind check
        let msg = crate::service::Message::new(addr, crate::service::Service::ActivateProcessor);
        let flit_bits = self.noc.config().flit_bits;
        self.noc.send(addr, msg.to_packet(addr, flit_bits))?;
        Ok(())
    }

    /// Per-node, per-service message counters (always on).
    pub fn service_counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Injects faults into the network according to `plan` and arms the
    /// [watchdog](Self::enable_watchdog): a faulty network can hang in
    /// ways a healthy one cannot, and hangs should become typed errors,
    /// not exhausted budgets.
    ///
    /// # Errors
    ///
    /// [`SystemError::FaultPlan`] if the plan fails validation (e.g. a
    /// fault site outside the mesh).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SystemError> {
        self.noc.set_fault_plan(plan)?;
        self.enable_watchdog();
        Ok(())
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.noc.fault_plan()
    }

    /// Arms the progress watchdog. The run methods then return
    /// [`SystemError::Deadlock`] when every active processor is parked
    /// in `wait` with the network drained and nothing owed, and
    /// [`SystemError::DeadLink`] when flits in flight make no forward
    /// progress for a whole window — instead of burning their budget.
    pub fn enable_watchdog(&mut self) {
        let (hops, cycle) = (self.noc.stats().flit_hops, self.noc.cycle());
        let epoch = self.noc.current_epoch();
        self.watchdog.get_or_insert(Watchdog {
            window: WATCHDOG_WINDOW,
            last_hops: hops,
            last_change: cycle,
            last_epoch: epoch,
        });
    }

    /// Whether every IP's reliability layer is quiet: no unacknowledged
    /// messages, queued retransmissions or outstanding requests. Dead
    /// nodes are exempt — whatever they owed died with them.
    pub fn net_quiet(&self) -> bool {
        self.ips.iter().enumerate().all(|(i, ip)| {
            if self.dead_nodes.contains(&NodeId(i as u8)) {
                return true;
            }
            match ip {
                Ip::Processor(p) => p.net_quiet(),
                Ip::Serial(s) => s.net_quiet(),
                Ip::Memory(m) => m.net_quiet(),
                Ip::Vacant => true,
            }
        })
    }

    /// Aggregate reliability-layer work across every IP (the memory IPs'
    /// replication streams included).
    pub fn retry_counters(&self) -> RetryCounters {
        let mut total = RetryCounters::default();
        for ip in &self.ips {
            let c = match ip {
                Ip::Processor(p) => p.retry_counters(),
                Ip::Serial(s) => s.retry_counters(),
                Ip::Memory(m) => m.replication_counters(),
                Ip::Vacant => continue,
            };
            total.sent += c.sent;
            total.retransmissions += c.retransmissions;
            total.acked += c.acked;
            total.reroute_resets += c.reroute_resets;
        }
        total
    }

    /// Whether the network's online diagnosis has declared any link dead
    /// and the system is running in degraded mode.
    pub fn degraded(&self) -> bool {
        self.noc.is_degraded()
    }

    /// The links the online diagnosis has declared dead, in address
    /// order (empty on a healthy mesh).
    pub fn dead_links(&self) -> Vec<(RouterAddr, Port)> {
        self.noc.dead_links()
    }

    /// Human-readable summary of degraded-mode state: dead links,
    /// reconfiguration epochs and reroute work. Empty when healthy.
    pub fn degradation_report(&self) -> String {
        if !self.noc.is_degraded() {
            return String::new();
        }
        let h = self.noc.stats().health;
        let links: Vec<String> = self
            .noc
            .dead_links()
            .iter()
            .map(|(addr, port)| format!("{addr}:{port:?}"))
            .collect();
        let mut report = format!(
            "degraded: dead links [{}], {} epochs, {} rerouted grants, \
             {} wedged packets flushed",
            links.join(", "),
            h.epochs,
            h.rerouted_grants,
            h.wedged_packets_dropped
        );
        let dead_routers = self.noc.dead_routers();
        if !dead_routers.is_empty() {
            let routers: Vec<String> = dead_routers.iter().map(ToString::to_string).collect();
            report.push_str(&format!(", dead routers [{}]", routers.join(", ")));
        }
        if !self.dead_nodes.is_empty() {
            let nodes: Vec<String> = self.dead_nodes.iter().map(ToString::to_string).collect();
            report.push_str(&format!(", dead nodes [{}]", nodes.join(", ")));
        }
        for f in &self.failover_log {
            report.push_str(&format!(
                ", {} failed over {} -> {} at cycle {}",
                f.logical, f.from, f.to, f.cycle
            ));
        }
        report
    }

    /// Nodes whose router or IP core the online diagnosis has declared
    /// dead, in detection order.
    pub fn dead_nodes(&self) -> &[NodeId] {
        &self.dead_nodes
    }

    /// The service directory: which node currently serves each logical
    /// node.
    pub fn directory(&self) -> &ServiceDirectory {
        &self.directory
    }

    /// Every completed service failover, in promotion order.
    pub fn failover_report(&self) -> &[FailoverRecord] {
        &self.failover_log
    }

    /// Fresh writes the serving primaries have forwarded to their
    /// backups, summed over every memory IP.
    pub fn replication_writes(&self) -> u64 {
        self.ips
            .iter()
            .map(|ip| match ip {
                Ip::Memory(m) => m.replication_writes(),
                _ => 0,
            })
            .sum()
    }

    /// Duplicate sequenced messages suppressed by receivers, summed over
    /// every IP.
    pub fn duplicates_dropped(&self) -> u64 {
        self.ips
            .iter()
            .map(|ip| match ip {
                Ip::Processor(p) => p.duplicates_dropped(),
                Ip::Memory(m) => m.duplicates_dropped(),
                _ => 0,
            })
            .sum()
    }

    /// Starts recording service messages into a bounded event log.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// The trace log, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Stops tracing and returns the log.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take()
    }

    /// Starts causal service-span recording into a bounded ring of
    /// `capacity` spans: every sequenced request is tracked from first
    /// transmission through retransmissions and failover redirects to
    /// its completing response, and rendered as one connected flow in
    /// [`perfetto_json`](Self::perfetto_json). Bit-identical across
    /// kernels, thread counts and batch windows.
    pub fn enable_service_spans(&mut self, capacity: usize) {
        self.spans = Some(SpanLog::new(capacity));
    }

    /// The service-span log, if span recording is enabled.
    pub fn service_spans(&self) -> Option<&SpanLog> {
        self.spans.as_ref()
    }

    /// Stops span recording and returns the log.
    pub fn take_service_spans(&mut self) -> Option<SpanLog> {
        self.spans.take()
    }

    /// Enables interval telemetry in the underlying NoC (see
    /// [`Noc::enable_telemetry`]).
    pub fn enable_telemetry(&mut self, config: hermes_noc::TelemetryConfig) {
        self.noc.enable_telemetry(config);
    }

    /// The NoC telemetry sampler, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&hermes_noc::Telemetry> {
        self.noc.telemetry()
    }

    /// The NoC time-series JSON export, if telemetry is enabled (see
    /// [`Noc::telemetry_json`]).
    pub fn telemetry_json(&self) -> Option<String> {
        self.noc.telemetry_json()
    }

    /// The NoC time-series Prometheus export, if telemetry is enabled
    /// (see [`Noc::telemetry_prometheus`]).
    pub fn telemetry_prometheus(&self) -> Option<String> {
        self.noc.telemetry_prometheus()
    }

    /// Starts packet-lifecycle tracing in the underlying NoC, retaining
    /// the `window` most recent packet traces (see
    /// [`Noc::enable_packet_trace`]).
    pub fn enable_packet_trace(&mut self, window: usize) {
        self.noc.enable_packet_trace(window);
    }

    /// The NoC packet tracer, if packet tracing is enabled.
    pub fn packet_trace(&self) -> Option<&hermes_noc::PacketTracer> {
        self.noc.packet_trace()
    }

    /// Enables the NoC kernel phase profiler (see
    /// [`Noc::enable_phase_profiler`]).
    pub fn enable_phase_profiler(&mut self) {
        self.noc.enable_phase_profiler();
    }

    /// A snapshot of the kernel phase profiler, if it was enabled.
    pub fn phase_profile(&self) -> Option<hermes_noc::PhaseProfile> {
        self.noc.phase_profile()
    }

    /// A point-in-time metrics snapshot of the whole system: every
    /// network metric of [`Noc::metrics`] plus the service-level view —
    /// per-node per-service message counters, reliability-layer work
    /// (retransmissions, acks, reroute resets), duplicate and corrupt
    /// drops, and the trace-log pressure counters. Deterministically
    /// ordered and bit-identical across simulation kernels.
    pub fn metrics_snapshot(&self) -> hermes_noc::Registry {
        let mut reg = self.noc.metrics();
        for node in self.counters.nodes() {
            let node_label = node.to_string();
            for code in crate::trace::ALL_CODES {
                let code_label = format!("{code:?}");
                let labels = [
                    ("node", node_label.as_str()),
                    ("service", code_label.as_str()),
                ];
                let sent = self.counters.sent(node, code);
                if sent > 0 {
                    reg.counter(
                        "multinoc_service_sent_total",
                        "Service messages sent, per node and service code",
                        &labels,
                        sent,
                    );
                }
                let received = self.counters.received(node, code);
                if received > 0 {
                    reg.counter(
                        "multinoc_service_received_total",
                        "Service messages received, per node and service code",
                        &labels,
                        received,
                    );
                }
            }
        }
        reg.counter(
            "multinoc_corrupt_dropped_total",
            "Undecodable service packets dropped at the IPs",
            &[],
            self.counters.corrupt_dropped(),
        );
        reg.counter(
            "multinoc_duplicates_dropped_total",
            "Duplicate sequenced messages suppressed by receivers",
            &[],
            self.duplicates_dropped(),
        );
        reg.counter(
            "multinoc_node_deaths_total",
            "Nodes declared dead by the online diagnosis",
            &[],
            self.dead_nodes.len() as u64,
        );
        reg.counter(
            "multinoc_failovers_total",
            "Replicated services promoted to their surviving member",
            &[],
            self.failover_log.len() as u64,
        );
        reg.counter(
            "multinoc_replication_writes_total",
            "Fresh writes forwarded by serving primaries to their backups",
            &[],
            self.replication_writes(),
        );
        let retries = self.retry_counters();
        reg.counter(
            "multinoc_reliable_sent_total",
            "Acknowledged-class messages first sent by the reliability layer",
            &[],
            retries.sent,
        );
        reg.counter(
            "multinoc_retransmissions_total",
            "Messages retransmitted after an ack timeout",
            &[],
            retries.retransmissions,
        );
        reg.counter(
            "multinoc_acked_total",
            "Messages confirmed by an acknowledgement",
            &[],
            retries.acked,
        );
        reg.counter(
            "multinoc_reroute_resets_total",
            "Retry clocks reset by a reconfiguration epoch",
            &[],
            retries.reroute_resets,
        );
        if let Some(log) = &self.trace {
            reg.counter(
                "multinoc_trace_events_dropped_total",
                "Service trace events no longer visible in the bounded log",
                &[],
                log.dropped(),
            );
            reg.counter(
                "multinoc_trace_events_evicted_total",
                "Service trace events physically evicted from the log ring",
                &[],
                log.evicted_events(),
            );
        }
        if let Some(spans) = &self.spans {
            reg.counter(
                "multinoc_spans_total",
                "Causal service spans opened",
                &[],
                spans.spans_total(),
            );
            reg.counter(
                "multinoc_spans_completed_total",
                "Service spans that reached their completing response",
                &[],
                spans.completed(),
            );
            reg.counter(
                "multinoc_spans_evicted_total",
                "Service spans evicted from the bounded ring",
                &[],
                spans.evicted(),
            );
            reg.counter(
                "multinoc_span_retransmissions_total",
                "Packets sent beyond each span's first transmission",
                &[],
                spans.retransmissions(),
            );
            reg.counter(
                "multinoc_span_redirects_total",
                "Failover redirects applied to open spans",
                &[],
                spans.redirects(),
            );
        }
        reg
    }

    /// The system's observable history as one Chrome trace-event /
    /// Perfetto JSON document: the NoC packet-lifecycle spans (if packet
    /// tracing is enabled) on process 0, and the service-level message
    /// log (if [`enable_trace`](Self::enable_trace) is on) as instant
    /// events on process 1, one thread per node. Loadable directly in
    /// `ui.perfetto.dev` or `chrome://tracing`.
    pub fn perfetto_json(&self) -> String {
        use crate::trace::Direction;
        use hermes_noc::trace::json_escape;
        let mut events = self
            .noc
            .packet_trace()
            .map(hermes_noc::PacketTracer::perfetto_events)
            .unwrap_or_default();
        if let Some(log) = &self.trace {
            events.push(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                 \"args\":{\"name\":\"multinoc services\"}}"
                    .to_string(),
            );
            let mut named: Vec<NodeId> = Vec::new();
            for e in log.events() {
                if !named.contains(&e.node) {
                    named.push(e.node);
                    events.push(format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        e.node.0, e.node
                    ));
                }
                let direction = match e.direction {
                    Direction::Sent => "sent",
                    Direction::Received => "received",
                };
                events.push(format!(
                    "{{\"name\":\"{:?}\",\"cat\":\"service\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"direction\":\"{direction}\",\
                     \"peer\":\"{}\",\"summary\":\"{}\"}}}}",
                    e.code,
                    e.cycle,
                    e.node.0,
                    e.peer,
                    json_escape(&e.summary)
                ));
            }
        }
        // Failovers as short spans on the services process, one per
        // promotion, on the logical node's track.
        for f in &self.failover_log {
            events.push(format!(
                "{{\"name\":\"failover {} -> {}\",\"cat\":\"failover\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":1,\"pid\":1,\"tid\":{},\"args\":{{\"logical\":\"{}\",\
                 \"from\":\"{}\",\"to\":\"{}\"}}}}",
                f.from, f.to, f.cycle, f.logical.0, f.logical, f.from, f.to
            ));
        }
        // Causal service spans on process 2, one thread per issuing
        // node, each request one "X" slice. Flow events (`s`/`t`/`f`)
        // share the span id and step through every transmission on the
        // packet-trace process, so a request renders as one connected
        // track: span → packet(s) → retransmissions → completion.
        if let Some(spans) = &self.spans {
            events.push(
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
                 \"args\":{\"name\":\"multinoc spans\"}}"
                    .to_string(),
            );
            let mut named: Vec<NodeId> = Vec::new();
            for s in spans.spans() {
                if !named.contains(&s.node) {
                    named.push(s.node);
                    events.push(format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        s.node.0, s.node
                    ));
                }
                let last = s
                    .completed
                    .or_else(|| s.transmissions.last().map(|t| t.cycle))
                    .unwrap_or(s.started);
                let dur = (last - s.started).max(1);
                events.push(format!(
                    "{{\"name\":\"{:?} -> {} seq {}\",\"cat\":\"span\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{dur},\"pid\":2,\"tid\":{},\"args\":{{\"span\":{},\
                     \"transmissions\":{},\"redirects\":{},\"completed\":{}}}}}",
                    s.code,
                    s.dest,
                    s.seq,
                    s.started,
                    s.node.0,
                    s.id,
                    s.transmissions.len(),
                    s.redirects.len(),
                    s.completed.is_some()
                ));
                events.push(format!(
                    "{{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"s\",\"id\":{},\
                     \"ts\":{},\"pid\":2,\"tid\":{}}}",
                    s.id, s.started, s.node.0
                ));
                for t in &s.transmissions {
                    let Some(packet) = t.packet else { continue };
                    events.push(format!(
                        "{{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"t\",\"id\":{},\
                         \"ts\":{},\"pid\":0,\"tid\":{packet}}}",
                        s.id, t.cycle
                    ));
                }
                if let Some(done) = s.completed {
                    events.push(format!(
                        "{{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{},\"ts\":{done},\"pid\":2,\"tid\":{}}}",
                        s.id, s.node.0
                    ));
                }
            }
        }
        hermes_noc::trace::perfetto_wrap(&events)
    }

    /// Advances the whole system by one clock cycle.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] if an IP received malformed traffic.
    pub fn step(&mut self) -> Result<(), SystemError> {
        self.noc.step();
        let now = self.noc.cycle();
        self.react_to_deaths(now)?;
        self.link.step(now);
        for idx in 0..self.ips.len() {
            let node = NodeId(idx as u8);
            let Some(addr) = self.table.router_of(node) else {
                continue; // vacated slot
            };
            // A dead node's IP no longer executes; whatever the network
            // still delivers to its router is discarded, as a powered-off
            // core would.
            if self.dead_nodes.contains(&node) {
                while self.noc.try_recv(addr).is_some() {}
                continue;
            }
            // A core that cannot execute (inactive, halted, faulted) with
            // a quiet reliability layer and nothing delivered at its
            // router has nothing to do: book the cycle and move on.
            if let Ip::Processor(p) = &mut self.ips[idx] {
                if p.can_skip_cycle(now) && self.noc.pending_recv(addr) == 0 {
                    p.credit_skipped(1);
                    continue;
                }
            }
            let observer = crate::net::Observer {
                node,
                now,
                counters: &mut self.counters,
                log: self.trace.as_mut(),
                spans: self.spans.as_mut(),
            };
            let mut net = NetPort::observed(&mut self.noc, addr, observer);
            let stepped = match &mut self.ips[idx] {
                Ip::Processor(p) => p.step(now, &mut net),
                Ip::Serial(s) => s.step(now, &mut self.link, &mut net),
                Ip::Memory(m) => m.step(now, &mut net),
                Ip::Vacant => {
                    // Drop anything that still arrives here.
                    while net.recv()?.is_some() {}
                    Ok(())
                }
            };
            stepped.map_err(|e| self.promote_node_down(e))?;
        }
        // Drain stray deliveries at routers whose IP was removed.
        for i in 0..self.vacated_routers.len() {
            let addr = self.vacated_routers[i];
            while self.noc.try_recv(addr).is_some() {}
        }
        self.auto_checkpoint_due()?;
        Ok(())
    }

    /// Upgrades a transport-level partition error to the node-level
    /// diagnosis when the unreachable destination is in fact a node the
    /// health machinery has declared dead: the caller learns the core is
    /// gone, not merely that paths to it are cut.
    fn promote_node_down(&self, e: SystemError) -> SystemError {
        if let SystemError::Unreachable { dest, .. } = e {
            if let Some(node) = self.table.node_of(dest) {
                if self.dead_nodes.contains(&node) {
                    return SystemError::NodeDown { node, router: dest };
                }
            }
        }
        e
    }

    /// Reacts — once per dead router — to node deaths declared by the
    /// network's online diagnosis this cycle: records the dead node,
    /// fails replicated services over to their surviving member, rewires
    /// every client's in-flight traffic at the survivor, and releases
    /// acks a primary was withholding on a dead backup. Deterministic:
    /// dead routers are visited in address order and every decision is a
    /// pure function of the (kernel-invariant) diagnosis state.
    fn react_to_deaths(&mut self, now: u64) -> Result<(), SystemError> {
        // Cheap early-out for the healthy path.
        if self.noc.fault_plan().is_none() {
            return Ok(());
        }
        let mut newly_dead: Vec<RouterAddr> = self
            .noc
            .dead_endpoints()
            .into_iter()
            .filter(|r| !self.processed_dead.contains(r))
            .collect();
        newly_dead.sort_unstable();
        let any_deaths = !newly_dead.is_empty();
        for router in newly_dead {
            self.processed_dead.insert(router);
            let Some(node) = self.table.node_of(router) else {
                continue; // a router without an IP died; routing handles it
            };
            self.dead_nodes.push(node);
            self.handle_node_death(node, router, now)?;
        }
        // A node death is exactly the moment a recovery point matters:
        // snapshot the just-failed-over state.
        if any_deaths {
            self.auto_checkpoint_now()?;
        }
        Ok(())
    }

    /// Fails over or degrades the replica group `node` belonged to, if
    /// any.
    fn handle_node_death(
        &mut self,
        node: NodeId,
        router: RouterAddr,
        now: u64,
    ) -> Result<(), SystemError> {
        let Some(group) = self.directory.group_of(node).copied() else {
            return Ok(()); // unreplicated node: requests surface NodeDown
        };
        if group.serving != node {
            // The standby member died: the serving primary degrades to an
            // unreplicated memory and releases the acks it was
            // withholding on replication to the dead backup.
            let serving = group.serving;
            if let Some(serving_router) = self.table.router_of(serving) {
                let observer = crate::net::Observer {
                    node: serving,
                    now,
                    counters: &mut self.counters,
                    log: self.trace.as_mut(),
                    spans: self.spans.as_mut(),
                };
                let mut net = NetPort::observed(&mut self.noc, serving_router, observer);
                if let Some(Ip::Memory(m)) = self.ips.get_mut(serving.index()) {
                    m.drop_replica(router, &mut net)?;
                }
            }
            return Ok(());
        }
        // The serving member died. Promote the survivor if it is alive.
        let survivor = if group.primary == node {
            group.backup
        } else {
            group.primary
        };
        if self.dead_nodes.contains(&survivor) {
            return Ok(()); // both members gone: requests surface NodeDown
        }
        let Some(survivor_router) = self.table.router_of(survivor) else {
            return Ok(());
        };
        self.directory.fail_over(node, now);
        self.failover_log.push(FailoverRecord {
            cycle: now,
            logical: group.primary,
            from: node,
            to: survivor,
        });
        // The survivor stops replicating to the dead member and tells
        // every client to discard read values still parked from it.
        let clients: Vec<RouterAddr> = self
            .ips
            .iter()
            .enumerate()
            .filter(|(i, ip)| {
                matches!(ip, Ip::Processor(_) | Ip::Serial(_))
                    && !self.dead_nodes.contains(&NodeId(*i as u8))
            })
            .filter_map(|(i, _)| self.table.router_of(NodeId(i as u8)))
            .collect();
        let observer = crate::net::Observer {
            node: survivor,
            now,
            counters: &mut self.counters,
            log: self.trace.as_mut(),
            spans: self.spans.as_mut(),
        };
        let mut net = NetPort::observed(&mut self.noc, survivor_router, observer);
        if let Some(Ip::Memory(m)) = self.ips.get_mut(survivor.index()) {
            m.promote(router, &clients, &mut net)?;
        }
        // Re-resolve the service at every client: updated directory plus
        // a rewire of everything already in flight towards the dead
        // member, so unacknowledged writes and the pending read retry
        // against the survivor (and are deduplicated there).
        for ip in &mut self.ips {
            match ip {
                Ip::Processor(p) => {
                    p.set_directory(self.directory.clone());
                    p.redirect(router, survivor_router, now);
                }
                Ip::Serial(s) => {
                    s.set_directory(self.directory.clone());
                    s.redirect(router, survivor_router, now);
                }
                _ => {}
            }
        }
        // Open spans addressed to the dead router follow their traffic
        // to the survivor, recording the failover on the causal track.
        if let Some(spans) = self.spans.as_mut() {
            spans.redirect(router, survivor_router, now);
        }
        Ok(())
    }

    /// Cycles the whole system can provably sleep through: the network
    /// holds no traffic, the serial link no due byte, and every IP is
    /// parked on a timer (retransmission backoff, a pending request, a
    /// baud tick) or waiting for input that cannot arrive on its own.
    /// Returns the length of the gap up to (but excluding) the earliest
    /// deadline, or `None` when something has work right now — or when
    /// no deadline exists at all, in which case only the run loops'
    /// exit conditions can end the wait.
    fn skippable_gap(&self) -> Option<u64> {
        if !self.noc.is_idle() || !self.noc.delivered_empty() {
            return None;
        }
        // A plan-stalled router is charged stall cycles every cycle of
        // its window; jumping over them would miss that accounting.
        if self
            .noc
            .fault_plan()
            .is_some_and(hermes_noc::FaultPlan::has_router_stalls)
        {
            return None;
        }
        let now = self.noc.cycle();
        let mut deadline: Option<u64> = None;
        let mut note = |d: u64| deadline = Some(deadline.map_or(d, |cur: u64| cur.min(d)));
        if let Some(d) = self.link.next_deadline(now) {
            note(d);
        }
        for ip in &self.ips {
            match ip {
                Ip::Processor(p) => {
                    if let Some(d) = p.next_deadline(now) {
                        note(d);
                    }
                }
                Ip::Serial(s) => {
                    if let Some(d) = s.next_deadline() {
                        note(d);
                    }
                }
                Ip::Memory(m) => {
                    // Reactive but for the replication stream's timers.
                    if let Some(d) = m.next_deadline() {
                        note(d);
                    }
                }
                Ip::Vacant => {}
            }
        }
        // The step that observes cycle `d` begins by advancing the NoC
        // clock, so the clock parks at `d - 1`.
        deadline?
            .saturating_sub(1)
            .checked_sub(now)
            .filter(|&g| g > 0)
    }

    /// When nothing observable can happen before the next timer deadline,
    /// jumps the clock to just before it instead of burning the cycles
    /// one by one, crediting every processor's utilization as per-cycle
    /// sampling would have. Bounded by `limit` so cycle budgets keep
    /// their meaning. The observable simulation is unchanged — only the
    /// wall-clock cost of crossing the gap.
    fn fast_forward_idle_gap(&mut self, limit: u64) {
        if limit <= 1 {
            return;
        }
        let Some(gap) = self.skippable_gap() else {
            return;
        };
        let gap = gap.min(limit - 1);
        self.noc.advance_idle(gap);
        for ip in &mut self.ips {
            if let Ip::Processor(p) = ip {
                p.credit_skipped(gap);
            }
        }
    }

    /// Runs for exactly `cycles` clock cycles, fast-forwarding
    /// timer-bound idle gaps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SystemError`] from [`step`](Self::step).
    pub fn run(&mut self, cycles: u64) -> Result<(), SystemError> {
        let start = self.cycle();
        while self.cycle() - start < cycles {
            self.fast_forward_idle_gap(cycles - (self.cycle() - start));
            self.step()?;
        }
        Ok(())
    }

    fn faulted_processor(&self) -> Option<(NodeId, &str)> {
        self.ips.iter().enumerate().find_map(|(i, ip)| match ip {
            Ip::Processor(p) => p.fault().map(|f| (NodeId(i as u8), f)),
            _ => None,
        })
    }

    /// Whether every activated processor has executed `HALT`.
    pub fn all_halted(&self) -> bool {
        self.ips.iter().all(|ip| match ip {
            Ip::Processor(p) => !p.is_active() || p.status() == ProcessorStatus::Halted,
            _ => true,
        })
    }

    /// Whether nothing can make progress any more: network and link
    /// drained, no retransmission owed, and every processor inactive,
    /// halted or blocked.
    pub fn is_idle(&self) -> bool {
        self.noc.is_idle()
            && self.link.is_idle()
            && self.net_quiet()
            && self.ips.iter().all(|ip| match ip {
                Ip::Processor(p) => {
                    matches!(
                        p.status(),
                        ProcessorStatus::Inactive
                            | ProcessorStatus::Halted
                            | ProcessorStatus::Blocked
                            | ProcessorStatus::Faulted
                    )
                }
                _ => true,
            })
    }

    /// The watchdog's verdict on the current cycle, if it is armed.
    /// Distinguishes the two ways a faulty system hangs: everyone parked
    /// in `wait` with the network drained (deadlock — the missing
    /// notifies can never arrive) and flits in flight that stopped
    /// moving (a wedged wormhole on a dead link).
    fn watchdog_check(&mut self) -> Result<(), SystemError> {
        let now = self.noc.cycle();
        let hops = self.noc.stats().flit_hops;
        let epoch = self.noc.current_epoch();
        let settled = self.noc.reconfiguration_settled();
        let idle = self.noc.is_idle();
        let (window, last_change) = match &mut self.watchdog {
            None => return Ok(()),
            Some(w) => {
                // An idle network is not a stalled one: the dead-link
                // window measures contiguous cycles of flits in flight
                // making no progress. Without this reset, a long quiet
                // stretch (e.g. a command trickling in over a slow
                // serial link) counts toward the window, and the first
                // packet injected afterwards draws an instant DeadLink
                // verdict before it has moved a single hop.
                if hops != w.last_hops || epoch != w.last_epoch || idle {
                    w.last_hops = hops;
                    w.last_epoch = epoch;
                    w.last_change = now;
                    if !idle {
                        return Ok(());
                    }
                }
                (w.window, w.last_change)
            }
        };
        // While a reconfiguration epoch propagates across the mesh a
        // quiet network is expected, not evidence of a hang: routers are
        // adopting new tables and the reliability layer is about to
        // retransmit what the flush discarded.
        if !settled {
            return Ok(());
        }
        if !idle {
            let stalled_for = now - last_change;
            if stalled_for >= window {
                return Err(SystemError::DeadLink { stalled_for });
            }
            return Ok(());
        }
        // Network drained. If nothing is owed and every active,
        // non-halted processor sits in `wait`, nobody can notify anyone:
        // that is a deadlock, and waiting longer will not change it.
        if !self.link.is_idle() || !self.net_quiet() {
            return Ok(());
        }
        let mut waiting = Vec::new();
        let mut any_active = false;
        for (i, ip) in self.ips.iter().enumerate() {
            let Ip::Processor(p) = ip else { continue };
            if !p.is_active()
                || matches!(
                    p.status(),
                    ProcessorStatus::Halted | ProcessorStatus::Faulted
                )
            {
                continue;
            }
            any_active = true;
            match p.block_reason() {
                Some(BlockReason::WaitFor(target)) => waiting.push((NodeId(i as u8), target)),
                // Running, or blocked on something the host or a reply
                // can still unblock: not a deadlock.
                _ => return Ok(()),
            }
        }
        if any_active && !waiting.is_empty() {
            return Err(SystemError::Deadlock { waiting });
        }
        Ok(())
    }

    /// Runs until every activated processor halts and the network, link
    /// and reliability layer drain.
    ///
    /// # Errors
    ///
    /// [`SystemError::BudgetExhausted`] after `budget` cycles,
    /// [`SystemError::Cpu`] if a processor faulted, a watchdog verdict
    /// ([`SystemError::Deadlock`] / [`SystemError::DeadLink`]) if one is
    /// armed, or a protocol error.
    pub fn run_until_halted(&mut self, budget: u64) -> Result<u64, SystemError> {
        let start = self.cycle();
        loop {
            if let Some((node, fault)) = self.faulted_processor() {
                return Err(SystemError::Cpu {
                    node,
                    message: fault.to_string(),
                });
            }
            if self.all_halted() && self.noc.is_idle() && self.link.is_idle() && self.net_quiet() {
                return Ok(self.cycle() - start);
            }
            self.watchdog_verdict()?;
            if self.cycle() - start >= budget {
                return Err(SystemError::BudgetExhausted {
                    budget,
                    waiting_for: "all processors to halt",
                });
            }
            self.fast_forward_idle_gap(budget - (self.cycle() - start));
            self.step()?;
        }
    }

    // ------------------------------------------------------------------
    // Partial and dynamic reconfiguration (§5 of the paper): "the IP
    // cores position be modified in execution at runtime, favoring the
    // IPs communication with improved throughput. Reconfiguration can
    // also be used to reduce system area consumption through insertion
    // and removal of IP cores on demand."
    // ------------------------------------------------------------------

    fn require_quiescent(&self) -> Result<(), SystemError> {
        if self.noc.is_idle() && self.link.is_idle() {
            Ok(())
        } else {
            Err(SystemError::Protocol(
                "reconfiguration requires an idle network and serial link".into(),
            ))
        }
    }

    /// Pushes the (updated) node directory into every IP.
    fn refresh_tables(&mut self) {
        let io_router = self
            .table
            .nodes_of_kind(NodeKind::Serial)
            .next()
            .and_then(|n| self.table.router_of(n));
        for idx in 0..self.ips.len() {
            let node = NodeId(idx as u8);
            let Some(addr) = self.table.router_of(node) else {
                continue;
            };
            match &mut self.ips[idx] {
                Ip::Processor(p) => {
                    p.reconfigure(addr, self.table.clone(), io_router);
                    p.set_directory(self.directory.clone());
                }
                Ip::Serial(s) => {
                    s.reconfigure(addr, self.table.clone());
                    s.set_directory(self.directory.clone());
                }
                Ip::Memory(m) => m.set_router(addr),
                Ip::Vacant => {}
            }
        }
    }

    fn require_free_router(&self, addr: RouterAddr) -> Result<(), SystemError> {
        let config = self.noc.config();
        if !config.topology.contains(addr) {
            return Err(SystemError::BadLayout(format!(
                "router {addr} is outside the {}x{} grid",
                config.width(),
                config.height()
            )));
        }
        if self.table.node_of(addr).is_some() {
            return Err(SystemError::BadLayout(format!(
                "router {addr} already hosts an IP"
            )));
        }
        Ok(())
    }

    /// Moves `node` (with all its state — memory contents, CPU
    /// registers) to the free router `new_addr`. The network and serial
    /// link must be idle, as a partial-reconfiguration controller would
    /// quiesce the region first.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] if traffic is in flight,
    /// [`SystemError::BadLayout`] if the target router is occupied or
    /// outside the mesh, [`SystemError::BadNode`] for vacant/unknown
    /// nodes.
    pub fn relocate_ip(&mut self, node: NodeId, new_addr: RouterAddr) -> Result<(), SystemError> {
        self.require_quiescent()?;
        self.require_free_router(new_addr)?;
        if self.table.router_of(node).is_none() {
            return Err(SystemError::BadNode {
                node,
                expected: "an occupied node",
            });
        }
        self.table.relocate(node, new_addr);
        self.refresh_tables();
        Ok(())
    }

    /// Inserts a new R8 processor IP at the free router `addr`,
    /// returning its node id. Every existing processor gains a window
    /// onto the new processor's memory *after* its current windows, so
    /// running software keeps its addresses.
    ///
    /// # Errors
    ///
    /// As [`relocate_ip`](Self::relocate_ip); additionally
    /// [`SystemError::BadLayout`] if some processor's address map has no
    /// room for another window.
    pub fn insert_processor_at(&mut self, addr: RouterAddr) -> Result<NodeId, SystemError> {
        self.insert_ip(addr, NodeKind::Processor)
    }

    /// Inserts a new remote memory IP at the free router `addr`.
    ///
    /// # Errors
    ///
    /// As [`insert_processor_at`](Self::insert_processor_at).
    pub fn insert_memory_at(&mut self, addr: RouterAddr) -> Result<NodeId, SystemError> {
        self.insert_ip(addr, NodeKind::Memory)
    }

    fn insert_ip(&mut self, addr: RouterAddr, kind: NodeKind) -> Result<NodeId, SystemError> {
        self.require_quiescent()?;
        self.require_free_router(addr)?;
        if self.ips.len() >= 255 {
            return Err(SystemError::BadLayout("node ids are exhausted".into()));
        }
        // Check every processor can take one more window before mutating.
        for ip in &self.ips {
            if let Ip::Processor(p) = ip {
                let windows = p.map().windows().len() as u32 + 1;
                let top = (windows + 1) * u32::from(p.map().window_words());
                if top > u32::from(crate::NOTIFY_ADDR) {
                    return Err(SystemError::BadLayout(format!(
                        "{}'s address map has no room for another window",
                        p.node()
                    )));
                }
            }
        }
        let node = self.table.push(addr, kind);
        for ip in &mut self.ips {
            if let Ip::Processor(p) = ip {
                if p.map_mut().push_window(node).is_none() {
                    return Err(SystemError::BadLayout(format!(
                        "{}'s address map has no room for another window",
                        p.node()
                    )));
                }
            }
        }
        let io_router = self
            .table
            .nodes_of_kind(NodeKind::Serial)
            .next()
            .and_then(|n| self.table.router_of(n));
        let ip = match kind {
            NodeKind::Memory => Ip::Memory(MemoryIp::new(node, addr, crate::MEMORY_WORDS)),
            NodeKind::Processor => {
                // The new processor sees every other memory-owning node,
                // processors first, in node order (builder convention).
                let mut windows: Vec<NodeId> = self
                    .table
                    .nodes_of_kind(NodeKind::Processor)
                    .filter(|&n| n != node)
                    .collect();
                windows.extend(self.table.nodes_of_kind(NodeKind::Memory));
                Ip::Processor(Box::new(ProcessorIp::new(
                    node,
                    addr,
                    crate::MEMORY_WORDS,
                    AddressMap::paper(windows),
                    self.table.clone(),
                    io_router,
                )))
            }
            NodeKind::Serial => {
                return Err(SystemError::BadLayout(
                    "inserting a second serial IP is not supported".into(),
                ))
            }
        };
        self.ips.push(ip);
        self.refresh_tables();
        Ok(node)
    }

    /// Removes `node` from the system ("to reduce system area
    /// consumption"). The node id stays reserved; peers' windows onto it
    /// keep their addresses but reads return 0 and writes are dropped.
    /// A processor must be inactive, halted or faulted to be removed.
    ///
    /// # Errors
    ///
    /// [`SystemError::Protocol`] with traffic in flight or a running
    /// processor; [`SystemError::BadNode`] for vacant/unknown nodes.
    pub fn remove_ip(&mut self, node: NodeId) -> Result<(), SystemError> {
        self.require_quiescent()?;
        let Some(addr) = self.table.router_of(node) else {
            return Err(SystemError::BadNode {
                node,
                expected: "an occupied node",
            });
        };
        if let Some(Ip::Processor(p)) = self.ips.get(node.index()) {
            if matches!(
                p.status(),
                ProcessorStatus::Running | ProcessorStatus::Blocked
            ) {
                return Err(SystemError::Protocol(format!(
                    "{node} is executing; halt it before removal"
                )));
            }
        }
        self.ips[node.index()] = Ip::Vacant;
        self.table.vacate(node);
        self.vacated_routers.push(addr);
        self.refresh_tables();
        Ok(())
    }

    /// Runs until the system is [idle](Self::is_idle) — including
    /// processors parked in `wait` or `scanf`, which makes this the right
    /// tool to detect synchronization deadlocks.
    ///
    /// # Errors
    ///
    /// [`SystemError::BudgetExhausted`] after `budget` cycles, or a
    /// propagated step error.
    pub fn run_until_idle(&mut self, budget: u64) -> Result<u64, SystemError> {
        let start = self.cycle();
        // Always make at least one step so freshly queued traffic starts.
        self.step()?;
        loop {
            if self.is_idle() {
                return Ok(self.cycle() - start);
            }
            self.watchdog_verdict()?;
            if self.cycle() - start >= budget {
                return Err(SystemError::BudgetExhausted {
                    budget,
                    waiting_for: "system to go idle",
                });
            }
            self.fast_forward_idle_gap(budget - (self.cycle() - start));
            self.step()?;
        }
    }

    // ------------------------------------------------------------------
    // Deterministic checkpoint/restore: the full system state as one
    // versioned, checksummed binary container, embedding the NoC's own
    // sealed snapshot. A restored system replays bit-identically to the
    // uninterrupted run on any simulation kernel.
    // ------------------------------------------------------------------

    /// Captures the complete system state — the network (flit buffers,
    /// in-flight worms, arbiters, health monitors, fault-plan progress,
    /// RNG counters, statistics), every IP core (CPU images, memories,
    /// reliability layers), the serial link, service counters, trace
    /// log, watchdog and failover bookkeeping — as one self-describing
    /// binary snapshot. The auto-checkpoint policy itself is runtime
    /// configuration and is deliberately not captured.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        // The NoC snapshot keeps its own sealed container (version,
        // checksum, mesh-shape validation) and is embedded as an opaque
        // blob.
        w.put_bytes(&self.noc.save_state());
        w.put_f64(self.clock_hz);
        self.link.snapshot_write(&mut w);
        self.table.snapshot_write(&mut w);
        self.directory.snapshot_write(&mut w);
        w.put_usize(self.ips.len());
        for ip in &self.ips {
            match ip {
                Ip::Vacant => w.put_u8(0),
                Ip::Processor(p) => {
                    w.put_u8(1);
                    p.snapshot_write(&mut w);
                }
                Ip::Memory(m) => {
                    w.put_u8(2);
                    m.snapshot_write(&mut w);
                }
                Ip::Serial(s) => {
                    w.put_u8(3);
                    s.snapshot_write(&mut w);
                }
            }
        }
        self.counters.snapshot_write(&mut w);
        match &self.trace {
            None => w.put_u8(0),
            Some(log) => {
                w.put_u8(1);
                log.snapshot_write(&mut w);
            }
        }
        w.put_usize(self.vacated_routers.len());
        for &addr in &self.vacated_routers {
            w.put_addr(addr);
        }
        // The watchdog's progress windows are written verbatim: a
        // restored run re-arming them from current values could fire a
        // false DeadLink the uninterrupted run never saw.
        match &self.watchdog {
            None => w.put_u8(0),
            Some(wd) => {
                w.put_u8(1);
                w.put_u64(wd.window);
                w.put_u64(wd.last_hops);
                w.put_u64(wd.last_change);
                w.put_u64(wd.last_epoch);
            }
        }
        w.put_usize(self.dead_nodes.len());
        for n in &self.dead_nodes {
            w.put_u8(n.0);
        }
        w.put_usize(self.processed_dead.len());
        for &addr in &self.processed_dead {
            w.put_addr(addr);
        }
        w.put_usize(self.failover_log.len());
        for f in &self.failover_log {
            w.put_u64(f.cycle);
            w.put_u8(f.logical.0);
            w.put_u8(f.from.0);
            w.put_u8(f.to.0);
        }
        w.put_bool(self.spans.is_some());
        if let Some(spans) = &self.spans {
            spans.snapshot_write(&mut w);
        }
        w.finish(snapshot::KIND_SYSTEM)
    }

    /// Writes [`checkpoint`](Self::checkpoint) to `path` atomically:
    /// the bytes go to a temporary file in the same directory which is
    /// then renamed over the target, so a crash mid-write leaves the
    /// previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn checkpoint_to_file(&self, path: &Path) -> Result<(), SnapshotError> {
        snapshot::write_atomic(path, &self.checkpoint())
    }

    /// Reconstructs a system from [`checkpoint`](Self::checkpoint)
    /// bytes. The resumed system replays bit-identically to the
    /// uninterrupted original.
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotError`] on truncated, corrupt, wrong-version
    /// or internally inconsistent input — never a panic.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::restore_inner(bytes, None)
    }

    /// [`restore`](Self::restore) with the network's simulation kernel
    /// overridden — checkpoints are kernel-portable, so a snapshot
    /// taken under `Parallel { workers: 8 }` restores under
    /// `Reference` (and vice versa) with identical behaviour.
    ///
    /// # Errors
    ///
    /// As [`restore`](Self::restore).
    pub fn restore_with_kernel(bytes: &[u8], kernel: KernelMode) -> Result<Self, SnapshotError> {
        Self::restore_inner(bytes, Some(kernel))
    }

    /// Reads and [`restore`](Self::restore)s a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, else as
    /// [`restore`](Self::restore).
    pub fn restore_from_file(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::restore(&bytes)
    }

    fn restore_inner(bytes: &[u8], kernel: Option<KernelMode>) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, snapshot::KIND_SYSTEM)?;
        let noc_blob = r.take_bytes()?;
        let noc = match kernel {
            None => Noc::restore_state(&noc_blob)?,
            Some(k) => Noc::restore_state_with_kernel(&noc_blob, k)?,
        };
        let (width, height) = (noc.config().width(), noc.config().height());
        let clock_hz = r.take_f64()?;
        if !clock_hz.is_finite() || clock_hz <= 0.0 {
            return Err(SnapshotError::Malformed("clock frequency"));
        }
        let link = SerialLink::snapshot_read(&mut r)?;
        let table = NodeTable::snapshot_read(&mut r, width, height)?;
        let directory = ServiceDirectory::snapshot_read(&mut r)?;
        let io_router = table
            .nodes_of_kind(NodeKind::Serial)
            .next()
            .and_then(|n| table.router_of(n));
        let count = r.take_len(1)?;
        if count != table.len() {
            return Err(SnapshotError::Malformed(
                "IP count does not match node table",
            ));
        }
        let mut ips = Vec::with_capacity(count);
        for idx in 0..count {
            let node = NodeId(idx as u8);
            let tag = r.take_u8()?;
            let slot = table.router_of(node);
            let ip = match (tag, slot, table.kind_of(node)) {
                (0, None, _) => Ip::Vacant,
                (1, Some(addr), Some(NodeKind::Processor)) => {
                    Ip::Processor(Box::new(ProcessorIp::snapshot_read(
                        &mut r,
                        node,
                        addr,
                        table.clone(),
                        directory.clone(),
                        io_router,
                        width,
                        height,
                    )?))
                }
                (2, Some(addr), Some(NodeKind::Memory)) => {
                    Ip::Memory(MemoryIp::snapshot_read(&mut r, node, addr, width, height)?)
                }
                (3, Some(addr), Some(NodeKind::Serial)) => Ip::Serial(SerialIp::snapshot_read(
                    &mut r,
                    addr,
                    table.clone(),
                    directory.clone(),
                    width,
                    height,
                )?),
                (0..=3, _, _) => {
                    return Err(SnapshotError::Malformed(
                        "IP kind does not match node table",
                    ))
                }
                _ => return Err(SnapshotError::Malformed("IP kind tag")),
            };
            ips.push(ip);
        }
        let counters = ServiceCounters::snapshot_read(&mut r)?;
        let trace = match r.take_u8()? {
            0 => None,
            1 => Some(TraceLog::snapshot_read(&mut r)?),
            _ => return Err(SnapshotError::Malformed("trace presence tag")),
        };
        let count = r.take_len(2)?;
        let mut vacated_routers = Vec::with_capacity(count);
        for _ in 0..count {
            vacated_routers.push(r.take_addr_in(width, height)?);
        }
        let watchdog = match r.take_u8()? {
            0 => None,
            1 => Some(Watchdog {
                window: r.take_u64()?,
                last_hops: r.take_u64()?,
                last_change: r.take_u64()?,
                last_epoch: r.take_u64()?,
            }),
            _ => return Err(SnapshotError::Malformed("watchdog presence tag")),
        };
        let count = r.take_len(1)?;
        let mut dead_nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let n = NodeId(r.take_u8()?);
            if n.index() >= table.len() {
                return Err(SnapshotError::Malformed("dead node outside the table"));
            }
            dead_nodes.push(n);
        }
        let count = r.take_len(2)?;
        let mut processed_dead = BTreeSet::new();
        for _ in 0..count {
            processed_dead.insert(r.take_addr_in(width, height)?);
        }
        let count = r.take_len(11)?;
        let mut failover_log = Vec::with_capacity(count);
        for _ in 0..count {
            failover_log.push(FailoverRecord {
                cycle: r.take_u64()?,
                logical: NodeId(r.take_u8()?),
                from: NodeId(r.take_u8()?),
                to: NodeId(r.take_u8()?),
            });
        }
        let spans = if r.version() >= 4 && r.take_bool()? {
            Some(SpanLog::snapshot_read(&mut r)?)
        } else {
            None
        };
        r.finish()?;
        Ok(System {
            noc,
            ips,
            table,
            link,
            clock_hz,
            counters,
            trace,
            spans,
            vacated_routers,
            watchdog,
            directory,
            dead_nodes,
            processed_dead,
            failover_log,
            auto_checkpoint: None,
        })
    }

    /// Arms the automatic checkpoint policy: the full system snapshot
    /// is written to `path` every `every_cycles` cycles and whenever a
    /// fault-class event is detected (a watchdog Deadlock/DeadLink
    /// verdict, a node death). Writes are atomic — a crash mid-write
    /// never corrupts the last good checkpoint. Off by default; not
    /// part of the checkpoint itself, so a restored system must opt in
    /// again.
    pub fn enable_auto_checkpoint(&mut self, path: impl Into<PathBuf>, every_cycles: u64) {
        self.auto_checkpoint = Some(AutoCheckpoint {
            path: path.into(),
            every: every_cycles.max(1),
            last: self.cycle(),
            written: 0,
        });
    }

    /// Disarms the automatic checkpoint policy.
    pub fn disable_auto_checkpoint(&mut self) {
        self.auto_checkpoint = None;
    }

    /// Checkpoints written by the automatic policy since it was armed.
    pub fn auto_checkpoints_written(&self) -> u64 {
        self.auto_checkpoint.as_ref().map_or(0, |a| a.written)
    }

    /// Periodic auto-checkpoint hook: writes when the interval elapsed.
    fn auto_checkpoint_due(&mut self) -> Result<(), SystemError> {
        let Some(ac) = &self.auto_checkpoint else {
            return Ok(());
        };
        if self.noc.cycle().saturating_sub(ac.last) < ac.every {
            return Ok(());
        }
        self.auto_checkpoint_now()
    }

    /// Writes an auto-checkpoint immediately, if the policy is armed.
    fn auto_checkpoint_now(&mut self) -> Result<(), SystemError> {
        let Some(ac) = &self.auto_checkpoint else {
            return Ok(());
        };
        let path = ac.path.clone();
        self.checkpoint_to_file(&path)
            .map_err(|e| SystemError::Snapshot(e.to_string()))?;
        let now = self.noc.cycle();
        if let Some(ac) = &mut self.auto_checkpoint {
            ac.last = now;
            ac.written += 1;
        }
        Ok(())
    }

    /// [`watchdog_check`](Self::watchdog_check), snapshotting the
    /// moment of failure (best-effort) before surfacing a verdict.
    fn watchdog_verdict(&mut self) -> Result<(), SystemError> {
        match self.watchdog_check() {
            Ok(()) => Ok(()),
            Err(e) => {
                // The verdict is the error to surface; a failed
                // checkpoint write must not mask it.
                let _ = self.auto_checkpoint_now();
                Err(e)
            }
        }
    }
}

/// Builder for custom MultiNoC systems.
///
/// Nodes are numbered in the order they are added (the paper numbers the
/// serial IP 0, the processors 1 and 2, the memory 3). Each processor's
/// address map exposes windows onto all *other* memory-owning nodes:
/// first the other processors, then the memory IPs, in node order.
#[derive(Debug, Default)]
pub struct SystemBuilder {
    noc: Option<NocConfig>,
    serial: SerialConfig,
    clock_hz: Option<f64>,
    nodes: Vec<(RouterAddr, NodeKind)>,
    /// `(primary, backup)` router pairs added by
    /// [`replicated_memory_at`](Self::replicated_memory_at).
    replicas: Vec<(RouterAddr, RouterAddr)>,
}

impl SystemBuilder {
    /// Sets the network configuration (defaults to the paper's 2×2).
    pub fn noc(mut self, config: NocConfig) -> Self {
        self.noc = Some(config);
        self
    }

    /// Overrides the simulation kernel of the network — e.g.
    /// [`KernelMode::Parallel`] to
    /// shard big meshes over worker threads. All kernels produce
    /// bit-identical system behaviour; this is purely a wall-clock knob.
    pub fn kernel(mut self, kernel: hermes_noc::KernelMode) -> Self {
        let config = self.noc.unwrap_or_else(NocConfig::multinoc);
        self.noc = Some(config.with_kernel_mode(kernel));
        self
    }

    /// Sets the parallel kernel's barrier batching window (cycles per
    /// barrier round; `0` keeps the engine default). The system clock
    /// steps the network cycle by cycle, so this only changes pacing for
    /// workloads that drive the network in multi-cycle bursts — results
    /// are bit-identical either way.
    pub fn batch_window(mut self, cycles: u32) -> Self {
        let config = self.noc.unwrap_or_else(NocConfig::multinoc);
        self.noc = Some(config.with_batch_window(cycles));
        self
    }

    /// Sets the serial link timing (defaults to a fast functional link).
    pub fn serial(mut self, config: SerialConfig) -> Self {
        self.serial = config;
        self
    }

    /// Sets the clock frequency used for cycle↔time conversions
    /// (defaults to the prototype's 25 MHz).
    pub fn clock_hz(mut self, hz: f64) -> Self {
        self.clock_hz = Some(hz);
        self
    }

    /// Adds a serial IP at `addr` (at most one per system).
    pub fn serial_at(mut self, addr: RouterAddr) -> Self {
        self.nodes.push((addr, NodeKind::Serial));
        self
    }

    /// Adds an R8 processor IP at `addr`.
    pub fn processor_at(mut self, addr: RouterAddr) -> Self {
        self.nodes.push((addr, NodeKind::Processor));
        self
    }

    /// Adds a remote memory IP at `addr`.
    pub fn memory_at(mut self, addr: RouterAddr) -> Self {
        self.nodes.push((addr, NodeKind::Memory));
        self
    }

    /// Adds a *replicated* remote memory: the serving primary at
    /// `primary` plus a write-through backup at `backup` (distinct
    /// routers, so one router death cannot take both). Processors see a
    /// single memory window, addressed at the primary's node id; the
    /// backup holds no window of its own. If the network's online
    /// diagnosis later declares the serving member's node dead, the
    /// system promotes the survivor and clients fail over transparently.
    pub fn replicated_memory_at(mut self, primary: RouterAddr, backup: RouterAddr) -> Self {
        self.nodes.push((primary, NodeKind::Memory));
        self.nodes.push((backup, NodeKind::Memory));
        self.replicas.push((primary, backup));
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadLayout`] if routers repeat, lie outside the
    /// mesh, more than one serial IP was added, or a processor would have
    /// more remote windows than the address space holds;
    /// [`SystemError::Noc`] for an invalid network configuration.
    pub fn build(self) -> Result<System, SystemError> {
        let noc_config = self.noc.unwrap_or_else(NocConfig::multinoc);
        let noc = Noc::new(noc_config.clone())?;
        for (addr, _) in &self.nodes {
            if !noc_config.topology.contains(*addr) {
                return Err(SystemError::BadLayout(format!(
                    "router {addr} is outside the {}x{} grid",
                    noc_config.width(),
                    noc_config.height()
                )));
            }
        }
        for (i, (a, _)) in self.nodes.iter().enumerate() {
            if self.nodes[..i].iter().any(|(b, _)| a == b) {
                return Err(SystemError::BadLayout(format!(
                    "router {a} hosts more than one IP"
                )));
            }
        }
        let serial_count = self
            .nodes
            .iter()
            .filter(|(_, k)| *k == NodeKind::Serial)
            .count();
        if serial_count > 1 {
            return Err(SystemError::BadLayout(
                "at most one serial IP is supported".into(),
            ));
        }
        let table = NodeTable::new(self.nodes.clone());
        let io_router = table
            .nodes_of_kind(NodeKind::Serial)
            .next()
            .and_then(|n| table.router_of(n));

        // Resolve replica pairs to node ids and validate them.
        let mut directory = ServiceDirectory::new();
        let mut backup_nodes: Vec<NodeId> = Vec::new();
        for &(primary, backup) in &self.replicas {
            if primary == backup {
                return Err(SystemError::BadLayout(format!(
                    "replica pair at {primary} needs two distinct routers"
                )));
            }
            let (Some(p), Some(b)) = (table.node_of(primary), table.node_of(backup)) else {
                return Err(SystemError::BadLayout(format!(
                    "replica pair {primary}/{backup} lost its nodes"
                )));
            };
            directory.register(p, b);
            backup_nodes.push(b);
        }

        // Windows seen by each processor: other processors first, then
        // memory IPs, in node order (matches the paper's map). Replica
        // backups are invisible — clients address the logical primary
        // and the directory decides who serves it.
        let mut ips = Vec::with_capacity(self.nodes.len());
        for (i, &(addr, kind)) in self.nodes.iter().enumerate() {
            let node = NodeId(i as u8);
            let ip = match kind {
                NodeKind::Serial => Ip::Serial(SerialIp::new(addr, table.clone())),
                NodeKind::Memory => {
                    let mut m = MemoryIp::new(node, addr, crate::MEMORY_WORDS);
                    if let Some(g) = directory.group_of(node) {
                        if g.primary == node {
                            m.set_replica(table.router_of(g.backup));
                        }
                    }
                    Ip::Memory(m)
                }
                NodeKind::Processor => {
                    let mut windows: Vec<NodeId> = table
                        .nodes_of_kind(NodeKind::Processor)
                        .filter(|&n| n != node)
                        .collect();
                    windows.extend(
                        table
                            .nodes_of_kind(NodeKind::Memory)
                            .filter(|n| !backup_nodes.contains(n)),
                    );
                    if (windows.len() + 1) * usize::from(crate::MEMORY_WORDS)
                        > usize::from(crate::NOTIFY_ADDR)
                    {
                        return Err(SystemError::BadLayout(format!(
                            "{} remote windows do not fit the 16-bit address space",
                            windows.len()
                        )));
                    }
                    let map = AddressMap::paper(windows);
                    Ip::Processor(Box::new(ProcessorIp::new(
                        node,
                        addr,
                        crate::MEMORY_WORDS,
                        map,
                        table.clone(),
                        io_router,
                    )))
                }
            };
            ips.push(ip);
        }

        let mut system = System {
            noc,
            ips,
            table,
            link: SerialLink::new(self.serial),
            clock_hz: self.clock_hz.unwrap_or(25.0e6),
            counters: ServiceCounters::default(),
            trace: None,
            spans: None,
            vacated_routers: Vec::new(),
            watchdog: None,
            directory,
            dead_nodes: Vec::new(),
            processed_dead: BTreeSet::new(),
            failover_log: Vec::new(),
            auto_checkpoint: None,
        };
        // Every client starts with the (identity) directory view.
        system.refresh_tables();
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PROCESSOR_1, PROCESSOR_2, REMOTE_MEMORY, SERIAL};
    use r8::asm::assemble;

    #[test]
    fn paper_config_layout() {
        let sys = System::paper_config().unwrap();
        assert_eq!(sys.table().len(), 4);
        assert_eq!(sys.table().kind_of(SERIAL), Some(NodeKind::Serial));
        assert_eq!(sys.table().kind_of(PROCESSOR_1), Some(NodeKind::Processor));
        assert_eq!(sys.table().kind_of(PROCESSOR_2), Some(NodeKind::Processor));
        assert_eq!(sys.table().kind_of(REMOTE_MEMORY), Some(NodeKind::Memory));
        // P1's windows: P2 then memory.
        let map = sys.address_map(PROCESSOR_1).unwrap();
        assert_eq!(map.windows(), &[PROCESSOR_2, REMOTE_MEMORY]);
        assert_eq!(map.window_base(REMOTE_MEMORY), Some(2048));
        // P2's windows: P1 then memory.
        let map = sys.address_map(PROCESSOR_2).unwrap();
        assert_eq!(map.windows(), &[PROCESSOR_1, REMOTE_MEMORY]);
    }

    #[test]
    fn builder_rejects_bad_layouts() {
        let err = System::builder()
            .processor_at(RouterAddr::new(5, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, SystemError::BadLayout(_)));

        let err = System::builder()
            .processor_at(RouterAddr::new(0, 0))
            .memory_at(RouterAddr::new(0, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, SystemError::BadLayout(_)));

        let err = System::builder()
            .serial_at(RouterAddr::new(0, 0))
            .serial_at(RouterAddr::new(0, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, SystemError::BadLayout(_)));
    }

    #[test]
    fn direct_activation_runs_a_preloaded_program() {
        let mut sys = System::paper_config().unwrap();
        let program = assemble("LIW R1, 5\nLIW R2, 6\nMUL R3, R1, R2\nHALT").unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(100_000).unwrap();
        assert_eq!(sys.cpu(PROCESSOR_1).unwrap().reg(3), 30);
    }

    #[test]
    fn remote_memory_access_via_the_network() {
        // P1 stores to the remote memory window and reads it back.
        let mut sys = System::paper_config().unwrap();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(REMOTE_MEMORY)
            .unwrap();
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LIW R2, 777\n\
             ST  R2, R1, R0\n\
             LD  R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST  R3, R4, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(1_000_000).unwrap();
        // The value landed in the remote memory IP...
        assert_eq!(sys.memory(REMOTE_MEMORY).unwrap().read(0), 777);
        // ...and the read-back arrived in P1's local memory.
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x20), 777);
    }

    #[test]
    fn processors_share_each_others_memory() {
        // P1 writes into P2's local memory through its peer window.
        let mut sys = System::paper_config().unwrap();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(PROCESSOR_2)
            .unwrap();
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LIW R2, 0x1234\n\
             ADDI R1, 0x40\n\
             ST  R2, R1, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(1_000_000).unwrap();
        assert_eq!(sys.memory(PROCESSOR_2).unwrap().read(0x40), 0x1234);
    }

    #[test]
    fn wait_notify_synchronizes_two_processors() {
        // P1 waits for P2; P2 writes a flag into P1's memory then
        // notifies. P1 then copies the flag — it must see P2's value.
        let mut sys = System::paper_config().unwrap();
        let p1 = assemble(&format!(
            "LIW R2, {:#x}\n\
             XOR R0, R0, R0\n\
             LIW R3, {}\n\
             ST  R3, R0, R2     ; wait for P2\n\
             LIW R4, 0x80\n\
             LD  R5, R4, R0     ; read the flag P2 wrote\n\
             LIW R6, 0x81\n\
             ST  R5, R6, R0     ; copy it\n\
             HALT",
            crate::WAIT_ADDR,
            PROCESSOR_2.0,
        ))
        .unwrap();
        // P2: write 0xBEEF into P1's word 0x80, then notify P1.
        let p2_window = sys
            .address_map(PROCESSOR_2)
            .unwrap()
            .window_base(PROCESSOR_1)
            .unwrap();
        let p2 = assemble(&format!(
            "LIW R1, {}\n\
             XOR R0, R0, R0\n\
             LIW R2, 0xBEEF\n\
             ADDI R1, 0x80\n\
             ST  R2, R1, R0     ; flag into P1 memory\n\
             LIW R3, {:#x}\n\
             LIW R4, {}\n\
             ST  R4, R0, R3     ; notify P1\n\
             HALT",
            p2_window,
            crate::NOTIFY_ADDR,
            PROCESSOR_1.0,
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, p1.words());
        sys.memory_mut(PROCESSOR_2)
            .unwrap()
            .write_block(0, p2.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.activate_directly(PROCESSOR_2).unwrap();
        sys.run_until_halted(1_000_000).unwrap();
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x81), 0xBEEF);
    }

    #[test]
    fn deadlocked_wait_is_detected_as_idle() {
        // P1 waits for a notify that never comes.
        let mut sys = System::paper_config().unwrap();
        let program = assemble(&format!(
            "LIW R2, {:#x}\nXOR R0, R0, R0\nLIW R3, {}\nST R3, R0, R2\nHALT",
            crate::WAIT_ADDR,
            PROCESSOR_2.0,
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_idle(100_000).unwrap();
        assert_eq!(
            sys.processor_status(PROCESSOR_1).unwrap(),
            ProcessorStatus::Blocked
        );
        // run_until_halted correctly reports it never halts.
        assert!(matches!(
            sys.run_until_halted(10_000),
            Err(SystemError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        // P2 notifies first; P1 waits afterwards and must pass through.
        let mut sys = System::paper_config().unwrap();
        let p1 = assemble(&format!(
            "LIW R1, 0x300\n\
             XOR R0, R0, R0\n\
             ; burn some cycles so P2's notify arrives first\n\
             LIW R5, 50\n\
             spin: SUBI R5, 1\n\
             JMPZD waiting\n\
             JMPD spin\n\
             waiting: LIW R2, {:#x}\n\
             LIW R3, {}\n\
             ST  R3, R0, R2\n\
             LIW R4, 1\n\
             ST  R4, R1, R0\n\
             HALT",
            crate::WAIT_ADDR,
            PROCESSOR_2.0,
        ))
        .unwrap();
        let p2 = assemble(&format!(
            "XOR R0, R0, R0\nLIW R3, {:#x}\nLIW R4, {}\nST R4, R0, R3\nHALT",
            crate::NOTIFY_ADDR,
            PROCESSOR_1.0,
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, p1.words());
        sys.memory_mut(PROCESSOR_2)
            .unwrap()
            .write_block(0, p2.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.activate_directly(PROCESSOR_2).unwrap();
        sys.run_until_halted(1_000_000).unwrap();
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x300), 1);
    }

    #[test]
    fn link_death_mid_flight_is_survived_under_the_watchdog() {
        use hermes_noc::{CycleWindow, Routing};
        let mut config = NocConfig::multinoc();
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .unwrap();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(REMOTE_MEMORY)
            .unwrap();
        // Remote reads stall the core until the reply; remote writes are
        // posted and acknowledged asynchronously. Pre-seed the remote
        // word so the read does not race the (retransmitted) write.
        sys.memory_mut(REMOTE_MEMORY).unwrap().write(0, 777);
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LD  R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST  R3, R4, R0\n\
             LIW R2, 888\n\
             ADDI R1, 1\n\
             ST  R2, R1, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        // The direct route P1 → memory dies under the first message. The
        // fault plan arms the watchdog, which must not mistake the quiet
        // flush-and-reroute interval for a deadlock or a wedged link.
        sys.set_fault_plan(FaultPlan::new(11).with_link_down(
            RouterAddr::new(0, 1),
            Port::East,
            CycleWindow::open_ended(0),
        ))
        .unwrap();
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(2_000_000)
            .expect("the workload completes despite the dead link");
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x20), 777);
        assert_eq!(sys.memory(REMOTE_MEMORY).unwrap().read(1), 888);
        assert!(sys.degraded());
        assert_eq!(sys.dead_links(), vec![(RouterAddr::new(0, 1), Port::East)]);
        let counters = sys.retry_counters();
        assert!(
            counters.reroute_resets >= 1,
            "the epoch change reset the retry clock: {counters}"
        );
        assert!(sys.degradation_report().starts_with("degraded: dead links"));
    }

    #[test]
    fn long_quiet_startup_does_not_trip_the_watchdog() {
        // Regression: the dead-link window must measure contiguous
        // non-idle stall, not wall-clock since the last hop. At real
        // baud rates the Activate command takes > WATCHDOG_WINDOW
        // cycles to trickle over the serial link; the first packet the
        // serial IP then injects used to draw an instant DeadLink
        // verdict before moving a single hop.
        use crate::serial::{HostCommand, SerialConfig, SYNC_BYTE};
        let mut sys = System::builder()
            .noc(NocConfig::multinoc())
            .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .unwrap();
        // Any fault plan arms the watchdog; inject nothing.
        sys.set_fault_plan(FaultPlan::new(1)).unwrap();
        let program = assemble("LIW R1, 1\nHALT").unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.link_mut().host_send(&[SYNC_BYTE]);
        sys.link_mut()
            .host_send(&HostCommand::Activate { node: 1 }.to_bytes());
        sys.run_until_halted(1_000_000)
            .expect("a slow serial link is idle time, not a dead link");
    }

    #[test]
    fn cpu_fault_surfaces_in_run_until_halted() {
        let mut sys = System::paper_config().unwrap();
        sys.memory_mut(PROCESSOR_1).unwrap().write(0, 0x00B0);
        sys.activate_directly(PROCESSOR_1).unwrap();
        match sys.run_until_halted(100_000) {
            Err(SystemError::Cpu { node, .. }) => assert_eq!(node, PROCESSOR_1),
            other => panic!("expected a cpu fault, got {other:?}"),
        }
    }

    /// A 3×3 fault-tolerant mesh: serial at (0,0), one processor at
    /// (0,1), and a replicated memory — primary at (1,1), write-through
    /// backup at (2,2). Nodes 0..=3 in that order.
    fn replicated_system() -> System {
        use hermes_noc::Routing;
        let mut config = NocConfig::mesh(3, 3);
        config.routing = Routing::FaultTolerantXy;
        System::builder()
            .noc(config)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .replicated_memory_at(RouterAddr::new(1, 1), RouterAddr::new(2, 2))
            .build()
            .unwrap()
    }

    const REPLICA_PRIMARY: NodeId = NodeId(2);
    const REPLICA_BACKUP: NodeId = NodeId(3);

    #[test]
    fn replicated_build_hides_the_backup_window() {
        let sys = replicated_system();
        let map = sys.address_map(PROCESSOR_1).unwrap();
        assert!(map.window_base(REPLICA_PRIMARY).is_some());
        assert!(
            map.window_base(REPLICA_BACKUP).is_none(),
            "clients address the logical primary only"
        );
        assert_eq!(sys.directory().serving(REPLICA_PRIMARY), REPLICA_PRIMARY);
        assert!(sys.failover_report().is_empty());
        // A replica pair needs two distinct routers.
        assert!(System::builder()
            .noc(NocConfig::mesh(3, 3))
            .replicated_memory_at(RouterAddr::new(1, 1), RouterAddr::new(1, 1))
            .build()
            .is_err());
    }

    #[test]
    fn replicated_write_reaches_the_backup() {
        let mut sys = replicated_system();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(REPLICA_PRIMARY)
            .unwrap();
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             LIW R2, 4242\n\
             XOR R0, R0, R0\n\
             ST R2, R1, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(1_000_000).unwrap();
        assert_eq!(sys.memory(REPLICA_PRIMARY).unwrap().read(0), 4242);
        assert_eq!(
            sys.memory(REPLICA_BACKUP).unwrap().read(0),
            4242,
            "the write-through replica converged"
        );
        assert!(sys.replication_writes() >= 1);
        assert!(sys.failover_report().is_empty(), "nothing died");
    }

    #[test]
    fn primary_router_death_fails_over_to_the_backup() {
        let mut sys = replicated_system();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(REPLICA_PRIMARY)
            .unwrap();
        // Write 555 before the primary dies, spin long enough for the
        // death (cycle 2500) and the failover to land, then read the
        // word back through the same window and store it locally; a
        // second write exercises the post-failover write path.
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             LIW R2, 555\n\
             XOR R0, R0, R0\n\
             ST R2, R1, R0\n\
             LIW R5, 4000\n\
             loop: SUBI R5, 1\n\
             JMPZD go\n\
             JMPD loop\n\
             go: LD R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST R3, R4, R0\n\
             LIW R6, 666\n\
             ADDI R1, 1\n\
             ST R6, R1, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        let primary_router = RouterAddr::new(1, 1);
        sys.set_fault_plan(FaultPlan::new(21).with_router_down(primary_router, 2500))
            .unwrap();
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(4_000_000)
            .expect("the workload completes on the surviving replica");
        // The pre-death write was replicated and read back post-failover.
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x20), 555);
        // The post-failover write landed on the survivor.
        assert_eq!(sys.memory(REPLICA_BACKUP).unwrap().read(1), 666);
        assert_eq!(sys.dead_nodes(), &[REPLICA_PRIMARY]);
        let log = sys.failover_report();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].logical, REPLICA_PRIMARY);
        assert_eq!(log[0].from, REPLICA_PRIMARY);
        assert_eq!(log[0].to, REPLICA_BACKUP);
        assert_eq!(sys.directory().serving(REPLICA_PRIMARY), REPLICA_BACKUP);
        let report = sys.degradation_report();
        assert!(report.contains("dead routers"), "report: {report}");
        assert!(report.contains("failed over"), "report: {report}");
        let metrics = sys.metrics_snapshot();
        assert_eq!(metrics.get("multinoc_failovers_total", &[]), Some(1.0));
        assert_eq!(metrics.get("multinoc_node_deaths_total", &[]), Some(1.0));
    }

    #[test]
    fn failover_mid_read_is_answered_exactly_once() {
        // Regression: the primary dies with the client's read in flight.
        // The pending request must be retargeted to the survivor and the
        // core must see exactly one reply — not zero (hang) and not a
        // stale one from the dead router.
        let mut sys = replicated_system();
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(REPLICA_PRIMARY)
            .unwrap();
        // Pre-seed both members directly so the value is replicated
        // regardless of death timing.
        sys.memory_mut(REPLICA_PRIMARY).unwrap().write(0, 777);
        sys.memory_mut(REPLICA_BACKUP).unwrap().write(0, 777);
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LD R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST R3, R4, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        // The primary's router is dead from cycle 0: the very first read
        // is swallowed and must be recovered via retry + failover.
        sys.set_fault_plan(FaultPlan::new(22).with_router_down(RouterAddr::new(1, 1), 0))
            .unwrap();
        sys.activate_directly(PROCESSOR_1).unwrap();
        sys.run_until_halted(4_000_000)
            .expect("the read fails over to the survivor");
        assert_eq!(sys.memory(PROCESSOR_1).unwrap().read(0x20), 777);
        assert_eq!(sys.directory().serving(REPLICA_PRIMARY), REPLICA_BACKUP);
    }

    #[test]
    fn unreplicated_node_death_is_a_typed_error() {
        // A plain (unreplicated) memory dies: clients must get the typed
        // NodeDown error instead of hanging or a bare Unreachable.
        use hermes_noc::Routing;
        let mut config = NocConfig::mesh(3, 3);
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .unwrap();
        let memory = NodeId(2);
        let base = sys
            .address_map(PROCESSOR_1)
            .unwrap()
            .window_base(memory)
            .unwrap();
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LD R3, R1, R0\n\
             HALT"
        ))
        .unwrap();
        sys.memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        sys.set_fault_plan(FaultPlan::new(23).with_router_down(RouterAddr::new(1, 1), 0))
            .unwrap();
        sys.activate_directly(PROCESSOR_1).unwrap();
        match sys.run_until_halted(4_000_000) {
            Err(SystemError::NodeDown { node, router }) => {
                assert_eq!(node, memory);
                assert_eq!(router, RouterAddr::new(1, 1));
            }
            other => panic!("expected NodeDown, got {other:?}"),
        }
        assert_eq!(sys.dead_nodes(), &[memory]);
    }
}

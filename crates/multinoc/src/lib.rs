//! # MultiNoC — a multiprocessing system enabled by a network on chip
//!
//! Full-system reproduction of Mello et al., DATE 2004/05: two (or more)
//! R8 soft processors, a remote memory IP and an RS-232 serial IP,
//! connected by the Hermes NoC and driven by a host computer.
//!
//! The system is a **NUMA** architecture: each processor owns a 1K-word
//! local memory (acting as a unified instruction/data cache) but can also
//! reach the other processors' memories and the remote memory IP through
//! the network, using the address map of Fig. 6:
//!
//! | Address | Target |
//! |---|---|
//! | `0x0000–0x03FF` | local memory |
//! | `0x0400–0x07FF` | first peer window (the other processor in the 2×2 system) |
//! | `0x0800–0x0BFF` | second window (the remote memory IP) |
//! | `0xFFFD` | `notify` — wake the processor whose number is stored |
//! | `0xFFFE` | `wait` — block until notified by the stored processor |
//! | `0xFFFF` | I/O — `ST` performs `printf`, `LD` performs `scanf` |
//!
//! Nine NoC [services](service) implement remote memory access, processor
//! activation, host I/O and message-passing synchronization.
//!
//! ## Quickstart
//!
//! ```rust
//! use multinoc::{host::Host, System, PROCESSOR_1};
//! use r8::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = System::paper_config()?;
//! let program = assemble(
//!     "LIW  R1, 42\n\
//!      LIW  R2, 0x20\n\
//!      XOR  R0, R0, R0\n\
//!      ST   R1, R2, R0\n\
//!      HALT",
//! )?;
//! let mut host = Host::new();
//! host.synchronize(&mut system)?;
//! host.load_program(&mut system, PROCESSOR_1, program.words())?;
//! host.activate(&mut system, PROCESSOR_1)?;
//! system.run_until_halted(1_000_000)?;
//! let data = host.read_memory(&mut system, PROCESSOR_1, 0x20, 1)?;
//! assert_eq!(data, vec![42]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addrmap;
pub mod apps;
pub mod debug;
pub mod directory;
pub mod host;
pub mod memory;
pub mod net;
pub mod processor;
pub mod reliable;
pub mod serial;
pub mod serial_ip;
pub mod service;
pub mod span;
pub mod system;
pub mod trace;

mod error;
mod node;

pub use error::SystemError;
pub use node::{NodeId, NodeKind};
pub use system::{System, SystemBuilder};

/// Node id of the serial IP in [`System::paper_config`].
pub const SERIAL: NodeId = NodeId(0);
/// Node id of the first R8 processor in [`System::paper_config`].
pub const PROCESSOR_1: NodeId = NodeId(1);
/// Node id of the second R8 processor in [`System::paper_config`].
pub const PROCESSOR_2: NodeId = NodeId(2);
/// Node id of the remote memory IP in [`System::paper_config`].
pub const REMOTE_MEMORY: NodeId = NodeId(3);

/// Memory-mapped address of the `notify` command (§2.4).
pub const NOTIFY_ADDR: u16 = 0xFFFD;
/// Memory-mapped address of the `wait` command (§2.4).
pub const WAIT_ADDR: u16 = 0xFFFE;
/// Memory-mapped address of `printf` (ST) / `scanf` (LD) I/O (§2.4).
pub const IO_ADDR: u16 = 0xFFFF;

/// Words in each local / remote memory IP (1K × 16 bit, four BlockRAMs).
pub const MEMORY_WORDS: u16 = 1024;

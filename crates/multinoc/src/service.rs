//! The nine NoC services (§2.1 of the paper).
//!
//! "The Hermes NoC in the MultiNoC system internally supports nine
//! distinct packet formats, which define a set of services offered by the
//! communication network to the IP cores connected to it."
//!
//! A service message is carried in the *payload* of a Hermes packet (the
//! header and size flits are the network's own framing). The first
//! payload flit is the service code, the second the source router
//! address, followed by a 16-bit sequence number; 16-bit fields are then
//! split big-endian over as many flits as the flit width requires (two
//! flits per word with the paper's 8-bit flits).
//!
//! ## Reliability extension
//!
//! Two fields extend the paper's wire format so the system survives an
//! unreliable network (see `DESIGN.md`, "Fault model and recovery"):
//!
//! - every message ends in **two check flits**, a Fletcher-style
//!   [`checksum`] of all preceding payload flits. Any bit flip in one
//!   flit — and any pair of single-bit flips in two flits, for every
//!   packet length the network can carry — changes at least one check
//!   flit, so [`Message::from_packet`] detects it and returns
//!   [`ServiceError::Checksum`] instead of a mangled message;
//! - every message carries a **sequence number** right after the source
//!   address. `0` means "unsequenced" (fire-and-forget, the paper's
//!   original semantics); a non-zero value identifies the message for
//!   acknowledgement, retransmission and duplicate suppression. The
//!   tenth service code, [`Service::Ack`], acknowledges the sequence
//!   number it carries in its own `seq` field.

use std::fmt;

use hermes_noc::{Packet, RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

/// Service codes, numbered in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ServiceCode {
    /// Request data from a memory.
    ReadFromMemory = 1,
    /// Response to a read request.
    ReadReturn = 2,
    /// Store data into some memory of the system.
    WriteInMemory = 3,
    /// Start a processor executing from address 0 of its local memory.
    ActivateProcessor = 4,
    /// Processor sends data to the host computer.
    Printf = 5,
    /// Processor requests user input from the host computer.
    Scanf = 6,
    /// Requested input data arriving from the host computer.
    ScanfReturn = 7,
    /// Wake up a processor blocked by `wait`.
    Notify = 8,
    /// Block a processor until it is notified.
    Wait = 9,
    /// Acknowledge a sequenced message (reliability extension; not one
    /// of the paper's nine services).
    Ack = 10,
    /// Primary → backup write-through replication of an accepted
    /// `WriteInMemory` (replicated-memory extension; carries the
    /// *originating* writer so the backup's duplicate suppression keeps
    /// working across a failover).
    ReplicateWrite = 11,
    /// Broadcast by a just-promoted backup: any value obtained from the
    /// named (now dead) router should be discarded and re-fetched from
    /// the new serving replica.
    ReplicaInvalidate = 12,
}

impl ServiceCode {
    pub(crate) fn from_flit(flit: u16) -> Option<Self> {
        Some(match flit {
            1 => ServiceCode::ReadFromMemory,
            2 => ServiceCode::ReadReturn,
            3 => ServiceCode::WriteInMemory,
            4 => ServiceCode::ActivateProcessor,
            5 => ServiceCode::Printf,
            6 => ServiceCode::Scanf,
            7 => ServiceCode::ScanfReturn,
            8 => ServiceCode::Notify,
            9 => ServiceCode::Wait,
            10 => ServiceCode::Ack,
            11 => ServiceCode::ReplicateWrite,
            12 => ServiceCode::ReplicaInvalidate,
            _ => return None,
        })
    }
}

/// A decoded service message (without its source address).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Service {
    /// Request `count` words starting at `addr` from the target's memory.
    ReadFromMemory {
        /// First word address.
        addr: u16,
        /// Number of words.
        count: u16,
    },
    /// Reply carrying the requested words.
    ReadReturn {
        /// First word address (echoed from the request).
        addr: u16,
        /// The words read.
        data: Vec<u16>,
    },
    /// Store `data` starting at `addr` in the target's memory.
    WriteInMemory {
        /// First word address.
        addr: u16,
        /// The words to store.
        data: Vec<u16>,
    },
    /// Start the target processor from address 0.
    ActivateProcessor,
    /// Output words for the host console.
    Printf {
        /// The words printed.
        data: Vec<u16>,
    },
    /// Request one word of user input.
    Scanf,
    /// The requested input word.
    ScanfReturn {
        /// The input value.
        value: u16,
    },
    /// Wake the target if (or when) it waits on `from`.
    Notify {
        /// Node number of the notifying processor.
        from: u16,
    },
    /// Block the target until it is notified by node `from`.
    Wait {
        /// Node number whose notify releases the target.
        from: u16,
    },
    /// Acknowledge the sequenced message whose sequence number this
    /// message carries in [`Message::seq`].
    Ack,
    /// Write-through replication of an accepted write, primary → backup.
    /// The originating writer rides along so the backup registers the
    /// write under the *client's* identity too: after a failover the
    /// client's retransmission of the same write is then recognised as a
    /// duplicate instead of being applied twice.
    ReplicateWrite {
        /// Router of the client whose write is being replicated.
        origin: RouterAddr,
        /// The client's sequence number for that write (0 if it was
        /// unsequenced).
        origin_seq: u16,
        /// First word address.
        addr: u16,
        /// The words written.
        data: Vec<u16>,
    },
    /// A promoted backup telling clients that values fetched from the
    /// dead router `stale` are no longer authoritative.
    ReplicaInvalidate {
        /// Router of the demoted (dead) primary.
        stale: RouterAddr,
    },
}

impl Service {
    /// The service code of this message.
    pub fn code(&self) -> ServiceCode {
        match self {
            Service::ReadFromMemory { .. } => ServiceCode::ReadFromMemory,
            Service::ReadReturn { .. } => ServiceCode::ReadReturn,
            Service::WriteInMemory { .. } => ServiceCode::WriteInMemory,
            Service::ActivateProcessor => ServiceCode::ActivateProcessor,
            Service::Printf { .. } => ServiceCode::Printf,
            Service::Scanf => ServiceCode::Scanf,
            Service::ScanfReturn { .. } => ServiceCode::ScanfReturn,
            Service::Notify { .. } => ServiceCode::Notify,
            Service::Wait { .. } => ServiceCode::Wait,
            Service::Ack => ServiceCode::Ack,
            Service::ReplicateWrite { .. } => ServiceCode::ReplicateWrite,
            Service::ReplicaInvalidate { .. } => ServiceCode::ReplicaInvalidate,
        }
    }
}

/// Snapshot helper: length-prefixed `u16` word block.
pub(crate) fn put_words(w: &mut SnapshotWriter, words: &[u16]) {
    w.put_usize(words.len());
    for &word in words {
        w.put_u16(word);
    }
}

/// Snapshot helper: reads a word block written by [`put_words`].
pub(crate) fn take_words(r: &mut SnapshotReader<'_>) -> Result<Vec<u16>, SnapshotError> {
    let len = r.take_len(2)?;
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        words.push(r.take_u16()?);
    }
    Ok(words)
}

impl Service {
    /// Snapshot codec: tag byte (the service code) followed by the
    /// variant's fields. Distinct from the wire format, which packs
    /// fields into flit-width chunks and appends check flits.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.code() as u8);
        match self {
            Service::ReadFromMemory { addr, count } => {
                w.put_u16(*addr);
                w.put_u16(*count);
            }
            Service::ReadReturn { addr, data } | Service::WriteInMemory { addr, data } => {
                w.put_u16(*addr);
                put_words(w, data);
            }
            Service::ActivateProcessor | Service::Scanf | Service::Ack => {}
            Service::Printf { data } => put_words(w, data),
            Service::ScanfReturn { value } => w.put_u16(*value),
            Service::Notify { from } | Service::Wait { from } => w.put_u16(*from),
            Service::ReplicateWrite {
                origin,
                origin_seq,
                addr,
                data,
            } => {
                w.put_addr(*origin);
                w.put_u16(*origin_seq);
                w.put_u16(*addr);
                put_words(w, data);
            }
            Service::ReplicaInvalidate { stale } => w.put_addr(*stale),
        }
    }

    /// Decodes a service written by [`snapshot_write`](Self::snapshot_write),
    /// validating embedded router addresses against the mesh shape.
    pub(crate) fn snapshot_read(
        r: &mut SnapshotReader<'_>,
        width: u8,
        height: u8,
    ) -> Result<Self, SnapshotError> {
        let tag = r.take_u8()?;
        let code = ServiceCode::from_flit(u16::from(tag))
            .ok_or(SnapshotError::Malformed("service code tag"))?;
        Ok(match code {
            ServiceCode::ReadFromMemory => Service::ReadFromMemory {
                addr: r.take_u16()?,
                count: r.take_u16()?,
            },
            ServiceCode::ReadReturn => Service::ReadReturn {
                addr: r.take_u16()?,
                data: take_words(r)?,
            },
            ServiceCode::WriteInMemory => Service::WriteInMemory {
                addr: r.take_u16()?,
                data: take_words(r)?,
            },
            ServiceCode::ActivateProcessor => Service::ActivateProcessor,
            ServiceCode::Printf => Service::Printf {
                data: take_words(r)?,
            },
            ServiceCode::Scanf => Service::Scanf,
            ServiceCode::ScanfReturn => Service::ScanfReturn {
                value: r.take_u16()?,
            },
            ServiceCode::Notify => Service::Notify {
                from: r.take_u16()?,
            },
            ServiceCode::Wait => Service::Wait {
                from: r.take_u16()?,
            },
            ServiceCode::Ack => Service::Ack,
            ServiceCode::ReplicateWrite => Service::ReplicateWrite {
                origin: r.take_addr_in(width, height)?,
                origin_seq: r.take_u16()?,
                addr: r.take_u16()?,
                data: take_words(r)?,
            },
            ServiceCode::ReplicaInvalidate => Service::ReplicaInvalidate {
                stale: r.take_addr_in(width, height)?,
            },
        })
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Service::ReadFromMemory { addr, count } => {
                write!(f, "read from memory [{addr:#06x}; {count}]")
            }
            Service::ReadReturn { addr, data } => {
                write!(f, "read return [{addr:#06x}; {}]", data.len())
            }
            Service::WriteInMemory { addr, data } => {
                write!(f, "write in memory [{addr:#06x}; {}]", data.len())
            }
            Service::ActivateProcessor => write!(f, "activate processor"),
            Service::Printf { data } => write!(f, "printf ({} words)", data.len()),
            Service::Scanf => write!(f, "scanf"),
            Service::ScanfReturn { value } => write!(f, "scanf return {value:#06x}"),
            Service::Notify { from } => write!(f, "notify from node {from}"),
            Service::Wait { from } => write!(f, "wait for node {from}"),
            Service::Ack => write!(f, "ack"),
            Service::ReplicateWrite {
                origin, addr, data, ..
            } => {
                write!(
                    f,
                    "replicate write from {origin} [{addr:#06x}; {}]",
                    data.len()
                )
            }
            Service::ReplicaInvalidate { stale } => {
                write!(f, "invalidate replica of {stale}")
            }
        }
    }
}

/// A service message together with the router that sent it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Router address of the sender.
    pub src: RouterAddr,
    /// Sequence number; `0` means unsequenced (fire-and-forget). For
    /// [`Service::Ack`] this is the sequence number being acknowledged,
    /// for responses ([`Service::ReadReturn`], [`Service::ScanfReturn`])
    /// it echoes the request's sequence number.
    pub seq: u16,
    /// The service payload.
    pub service: Service,
}

/// Malformed service payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Payload shorter than the fixed fields of its service.
    Truncated,
    /// Unknown service code.
    UnknownCode(u16),
    /// Variable-length data did not align to whole 16-bit words.
    RaggedData,
    /// The trailing check flits did not match the payload: at least one
    /// flit was corrupted in flight.
    Checksum,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Truncated => write!(f, "service payload truncated"),
            ServiceError::UnknownCode(c) => write!(f, "unknown service code {c}"),
            ServiceError::RaggedData => write!(f, "service data not word-aligned"),
            ServiceError::Checksum => write!(f, "service checksum mismatch"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Flits needed to carry one 16-bit word at the given flit width.
pub fn flits_per_word(flit_bits: u8) -> usize {
    usize::from(16_u8.div_ceil(flit_bits))
}

/// Packs a 16-bit word into big-endian flit chunks.
pub fn pack_u16(value: u16, flit_bits: u8, out: &mut Vec<u16>) {
    let chunks = flits_per_word(flit_bits);
    let mask = if flit_bits >= 16 {
        u16::MAX
    } else {
        (1 << flit_bits) - 1
    };
    for i in (0..chunks).rev() {
        let shift = (i as u8) * flit_bits;
        let chunk = if shift >= 16 {
            0
        } else {
            (value >> shift) & mask
        };
        out.push(chunk);
    }
}

/// Reads one big-endian packed word from `flits` at `pos`, advancing it.
pub fn unpack_u16(flits: &[u16], pos: &mut usize, flit_bits: u8) -> Result<u16, ServiceError> {
    let chunks = flits_per_word(flit_bits);
    if *pos + chunks > flits.len() {
        return Err(ServiceError::Truncated);
    }
    let mut value: u32 = 0;
    for _ in 0..chunks {
        value = (value << flit_bits) | u32::from(flits[*pos]);
        *pos += 1;
    }
    Ok(value as u16)
}

/// Fletcher-style checksum of a flit sequence at the given flit width:
/// `c0` is the sum of the flits and `c1` the sum of the running sums,
/// both modulo `2^flit_bits − 1`. The two values travel as the last two
/// payload flits.
///
/// A single-bit flip changes a flit by ±2^b with `b < flit_bits`, never
/// a multiple of the modulus, so `c0` always catches it. Two single-bit
/// flips that cancel in `c0` must be exact negations, and then cancel in
/// the position-weighted `c1` only when the flits lie a full modulus
/// apart — longer than any packet the network accepts. (A plain XOR
/// parity, by contrast, silently passes any two flips of the same bit
/// position.)
pub fn checksum(flits: &[u16], flit_bits: u8) -> (u16, u16) {
    let m = (1u64 << flit_bits) - 1;
    let mut c0: u64 = 0;
    let mut c1: u64 = 0;
    for &f in flits {
        c0 = (c0 + u64::from(f)) % m;
        c1 = (c1 + c0) % m;
    }
    (c0 as u16, c1 as u16)
}

impl Message {
    /// Creates an unsequenced message (`seq == 0`).
    pub fn new(src: RouterAddr, service: Service) -> Self {
        Self {
            src,
            seq: 0,
            service,
        }
    }

    /// Sets the sequence number.
    pub fn with_seq(mut self, seq: u16) -> Self {
        self.seq = seq;
        self
    }

    /// Encodes the message into a network packet for router `dest`.
    pub fn to_packet(&self, dest: RouterAddr, flit_bits: u8) -> Packet {
        let mut payload = Vec::new();
        payload.push(self.service.code() as u16);
        payload.push(self.src.to_flit(flit_bits));
        pack_u16(self.seq, flit_bits, &mut payload);
        let mut word = |v: u16| pack_u16(v, flit_bits, &mut payload);
        match &self.service {
            Service::ReadFromMemory { addr, count } => {
                word(*addr);
                word(*count);
            }
            Service::ReadReturn { addr, data } | Service::WriteInMemory { addr, data } => {
                word(*addr);
                for &d in data {
                    word(d);
                }
            }
            Service::ActivateProcessor | Service::Scanf => {}
            Service::Printf { data } => {
                for &d in data {
                    word(d);
                }
            }
            Service::ScanfReturn { value } => word(*value),
            Service::Notify { from } | Service::Wait { from } => word(*from),
            Service::Ack => {}
            Service::ReplicateWrite {
                origin,
                origin_seq,
                addr,
                data,
            } => {
                payload.push(origin.to_flit(flit_bits));
                pack_u16(*origin_seq, flit_bits, &mut payload);
                pack_u16(*addr, flit_bits, &mut payload);
                for &d in data {
                    pack_u16(d, flit_bits, &mut payload);
                }
            }
            Service::ReplicaInvalidate { stale } => {
                payload.push(stale.to_flit(flit_bits));
            }
        }
        let (c0, c1) = checksum(&payload, flit_bits);
        payload.push(c0);
        payload.push(c1);
        Packet::new(dest, payload)
    }

    /// Decodes a delivered packet payload back into a message, verifying
    /// and stripping the two trailing check flits.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] if the payload is truncated, fails its checksum,
    /// carries an unknown code, or its variable-length data is not
    /// word-aligned.
    pub fn from_packet(packet: &Packet, flit_bits: u8) -> Result<Self, ServiceError> {
        let all = packet.payload();
        // Minimum: code + src + seq word + two check flits.
        if all.len() < 4 + flits_per_word(flit_bits) {
            return Err(ServiceError::Truncated);
        }
        let (flits, check) = all.split_at(all.len() - 2);
        if checksum(flits, flit_bits) != (check[0], check[1]) {
            return Err(ServiceError::Checksum);
        }
        let code = ServiceCode::from_flit(flits[0]).ok_or(ServiceError::UnknownCode(flits[0]))?;
        let src = RouterAddr::from_flit(flits[1], flit_bits);
        let mut pos = 2;
        let seq = unpack_u16(flits, &mut pos, flit_bits)?;
        let read_word = |pos: &mut usize| unpack_u16(flits, pos, flit_bits);
        let read_rest = |pos: &mut usize| -> Result<Vec<u16>, ServiceError> {
            let per = flits_per_word(flit_bits);
            if !(flits.len() - *pos).is_multiple_of(per) {
                return Err(ServiceError::RaggedData);
            }
            let mut data = Vec::with_capacity((flits.len() - *pos) / per);
            while *pos < flits.len() {
                data.push(unpack_u16(flits, pos, flit_bits)?);
            }
            Ok(data)
        };
        let service = match code {
            ServiceCode::ReadFromMemory => Service::ReadFromMemory {
                addr: read_word(&mut pos)?,
                count: read_word(&mut pos)?,
            },
            ServiceCode::ReadReturn => Service::ReadReturn {
                addr: read_word(&mut pos)?,
                data: read_rest(&mut pos)?,
            },
            ServiceCode::WriteInMemory => Service::WriteInMemory {
                addr: read_word(&mut pos)?,
                data: read_rest(&mut pos)?,
            },
            ServiceCode::ActivateProcessor => Service::ActivateProcessor,
            ServiceCode::Printf => Service::Printf {
                data: read_rest(&mut pos)?,
            },
            ServiceCode::Scanf => Service::Scanf,
            ServiceCode::ScanfReturn => Service::ScanfReturn {
                value: read_word(&mut pos)?,
            },
            ServiceCode::Notify => Service::Notify {
                from: read_word(&mut pos)?,
            },
            ServiceCode::Wait => Service::Wait {
                from: read_word(&mut pos)?,
            },
            ServiceCode::Ack => Service::Ack,
            ServiceCode::ReplicateWrite => {
                if pos >= flits.len() {
                    return Err(ServiceError::Truncated);
                }
                let origin = RouterAddr::from_flit(flits[pos], flit_bits);
                pos += 1;
                Service::ReplicateWrite {
                    origin,
                    origin_seq: read_word(&mut pos)?,
                    addr: read_word(&mut pos)?,
                    data: read_rest(&mut pos)?,
                }
            }
            ServiceCode::ReplicaInvalidate => {
                if pos >= flits.len() {
                    return Err(ServiceError::Truncated);
                }
                Service::ReplicaInvalidate {
                    stale: RouterAddr::from_flit(flits[pos], flit_bits),
                }
            }
        };
        Ok(Self { src, seq, service })
    }

    /// Maximum words per read/write/printf data block so the packet stays
    /// within the flit-width packet size limit.
    pub fn max_data_words(flit_bits: u8) -> usize {
        let max_payload = (1usize << flit_bits)
            .saturating_sub(2)
            .min(if flit_bits >= 16 {
                usize::from(u16::MAX)
            } else {
                (1 << flit_bits) - 1
            });
        let per = flits_per_word(flit_bits);
        // code + src + seq + addr + two check flits leave the rest.
        (max_payload - 4 - 2 * per) / per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(service: Service) {
        let src = RouterAddr::new(0, 1);
        let dest = RouterAddr::new(1, 1);
        for flit_bits in [8u8, 16] {
            let msg = Message::new(src, service.clone());
            let packet = msg.to_packet(dest, flit_bits);
            assert_eq!(packet.dest(), dest);
            let back = Message::from_packet(&packet, flit_bits).expect("decodes");
            assert_eq!(back, msg, "flit width {flit_bits}");
        }
    }

    #[test]
    fn all_nine_services_round_trip() {
        round_trip(Service::ReadFromMemory {
            addr: 0x20,
            count: 4,
        });
        round_trip(Service::ReadReturn {
            addr: 0x20,
            data: vec![1, 0xFFFF, 42],
        });
        round_trip(Service::WriteInMemory {
            addr: 0x3FF,
            data: vec![0xABCD],
        });
        round_trip(Service::ActivateProcessor);
        round_trip(Service::Printf {
            data: vec![72, 105],
        });
        round_trip(Service::Scanf);
        round_trip(Service::ScanfReturn { value: 0xBEEF });
        round_trip(Service::Notify { from: 2 });
        round_trip(Service::Wait { from: 1 });
    }

    #[test]
    fn replication_services_round_trip() {
        round_trip(Service::ReplicateWrite {
            origin: RouterAddr::new(2, 1),
            origin_seq: 0x1234,
            addr: 0x3FF,
            data: vec![0xABCD, 7],
        });
        round_trip(Service::ReplicateWrite {
            origin: RouterAddr::new(0, 0),
            origin_seq: 1,
            addr: 0,
            data: vec![],
        });
        round_trip(Service::ReplicaInvalidate {
            stale: RouterAddr::new(1, 2),
        });
    }

    #[test]
    fn ack_and_sequence_numbers_round_trip() {
        let src = RouterAddr::new(1, 0);
        for flit_bits in [8u8, 16] {
            let msg = Message::new(src, Service::Ack).with_seq(0xBEEF);
            let packet = msg.to_packet(RouterAddr::new(0, 0), flit_bits);
            let back = Message::from_packet(&packet, flit_bits).expect("decodes");
            assert_eq!(back.seq, 0xBEEF);
            assert_eq!(back.service, Service::Ack);
        }
    }

    #[test]
    fn empty_data_blocks_round_trip() {
        round_trip(Service::Printf { data: vec![] });
        round_trip(Service::WriteInMemory {
            addr: 0,
            data: vec![],
        });
    }

    /// Appends the two check flits to a hand-built 8-bit payload.
    fn with_ck(mut flits: Vec<u16>) -> Vec<u16> {
        let (c0, c1) = checksum(&flits, 8);
        flits.extend([c0, c1]);
        flits
    }

    #[test]
    fn wire_format_is_as_documented() {
        // 8-bit flits: [code, src, seq_hi, seq_lo, addr_hi, addr_lo,
        // count_hi, count_lo, c0, c1].
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::ReadFromMemory {
                addr: 0x0120,
                count: 1,
            },
        )
        .with_seq(0x0007);
        let packet = msg.to_packet(RouterAddr::new(1, 1), 8);
        assert_eq!(
            packet.payload(),
            &[1, 0x00, 0x00, 0x07, 0x01, 0x20, 0x00, 0x01, 0x2A, 0x90]
        );
        // c0 = sum of the fields mod 255, c1 = sum of running sums.
        assert_eq!(checksum(&packet.payload()[..8], 8), (0x2A, 0x90));
    }

    #[test]
    fn decode_rejects_garbage() {
        // Unknown code with *valid* check flits still fails.
        let p = Packet::new(RouterAddr::new(0, 0), with_ck(vec![99, 0, 0, 0]));
        assert_eq!(
            Message::from_packet(&p, 8),
            Err(ServiceError::UnknownCode(99))
        );
        let p = Packet::new(RouterAddr::new(0, 0), vec![1]);
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::Truncated));
        let p = Packet::new(RouterAddr::new(0, 0), vec![1, 0, 0, 0, 0]);
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::Truncated));
        // Ragged printf data (odd flit count at 8-bit width), check ok.
        let p = Packet::new(RouterAddr::new(0, 0), with_ck(vec![5, 0, 0, 0, 1, 2, 3]));
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::RaggedData));
    }

    #[test]
    fn checksum_catches_any_single_flit_corruption() {
        let msg = Message::new(
            RouterAddr::new(0, 1),
            Service::ReadReturn {
                addr: 0x40,
                data: vec![0x1234, 0x00FF],
            },
        )
        .with_seq(3);
        let good = msg.to_packet(RouterAddr::new(1, 1), 8);
        assert!(Message::from_packet(&good, 8).is_ok());
        for i in 0..good.payload().len() {
            for bit in 0..8 {
                let mut flits = good.payload().to_vec();
                flits[i] ^= 1 << bit;
                let bad = Packet::new(good.dest(), flits);
                match Message::from_packet(&bad, 8) {
                    Err(ServiceError::Checksum) => {}
                    other => panic!("corruption of flit {i} bit {bit} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn checksum_catches_same_bit_double_corruption() {
        // The failure mode that breaks a plain XOR parity: the same bit
        // flipped in two different flits. The position-weighted second
        // check flit must still catch every such pair.
        let msg = Message::new(
            RouterAddr::new(0, 1),
            Service::WriteInMemory {
                addr: 0x10,
                data: vec![0x5555, 0xAAAA, 0x0F0F],
            },
        )
        .with_seq(9);
        let good = msg.to_packet(RouterAddr::new(1, 1), 8);
        let n = good.payload().len();
        for i in 0..n {
            for j in (i + 1)..n {
                for bit in 0..8 {
                    let mut flits = good.payload().to_vec();
                    flits[i] ^= 1 << bit;
                    flits[j] ^= 1 << bit;
                    let bad = Packet::new(good.dest(), flits);
                    match Message::from_packet(&bad, 8) {
                        Err(ServiceError::Checksum) => {}
                        other => {
                            panic!("flits {i},{j} bit {bit} corrupted, got {other:?}")
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_codec_round_trips_every_service() {
        let services = vec![
            Service::ReadFromMemory {
                addr: 0x20,
                count: 4,
            },
            Service::ReadReturn {
                addr: 0x20,
                data: vec![1, 0xFFFF, 42],
            },
            Service::WriteInMemory {
                addr: 0x3FF,
                data: vec![0xABCD],
            },
            Service::ActivateProcessor,
            Service::Printf {
                data: vec![72, 105],
            },
            Service::Scanf,
            Service::ScanfReturn { value: 0xBEEF },
            Service::Notify { from: 2 },
            Service::Wait { from: 1 },
            Service::Ack,
            Service::ReplicateWrite {
                origin: RouterAddr::new(1, 0),
                origin_seq: 7,
                addr: 0x10,
                data: vec![9, 8],
            },
            Service::ReplicaInvalidate {
                stale: RouterAddr::new(0, 1),
            },
        ];
        let mut w = SnapshotWriter::new();
        for s in &services {
            s.snapshot_write(&mut w);
        }
        let bytes = w.finish(hermes_noc::snapshot::KIND_SYSTEM);
        let mut r = SnapshotReader::open(&bytes, hermes_noc::snapshot::KIND_SYSTEM).unwrap();
        for s in &services {
            assert_eq!(&Service::snapshot_read(&mut r, 2, 2).unwrap(), s);
        }
        r.finish().unwrap();
    }

    #[test]
    fn pack_unpack_words() {
        let mut flits = Vec::new();
        pack_u16(0xABCD, 8, &mut flits);
        assert_eq!(flits, vec![0xAB, 0xCD]);
        let mut pos = 0;
        assert_eq!(unpack_u16(&flits, &mut pos, 8).unwrap(), 0xABCD);
        assert_eq!(pos, 2);

        let mut flits = Vec::new();
        pack_u16(0xABCD, 4, &mut flits);
        assert_eq!(flits, vec![0xA, 0xB, 0xC, 0xD]);
        let mut pos = 0;
        assert_eq!(unpack_u16(&flits, &mut pos, 4).unwrap(), 0xABCD);

        let mut flits = Vec::new();
        pack_u16(0xABCD, 16, &mut flits);
        assert_eq!(flits, vec![0xABCD]);
    }

    #[test]
    fn max_data_words_fits_packets() {
        // 8-bit flits: 254 payload max; code+src+check(4) + seq(2) +
        // addr(2) = 8; (254-8)/2 = 123.
        assert_eq!(Message::max_data_words(8), 123);
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::WriteInMemory {
                addr: 0,
                data: vec![0; Message::max_data_words(8)],
            },
        );
        let packet = msg.to_packet(RouterAddr::new(1, 1), 8);
        assert!(packet.payload().len() <= 254);
    }
}

//! The nine NoC services (§2.1 of the paper).
//!
//! "The Hermes NoC in the MultiNoC system internally supports nine
//! distinct packet formats, which define a set of services offered by the
//! communication network to the IP cores connected to it."
//!
//! A service message is carried in the *payload* of a Hermes packet (the
//! header and size flits are the network's own framing). The first
//! payload flit is the service code, the second the source router
//! address; 16-bit fields are then split big-endian over as many flits as
//! the flit width requires (two flits per word with the paper's 8-bit
//! flits).

use std::fmt;

use hermes_noc::{Packet, RouterAddr};

/// Service codes, numbered in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ServiceCode {
    /// Request data from a memory.
    ReadFromMemory = 1,
    /// Response to a read request.
    ReadReturn = 2,
    /// Store data into some memory of the system.
    WriteInMemory = 3,
    /// Start a processor executing from address 0 of its local memory.
    ActivateProcessor = 4,
    /// Processor sends data to the host computer.
    Printf = 5,
    /// Processor requests user input from the host computer.
    Scanf = 6,
    /// Requested input data arriving from the host computer.
    ScanfReturn = 7,
    /// Wake up a processor blocked by `wait`.
    Notify = 8,
    /// Block a processor until it is notified.
    Wait = 9,
}

impl ServiceCode {
    fn from_flit(flit: u16) -> Option<Self> {
        Some(match flit {
            1 => ServiceCode::ReadFromMemory,
            2 => ServiceCode::ReadReturn,
            3 => ServiceCode::WriteInMemory,
            4 => ServiceCode::ActivateProcessor,
            5 => ServiceCode::Printf,
            6 => ServiceCode::Scanf,
            7 => ServiceCode::ScanfReturn,
            8 => ServiceCode::Notify,
            9 => ServiceCode::Wait,
            _ => return None,
        })
    }
}

/// A decoded service message (without its source address).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Service {
    /// Request `count` words starting at `addr` from the target's memory.
    ReadFromMemory {
        /// First word address.
        addr: u16,
        /// Number of words.
        count: u16,
    },
    /// Reply carrying the requested words.
    ReadReturn {
        /// First word address (echoed from the request).
        addr: u16,
        /// The words read.
        data: Vec<u16>,
    },
    /// Store `data` starting at `addr` in the target's memory.
    WriteInMemory {
        /// First word address.
        addr: u16,
        /// The words to store.
        data: Vec<u16>,
    },
    /// Start the target processor from address 0.
    ActivateProcessor,
    /// Output words for the host console.
    Printf {
        /// The words printed.
        data: Vec<u16>,
    },
    /// Request one word of user input.
    Scanf,
    /// The requested input word.
    ScanfReturn {
        /// The input value.
        value: u16,
    },
    /// Wake the target if (or when) it waits on `from`.
    Notify {
        /// Node number of the notifying processor.
        from: u16,
    },
    /// Block the target until it is notified by node `from`.
    Wait {
        /// Node number whose notify releases the target.
        from: u16,
    },
}

impl Service {
    /// The service code of this message.
    pub fn code(&self) -> ServiceCode {
        match self {
            Service::ReadFromMemory { .. } => ServiceCode::ReadFromMemory,
            Service::ReadReturn { .. } => ServiceCode::ReadReturn,
            Service::WriteInMemory { .. } => ServiceCode::WriteInMemory,
            Service::ActivateProcessor => ServiceCode::ActivateProcessor,
            Service::Printf { .. } => ServiceCode::Printf,
            Service::Scanf => ServiceCode::Scanf,
            Service::ScanfReturn { .. } => ServiceCode::ScanfReturn,
            Service::Notify { .. } => ServiceCode::Notify,
            Service::Wait { .. } => ServiceCode::Wait,
        }
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Service::ReadFromMemory { addr, count } => {
                write!(f, "read from memory [{addr:#06x}; {count}]")
            }
            Service::ReadReturn { addr, data } => {
                write!(f, "read return [{addr:#06x}; {}]", data.len())
            }
            Service::WriteInMemory { addr, data } => {
                write!(f, "write in memory [{addr:#06x}; {}]", data.len())
            }
            Service::ActivateProcessor => write!(f, "activate processor"),
            Service::Printf { data } => write!(f, "printf ({} words)", data.len()),
            Service::Scanf => write!(f, "scanf"),
            Service::ScanfReturn { value } => write!(f, "scanf return {value:#06x}"),
            Service::Notify { from } => write!(f, "notify from node {from}"),
            Service::Wait { from } => write!(f, "wait for node {from}"),
        }
    }
}

/// A service message together with the router that sent it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Router address of the sender.
    pub src: RouterAddr,
    /// The service payload.
    pub service: Service,
}

/// Malformed service payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Payload shorter than the fixed fields of its service.
    Truncated,
    /// Unknown service code.
    UnknownCode(u16),
    /// Variable-length data did not align to whole 16-bit words.
    RaggedData,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Truncated => write!(f, "service payload truncated"),
            ServiceError::UnknownCode(c) => write!(f, "unknown service code {c}"),
            ServiceError::RaggedData => write!(f, "service data not word-aligned"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Flits needed to carry one 16-bit word at the given flit width.
pub fn flits_per_word(flit_bits: u8) -> usize {
    usize::from(16_u8.div_ceil(flit_bits))
}

/// Packs a 16-bit word into big-endian flit chunks.
pub fn pack_u16(value: u16, flit_bits: u8, out: &mut Vec<u16>) {
    let chunks = flits_per_word(flit_bits);
    let mask = if flit_bits >= 16 {
        u16::MAX
    } else {
        (1 << flit_bits) - 1
    };
    for i in (0..chunks).rev() {
        let shift = (i as u8) * flit_bits;
        let chunk = if shift >= 16 { 0 } else { (value >> shift) & mask };
        out.push(chunk);
    }
}

/// Reads one big-endian packed word from `flits` at `pos`, advancing it.
pub fn unpack_u16(flits: &[u16], pos: &mut usize, flit_bits: u8) -> Result<u16, ServiceError> {
    let chunks = flits_per_word(flit_bits);
    if *pos + chunks > flits.len() {
        return Err(ServiceError::Truncated);
    }
    let mut value: u32 = 0;
    for _ in 0..chunks {
        value = (value << flit_bits) | u32::from(flits[*pos]);
        *pos += 1;
    }
    Ok(value as u16)
}

impl Message {
    /// Creates a message.
    pub fn new(src: RouterAddr, service: Service) -> Self {
        Self { src, service }
    }

    /// Encodes the message into a network packet for router `dest`.
    pub fn to_packet(&self, dest: RouterAddr, flit_bits: u8) -> Packet {
        let mut payload = Vec::new();
        payload.push(self.service.code() as u16);
        payload.push(self.src.to_flit(flit_bits));
        let mut word = |v: u16| pack_u16(v, flit_bits, &mut payload);
        match &self.service {
            Service::ReadFromMemory { addr, count } => {
                word(*addr);
                word(*count);
            }
            Service::ReadReturn { addr, data } | Service::WriteInMemory { addr, data } => {
                word(*addr);
                for &d in data {
                    word(d);
                }
            }
            Service::ActivateProcessor | Service::Scanf => {}
            Service::Printf { data } => {
                for &d in data {
                    word(d);
                }
            }
            Service::ScanfReturn { value } => word(*value),
            Service::Notify { from } | Service::Wait { from } => word(*from),
        }
        Packet::new(dest, payload)
    }

    /// Decodes a delivered packet payload back into a message.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] if the payload is truncated, carries an unknown
    /// code, or its variable-length data is not word-aligned.
    pub fn from_packet(packet: &Packet, flit_bits: u8) -> Result<Self, ServiceError> {
        let flits = packet.payload();
        if flits.len() < 2 {
            return Err(ServiceError::Truncated);
        }
        let code = ServiceCode::from_flit(flits[0]).ok_or(ServiceError::UnknownCode(flits[0]))?;
        let src = RouterAddr::from_flit(flits[1], flit_bits);
        let mut pos = 2;
        let read_word = |pos: &mut usize| unpack_u16(flits, pos, flit_bits);
        let read_rest = |pos: &mut usize| -> Result<Vec<u16>, ServiceError> {
            let per = flits_per_word(flit_bits);
            if !(flits.len() - *pos).is_multiple_of(per) {
                return Err(ServiceError::RaggedData);
            }
            let mut data = Vec::with_capacity((flits.len() - *pos) / per);
            while *pos < flits.len() {
                data.push(unpack_u16(flits, pos, flit_bits)?);
            }
            Ok(data)
        };
        let service = match code {
            ServiceCode::ReadFromMemory => Service::ReadFromMemory {
                addr: read_word(&mut pos)?,
                count: read_word(&mut pos)?,
            },
            ServiceCode::ReadReturn => Service::ReadReturn {
                addr: read_word(&mut pos)?,
                data: read_rest(&mut pos)?,
            },
            ServiceCode::WriteInMemory => Service::WriteInMemory {
                addr: read_word(&mut pos)?,
                data: read_rest(&mut pos)?,
            },
            ServiceCode::ActivateProcessor => Service::ActivateProcessor,
            ServiceCode::Printf => Service::Printf {
                data: read_rest(&mut pos)?,
            },
            ServiceCode::Scanf => Service::Scanf,
            ServiceCode::ScanfReturn => Service::ScanfReturn {
                value: read_word(&mut pos)?,
            },
            ServiceCode::Notify => Service::Notify {
                from: read_word(&mut pos)?,
            },
            ServiceCode::Wait => Service::Wait {
                from: read_word(&mut pos)?,
            },
        };
        Ok(Self { src, service })
    }

    /// Maximum words per read/write/printf data block so the packet stays
    /// within the flit-width packet size limit.
    pub fn max_data_words(flit_bits: u8) -> usize {
        let max_payload = (1usize << flit_bits).saturating_sub(2).min(if flit_bits >= 16 {
            usize::from(u16::MAX)
        } else {
            (1 << flit_bits) - 1
        });
        let per = flits_per_word(flit_bits);
        // code + src + addr leave the rest for data.
        (max_payload - 2 - per) / per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(service: Service) {
        let src = RouterAddr::new(0, 1);
        let dest = RouterAddr::new(1, 1);
        for flit_bits in [8u8, 16] {
            let msg = Message::new(src, service.clone());
            let packet = msg.to_packet(dest, flit_bits);
            assert_eq!(packet.dest(), dest);
            let back = Message::from_packet(&packet, flit_bits).expect("decodes");
            assert_eq!(back, msg, "flit width {flit_bits}");
        }
    }

    #[test]
    fn all_nine_services_round_trip() {
        round_trip(Service::ReadFromMemory { addr: 0x20, count: 4 });
        round_trip(Service::ReadReturn {
            addr: 0x20,
            data: vec![1, 0xFFFF, 42],
        });
        round_trip(Service::WriteInMemory {
            addr: 0x3FF,
            data: vec![0xABCD],
        });
        round_trip(Service::ActivateProcessor);
        round_trip(Service::Printf { data: vec![72, 105] });
        round_trip(Service::Scanf);
        round_trip(Service::ScanfReturn { value: 0xBEEF });
        round_trip(Service::Notify { from: 2 });
        round_trip(Service::Wait { from: 1 });
    }

    #[test]
    fn empty_data_blocks_round_trip() {
        round_trip(Service::Printf { data: vec![] });
        round_trip(Service::WriteInMemory { addr: 0, data: vec![] });
    }

    #[test]
    fn wire_format_is_as_documented() {
        // 8-bit flits: [code, src, addr_hi, addr_lo, count_hi, count_lo].
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::ReadFromMemory { addr: 0x0120, count: 1 },
        );
        let packet = msg.to_packet(RouterAddr::new(1, 1), 8);
        assert_eq!(packet.payload(), &[1, 0x00, 0x01, 0x20, 0x00, 0x01]);
    }

    #[test]
    fn decode_rejects_garbage() {
        let p = Packet::new(RouterAddr::new(0, 0), vec![99, 0, 0]);
        assert_eq!(
            Message::from_packet(&p, 8),
            Err(ServiceError::UnknownCode(99))
        );
        let p = Packet::new(RouterAddr::new(0, 0), vec![1]);
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::Truncated));
        let p = Packet::new(RouterAddr::new(0, 0), vec![1, 0, 0]);
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::Truncated));
        // Ragged printf data (odd flit count at 8-bit width).
        let p = Packet::new(RouterAddr::new(0, 0), vec![5, 0, 1, 2, 3]);
        assert_eq!(Message::from_packet(&p, 8), Err(ServiceError::RaggedData));
    }

    #[test]
    fn pack_unpack_words() {
        let mut flits = Vec::new();
        pack_u16(0xABCD, 8, &mut flits);
        assert_eq!(flits, vec![0xAB, 0xCD]);
        let mut pos = 0;
        assert_eq!(unpack_u16(&flits, &mut pos, 8).unwrap(), 0xABCD);
        assert_eq!(pos, 2);

        let mut flits = Vec::new();
        pack_u16(0xABCD, 4, &mut flits);
        assert_eq!(flits, vec![0xA, 0xB, 0xC, 0xD]);
        let mut pos = 0;
        assert_eq!(unpack_u16(&flits, &mut pos, 4).unwrap(), 0xABCD);

        let mut flits = Vec::new();
        pack_u16(0xABCD, 16, &mut flits);
        assert_eq!(flits, vec![0xABCD]);
    }

    #[test]
    fn max_data_words_fits_packets() {
        // 8-bit flits: 254 payload max; code+src+addr(2) = 4; (254-4)/2 = 125.
        assert_eq!(Message::max_data_words(8), 125);
        let msg = Message::new(
            RouterAddr::new(0, 0),
            Service::WriteInMemory {
                addr: 0,
                data: vec![0; Message::max_data_words(8)],
            },
        );
        let packet = msg.to_packet(RouterAddr::new(1, 1), 8);
        assert!(packet.payload().len() <= 254);
    }
}

//! Causal service-level tracing: one [`ServiceSpan`] per sequenced
//! request, tying together every transmission (including retransmissions
//! by the reliability layer), every failover redirect, and the final
//! delivery acknowledgement.
//!
//! Spans are recorded from the same observation hooks that feed the
//! service counters, so they advance only at fully merged cycle
//! boundaries and are bit-identical across kernels, thread counts and
//! batch windows. The [`System`](crate::System) links them into its
//! Perfetto export via flow events, so a cached read or remote-memory
//! write renders as one connected track from request to completion.

use std::collections::VecDeque;

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::node::NodeId;
use crate::service::ServiceCode;

/// One packet submission on behalf of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTransmission {
    /// Cycle the packet was handed to the network.
    pub cycle: u64,
    /// The network's packet id, when the submission reached the NoC
    /// (`None` for messages observed without one).
    pub packet: Option<u64>,
}

/// One failover redirect applied to a span's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRedirect {
    /// Cycle the reliability layer rewrote the destination.
    pub cycle: u64,
    /// The dead router the span was addressed to.
    pub from: RouterAddr,
    /// The promoted survivor it was redirected to.
    pub to: RouterAddr,
}

/// The causal record of one sequenced service request: request id →
/// packets → retransmissions → redirects/failovers → delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSpan {
    /// Monotone span id (unique within the system run).
    pub id: u64,
    /// The node that issued the request.
    pub node: NodeId,
    /// Current destination router (rewritten by failover redirects).
    pub dest: RouterAddr,
    /// The request's service code.
    pub code: ServiceCode,
    /// The reliability-layer sequence number carried by every
    /// transmission.
    pub seq: u16,
    /// Cycle of the first transmission.
    pub started: u64,
    /// Every packet sent for this request, first transmission included.
    pub transmissions: Vec<SpanTransmission>,
    /// Failover redirects applied while the request was open.
    pub redirects: Vec<SpanRedirect>,
    /// Cycle the completing response (ack / read return / scanf return)
    /// was received, once delivered.
    pub completed: Option<u64>,
}

impl ServiceSpan {
    /// Packets sent beyond the first transmission.
    pub fn retransmissions(&self) -> u64 {
        (self.transmissions.len() as u64).saturating_sub(1)
    }
}

/// Bounded ring of [`ServiceSpan`]s plus the aggregate counters the
/// metrics snapshot exports. Owned by the [`System`](crate::System) and
/// fed from its message observation hooks.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    spans: VecDeque<ServiceSpan>,
    next_id: u64,
    evicted: u64,
    completed: u64,
    retransmissions: u64,
    redirects: u64,
}

impl SpanLog {
    /// An empty log retaining at most `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            spans: VecDeque::new(),
            next_id: 0,
            evicted: 0,
            completed: 0,
            retransmissions: 0,
            redirects: 0,
        }
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl ExactSizeIterator<Item = &ServiceSpan> + '_ {
        self.spans.iter()
    }

    /// Spans opened so far (including evicted ones).
    pub fn spans_total(&self) -> u64 {
        self.next_id
    }

    /// Spans evicted from the bounded ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Spans that reached completion.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Packets sent beyond each span's first transmission.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Failover redirects applied to open spans.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Whether `code` opens (or extends) a span when sent. Responses and
    /// acknowledgements ride on their request's span instead of opening
    /// their own.
    fn is_request(code: ServiceCode) -> bool {
        !matches!(
            code,
            ServiceCode::Ack | ServiceCode::ReadReturn | ServiceCode::ScanfReturn
        )
    }

    /// The most recent open span matching the key, if any.
    fn open_span(
        &mut self,
        node: NodeId,
        dest: RouterAddr,
        seq: u16,
        code: Option<ServiceCode>,
    ) -> Option<&mut ServiceSpan> {
        self.spans.iter_mut().rev().find(|s| {
            s.completed.is_none()
                && s.node == node
                && s.dest == dest
                && s.seq == seq
                && code.is_none_or(|c| s.code == c)
        })
    }

    /// Observes a sequenced message leaving `node` for `dest`: the first
    /// send of a request opens a span, a repeat of the same
    /// (node, dest, seq, code) while open records a retransmission.
    /// Unsequenced messages and responses are ignored.
    pub(crate) fn on_sent(
        &mut self,
        now: u64,
        node: NodeId,
        dest: RouterAddr,
        seq: u16,
        code: ServiceCode,
        packet: Option<u64>,
    ) {
        if seq == 0 || !Self::is_request(code) {
            return;
        }
        let tx = SpanTransmission { cycle: now, packet };
        if let Some(span) = self.open_span(node, dest, seq, Some(code)) {
            span.transmissions.push(tx);
            self.retransmissions += 1;
            return;
        }
        let span = ServiceSpan {
            id: self.next_id,
            node,
            dest,
            code,
            seq,
            started: now,
            transmissions: vec![tx],
            redirects: Vec::new(),
            completed: None,
        };
        self.next_id += 1;
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.evicted += 1;
        }
        self.spans.push_back(span);
    }

    /// Observes a message arriving at `node` from `peer`: an `Ack`
    /// completes the open span it acknowledges, a `ReadReturn` /
    /// `ScanfReturn` completes the read / scanf request it answers.
    pub(crate) fn on_received(
        &mut self,
        now: u64,
        node: NodeId,
        peer: RouterAddr,
        seq: u16,
        code: ServiceCode,
    ) {
        if seq == 0 {
            return;
        }
        let request = match code {
            ServiceCode::Ack => None,
            ServiceCode::ReadReturn => Some(ServiceCode::ReadFromMemory),
            ServiceCode::ScanfReturn => Some(ServiceCode::Scanf),
            _ => return,
        };
        if let Some(span) = self.open_span(node, peer, seq, request) {
            span.completed = Some(now);
            self.completed += 1;
        }
    }

    /// Applies a failover redirect: every open span addressed to the dead
    /// router `from` is rewritten to the promoted survivor `to`, so its
    /// completing response (which will arrive from `to`) still matches.
    pub(crate) fn redirect(&mut self, from: RouterAddr, to: RouterAddr, now: u64) {
        for span in self.spans.iter_mut() {
            if span.completed.is_none() && span.dest == from {
                span.dest = to;
                span.redirects.push(SpanRedirect {
                    cycle: now,
                    from,
                    to,
                });
                self.redirects += 1;
            }
        }
    }

    /// Serializes the log for embedding in a system checkpoint.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.next_id);
        w.put_u64(self.evicted);
        w.put_u64(self.completed);
        w.put_u64(self.retransmissions);
        w.put_u64(self.redirects);
        w.put_usize(self.spans.len());
        for s in &self.spans {
            w.put_u64(s.id);
            w.put_u8(s.node.0);
            w.put_addr(s.dest);
            w.put_u8(s.code as u8);
            w.put_u16(s.seq);
            w.put_u64(s.started);
            w.put_usize(s.transmissions.len());
            for t in &s.transmissions {
                w.put_u64(t.cycle);
                w.put_opt_u64(t.packet);
            }
            w.put_usize(s.redirects.len());
            for r in &s.redirects {
                w.put_u64(r.cycle);
                w.put_addr(r.from);
                w.put_addr(r.to);
            }
            w.put_opt_u64(s.completed);
        }
    }

    /// Decodes a log written by [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(SnapshotError::Malformed("span log capacity"));
        }
        let mut log = Self::new(capacity);
        log.next_id = r.take_u64()?;
        log.evicted = r.take_u64()?;
        log.completed = r.take_u64()?;
        log.retransmissions = r.take_u64()?;
        log.redirects = r.take_u64()?;
        let count = r.take_len(26)?;
        if count > capacity {
            return Err(SnapshotError::Malformed("span ring over capacity"));
        }
        for _ in 0..count {
            let id = r.take_u64()?;
            let node = NodeId(r.take_u8()?);
            let dest = r.take_addr()?;
            let code = ServiceCode::from_flit(u16::from(r.take_u8()?))
                .ok_or(SnapshotError::Malformed("span service code"))?;
            let seq = r.take_u16()?;
            let started = r.take_u64()?;
            let tx_count = r.take_len(9)?;
            let mut transmissions = Vec::with_capacity(tx_count);
            for _ in 0..tx_count {
                let cycle = r.take_u64()?;
                transmissions.push(SpanTransmission {
                    cycle,
                    packet: r.take_opt_u64()?,
                });
            }
            if transmissions.is_empty() {
                return Err(SnapshotError::Malformed("span without transmissions"));
            }
            let redirect_count = r.take_len(12)?;
            let mut redirects = Vec::with_capacity(redirect_count);
            for _ in 0..redirect_count {
                let cycle = r.take_u64()?;
                let from = r.take_addr()?;
                redirects.push(SpanRedirect {
                    cycle,
                    from,
                    to: r.take_addr()?,
                });
            }
            log.spans.push_back(ServiceSpan {
                id,
                node,
                dest,
                code,
                seq,
                started,
                transmissions,
                redirects,
                completed: r.take_opt_u64()?,
            });
        }
        Ok(log)
    }
}

//! Service-level observability: per-node counters for each of the nine
//! NoC services and an opt-in event log.
//!
//! The counters are always on (they cost one array increment per
//! message); the event log must be enabled with
//! [`System::enable_trace`](crate::System::enable_trace) and records one
//! [`TraceEvent`] per service message sent or received at any IP — the
//! message-level view the paper's future-work "multiprocessor simulator"
//! needs for understanding distributed applications.

use std::collections::BTreeMap;
use std::fmt;

use hermes_noc::{RouterAddr, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::node::NodeId;
use crate::service::{Service, ServiceCode};

/// Direction of a traced message, from the local IP's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The IP injected the message.
    Sent,
    /// The IP received the message.
    Received,
}

/// One service message observed at an IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock cycle of the observation.
    pub cycle: u64,
    /// The observing node.
    pub node: NodeId,
    /// Sent or received.
    pub direction: Direction,
    /// The other endpoint's router.
    pub peer: RouterAddr,
    /// The service code.
    pub code: ServiceCode,
    /// Human-readable summary of the message.
    pub summary: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.direction {
            Direction::Sent => "->",
            Direction::Received => "<-",
        };
        write!(
            f,
            "[{:>8}] {} {arrow} router {}: {}",
            self.cycle, self.node, self.peer, self.summary
        )
    }
}

/// All service codes (the paper's nine plus the reliability [`Ack`]
/// and replication extensions), for iteration.
///
/// [`Ack`]: ServiceCode::Ack
pub const ALL_CODES: [ServiceCode; 12] = [
    ServiceCode::ReadFromMemory,
    ServiceCode::ReadReturn,
    ServiceCode::WriteInMemory,
    ServiceCode::ActivateProcessor,
    ServiceCode::Printf,
    ServiceCode::Scanf,
    ServiceCode::ScanfReturn,
    ServiceCode::Notify,
    ServiceCode::Wait,
    ServiceCode::Ack,
    ServiceCode::ReplicateWrite,
    ServiceCode::ReplicaInvalidate,
];

fn code_index(code: ServiceCode) -> usize {
    code as usize - 1
}

/// Per-node, per-service message counters, plus a system-wide tally of
/// packets the reliability layer rejected (checksum failures, garbage).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    sent: BTreeMap<NodeId, [u64; 12]>,
    received: BTreeMap<NodeId, [u64; 12]>,
    corrupt_dropped: u64,
}

impl ServiceCounters {
    pub(crate) fn count(&mut self, node: NodeId, direction: Direction, code: ServiceCode) {
        let table = match direction {
            Direction::Sent => &mut self.sent,
            Direction::Received => &mut self.received,
        };
        table.entry(node).or_insert([0; 12])[code_index(code)] += 1;
    }

    pub(crate) fn count_corrupt_drop(&mut self) {
        self.corrupt_dropped += 1;
    }

    /// Undecodable service packets (failed checksum, unknown code,
    /// truncated) dropped at any IP instead of being delivered.
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped
    }

    /// Messages of `code` sent by `node`.
    pub fn sent(&self, node: NodeId, code: ServiceCode) -> u64 {
        self.sent
            .get(&node)
            .map(|row| row[code_index(code)])
            .unwrap_or(0)
    }

    /// Messages of `code` received by `node`.
    pub fn received(&self, node: NodeId, code: ServiceCode) -> u64 {
        self.received
            .get(&node)
            .map(|row| row[code_index(code)])
            .unwrap_or(0)
    }

    /// Total messages of `code` sent anywhere in the system.
    pub fn total_sent(&self, code: ServiceCode) -> u64 {
        self.sent.values().map(|row| row[code_index(code)]).sum()
    }

    /// All nodes that sent or received anything, in node order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .sent
            .keys()
            .chain(self.received.keys())
            .copied()
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Snapshot codec: both per-node tables (`BTreeMap` iteration is
    /// already key-ordered, hence deterministic) plus the corruption
    /// tally.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        for table in [&self.sent, &self.received] {
            w.put_usize(table.len());
            for (node, row) in table {
                w.put_u8(node.0);
                for &count in row {
                    w.put_u64(count);
                }
            }
        }
        w.put_u64(self.corrupt_dropped);
    }

    /// Decodes counters written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let mut tables = [BTreeMap::new(), BTreeMap::new()];
        for table in &mut tables {
            let len = r.take_len(97)?;
            for _ in 0..len {
                let node = NodeId(r.take_u8()?);
                let mut row = [0u64; 12];
                for slot in &mut row {
                    *slot = r.take_u64()?;
                }
                if table.insert(node, row).is_some() {
                    return Err(SnapshotError::Malformed("duplicate counter row"));
                }
            }
        }
        let [sent, received] = tables;
        let corrupt_dropped = r.take_u64()?;
        Ok(Self {
            sent,
            received,
            corrupt_dropped,
        })
    }
}

/// The opt-in event log (bounded; oldest events drop first).
///
/// Uses the same amortized ring discipline as the hermes statistics
/// window: the buffer is allowed to grow to twice the capacity before the
/// oldest half is drained in one `memmove`, so a push is amortized O(1)
/// instead of the O(n) of a front removal per event.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    pushed: u64,
    evicted: u64,
}

impl TraceLog {
    /// A log holding up to `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity: capacity.max(1),
            pushed: 0,
            evicted: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
        self.pushed += 1;
        if self.events.len() >= self.capacity.saturating_mul(2) {
            let excess = self.events.len() - self.capacity;
            self.events.drain(..excess);
            self.evicted += excess as u64;
        }
    }

    /// The recorded events, oldest first — at most the configured
    /// capacity, always the most recent ones.
    pub fn events(&self) -> &[TraceEvent] {
        let start = self.events.len().saturating_sub(self.capacity);
        &self.events[start..]
    }

    /// Events no longer visible because the log was full.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.events().len() as u64
    }

    /// Events physically evicted from the ring buffer, mirroring
    /// [`NocStats::evicted_records`](hermes_noc::NocStats::evicted_records).
    /// Lags [`dropped`](Self::dropped) by up to one capacity's worth
    /// because eviction is amortized.
    pub fn evicted_events(&self) -> u64 {
        self.evicted
    }

    /// Snapshot codec: capacity, push/evict counters and the *physical*
    /// buffer (including the not-yet-drained overhang), so the amortized
    /// eviction schedule resumes exactly where it left off.
    pub(crate) fn snapshot_write(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.pushed);
        w.put_u64(self.evicted);
        w.put_usize(self.events.len());
        for e in &self.events {
            w.put_u64(e.cycle);
            w.put_u8(e.node.0);
            w.put_u8(match e.direction {
                Direction::Sent => 0,
                Direction::Received => 1,
            });
            w.put_addr(e.peer);
            w.put_u8(e.code as u8);
            w.put_str(&e.summary);
        }
    }

    /// Decodes a log written by
    /// [`snapshot_write`](Self::snapshot_write).
    pub(crate) fn snapshot_read(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(SnapshotError::Malformed("trace log capacity is 0"));
        }
        let pushed = r.take_u64()?;
        let evicted = r.take_u64()?;
        let len = r.take_len(21)?;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            let cycle = r.take_u64()?;
            let node = NodeId(r.take_u8()?);
            let direction = match r.take_u8()? {
                0 => Direction::Sent,
                1 => Direction::Received,
                _ => return Err(SnapshotError::Malformed("trace direction tag")),
            };
            let peer = r.take_addr()?;
            let code = ServiceCode::from_flit(u16::from(r.take_u8()?))
                .ok_or(SnapshotError::Malformed("trace service code"))?;
            let summary = r.take_str()?;
            events.push(TraceEvent {
                cycle,
                node,
                direction,
                peer,
                code,
                summary,
            });
        }
        Ok(Self {
            events,
            capacity,
            pushed,
            evicted,
        })
    }
}

/// Builds the one-line summary used in trace events.
pub(crate) fn summarize(service: &Service) -> String {
    service.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_node_and_code() {
        let mut c = ServiceCounters::default();
        c.count(NodeId(1), Direction::Sent, ServiceCode::Printf);
        c.count(NodeId(1), Direction::Sent, ServiceCode::Printf);
        c.count(NodeId(2), Direction::Received, ServiceCode::Printf);
        assert_eq!(c.sent(NodeId(1), ServiceCode::Printf), 2);
        assert_eq!(c.received(NodeId(2), ServiceCode::Printf), 1);
        assert_eq!(c.sent(NodeId(2), ServiceCode::Printf), 0);
        assert_eq!(c.total_sent(ServiceCode::Printf), 2);
        assert_eq!(c.nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn log_is_bounded() {
        let mut log = TraceLog::new(2);
        for i in 0..5u64 {
            log.push(TraceEvent {
                cycle: i,
                node: NodeId(0),
                direction: Direction::Sent,
                peer: RouterAddr::new(0, 0),
                code: ServiceCode::Scanf,
                summary: "scanf".into(),
            });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.events()[0].cycle, 3);
    }

    #[test]
    fn eviction_is_amortized_and_counted() {
        let mut log = TraceLog::new(4);
        let event = |cycle| TraceEvent {
            cycle,
            node: NodeId(0),
            direction: Direction::Sent,
            peer: RouterAddr::new(0, 0),
            code: ServiceCode::Scanf,
            summary: "scanf".into(),
        };
        for i in 0..100u64 {
            log.push(event(i));
            assert!(
                log.events().len() <= 4,
                "visible window never exceeds capacity"
            );
        }
        assert_eq!(log.events().len(), 4);
        assert_eq!(
            log.events().iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![96, 97, 98, 99],
            "the newest events are the visible ones"
        );
        assert_eq!(log.dropped(), 96);
        assert!(log.evicted_events() > 0);
        assert!(
            log.evicted_events() <= log.dropped(),
            "amortized eviction lags logical drops"
        );
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            cycle: 42,
            node: NodeId(1),
            direction: Direction::Received,
            peer: RouterAddr::new(0, 0),
            code: ServiceCode::Notify,
            summary: "notify from node 2".into(),
        };
        let text = e.to_string();
        assert!(text.contains("42") && text.contains("<-") && text.contains("notify"));
    }
}

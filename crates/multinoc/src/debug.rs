//! Multiprocessor debugging — the first item of the paper's future work
//! (§5): "the development of a multiprocessor simulator. This tool is
//! important to detect distributed application errors and to synchronize
//! software running on different processors."
//!
//! Two facilities:
//!
//! - [`Debugger`] — breakpoints, watchpoints and single-instruction
//!   stepping over the cycle-accurate system simulation;
//! - [`analyze_deadlock`] — a wait-for-graph analysis of the blocked
//!   processors, reporting synchronization cycles (true deadlocks) and
//!   processors waiting on inactive peers.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::SystemError;
use crate::node::NodeId;
use crate::processor::{BlockReason, ProcessorStatus};
use crate::system::System;

/// Why a [`Debugger`] run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A processor reached a breakpoint address.
    Breakpoint {
        /// The processor.
        node: NodeId,
        /// The program counter it stopped at.
        pc: u16,
    },
    /// A watched memory word changed.
    Watchpoint {
        /// The node owning the memory.
        node: NodeId,
        /// The watched address.
        addr: u16,
        /// Value before the change.
        old: u16,
        /// Value after the change.
        new: u16,
    },
    /// Every activated processor halted.
    AllHalted,
    /// The system went idle with processors still blocked — run
    /// [`analyze_deadlock`] next.
    IdleBlocked,
    /// The cycle budget ran out.
    Budget,
}

/// A breakpoint/watchpoint debugger over a [`System`].
///
/// ```rust
/// use multinoc::debug::Debugger;
/// use multinoc::{System, PROCESSOR_1};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut system = System::paper_config()?;
/// let program = r8::asm::assemble("LIW R1, 5\nLIW R2, 6\nHALT")?;
/// system.memory_mut(PROCESSOR_1)?.write_block(0, program.words());
/// system.activate_directly(PROCESSOR_1)?;
/// let mut debugger = Debugger::new();
/// debugger.add_breakpoint(PROCESSOR_1, 2); // after the first LIW pair
/// let stop = debugger.run(&mut system, 10_000)?;
/// assert_eq!(system.cpu(PROCESSOR_1)?.reg(1), 5);
/// assert_eq!(system.cpu(PROCESSOR_1)?.reg(2), 0); // not yet executed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Debugger {
    breakpoints: BTreeMap<NodeId, BTreeSet<u16>>,
    watchpoints: Vec<Watch>,
    /// Last PC seen per node, so a breakpoint fires once per arrival.
    last_pc: BTreeMap<NodeId, u16>,
}

#[derive(Debug)]
struct Watch {
    node: NodeId,
    addr: u16,
    last: Option<u16>,
}

impl Debugger {
    /// A debugger with no breakpoints or watchpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Breaks when `node`'s program counter reaches `pc`.
    pub fn add_breakpoint(&mut self, node: NodeId, pc: u16) {
        self.breakpoints.entry(node).or_default().insert(pc);
    }

    /// Removes a breakpoint; returns whether it existed.
    pub fn remove_breakpoint(&mut self, node: NodeId, pc: u16) -> bool {
        self.breakpoints
            .get_mut(&node)
            .is_some_and(|set| set.remove(&pc))
    }

    /// Stops when the word at `addr` of `node`'s memory changes.
    pub fn add_watchpoint(&mut self, node: NodeId, addr: u16) {
        self.watchpoints.push(Watch {
            node,
            addr,
            last: None,
        });
    }

    fn check(&mut self, system: &System) -> Result<Option<StopReason>, SystemError> {
        for (&node, pcs) in &self.breakpoints {
            let pc = system.cpu(node)?.pc();
            let arrived = self.last_pc.insert(node, pc) != Some(pc);
            if arrived
                && pcs.contains(&pc)
                && system.processor_status(node)? == ProcessorStatus::Running
            {
                return Ok(Some(StopReason::Breakpoint { node, pc }));
            }
        }
        for watch in &mut self.watchpoints {
            let value = system.memory(watch.node)?.read(watch.addr);
            match watch.last.replace(value) {
                Some(old) if old != value => {
                    return Ok(Some(StopReason::Watchpoint {
                        node: watch.node,
                        addr: watch.addr,
                        old,
                        new: value,
                    }));
                }
                _ => {}
            }
        }
        Ok(None)
    }

    /// Runs the system until a breakpoint or watchpoint fires, all
    /// activated processors halt, the system idles with blocked
    /// processors, or `budget` cycles pass.
    ///
    /// # Errors
    ///
    /// Propagates [`SystemError`] from stepping or from breakpoints set
    /// on non-processor nodes.
    pub fn run(&mut self, system: &mut System, budget: u64) -> Result<StopReason, SystemError> {
        // Prime watch/PC state so pre-existing values don't fire.
        self.check(system)?;
        for _ in 0..budget {
            system.step()?;
            if let Some(reason) = self.check(system)? {
                return Ok(reason);
            }
            if system.all_halted() && system.noc().is_idle() && system.link().is_idle() {
                return Ok(StopReason::AllHalted);
            }
            if system.is_idle() && !system.all_halted() {
                return Ok(StopReason::IdleBlocked);
            }
        }
        Ok(StopReason::Budget)
    }

    /// Steps the system until processor `node` retires exactly one more
    /// instruction (or `budget` cycles pass).
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] if `node` is not a processor; budget
    /// exhaustion is reported as `Ok(false)`.
    pub fn step_instruction(
        &mut self,
        system: &mut System,
        node: NodeId,
        budget: u64,
    ) -> Result<bool, SystemError> {
        let start = system.cpu(node)?.retired();
        for _ in 0..budget {
            system.step()?;
            if system.cpu(node)?.retired() > start {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// One blocked processor in a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedProcessor {
    /// The blocked processor.
    pub node: NodeId,
    /// Why it is blocked.
    pub reason: BlockReason,
}

/// Result of [`analyze_deadlock`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// All blocked processors and their reasons.
    pub blocked: Vec<BlockedProcessor>,
    /// Wait-for cycles among processors: each is a closed chain
    /// `a → b → … → a` of `wait` dependencies — a certain deadlock.
    pub cycles: Vec<Vec<NodeId>>,
    /// Processors waiting on a node that can never notify them: an
    /// inactive or halted processor, or a non-processor node.
    pub waiting_on_dead: Vec<BlockedProcessor>,
    /// Links the network's online diagnosis has declared dead — context
    /// for telling a software deadlock from network degradation (a
    /// blocked processor may simply be on the far side of a reroute).
    pub dead_links: Vec<(hermes_noc::RouterAddr, hermes_noc::Port)>,
    /// Routers the online diagnosis has declared dead entirely.
    pub dead_routers: Vec<hermes_noc::RouterAddr>,
    /// Nodes the system has declared dead (their IP no longer steps); a
    /// processor "waiting" on one of these is starved, not deadlocked.
    pub dead_nodes: Vec<NodeId>,
}

impl DeadlockReport {
    /// Whether the analysis found a certain synchronization bug.
    pub fn has_deadlock(&self) -> bool {
        !self.cycles.is_empty() || !self.waiting_on_dead.is_empty()
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.blocked.is_empty() {
            return write!(f, "no blocked processors");
        }
        writeln!(f, "blocked processors:")?;
        for b in &self.blocked {
            writeln!(f, "  {}: {:?}", b.node, b.reason)?;
        }
        for cycle in &self.cycles {
            let chain: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
            writeln!(f, "deadlock cycle: {} -> {}", chain.join(" -> "), chain[0])?;
        }
        for b in &self.waiting_on_dead {
            writeln!(f, "{} waits on a node that cannot notify", b.node)?;
        }
        if !self.dead_links.is_empty() {
            let links: Vec<String> = self
                .dead_links
                .iter()
                .map(|(addr, port)| format!("{addr}:{port:?}"))
                .collect();
            writeln!(f, "network degraded, dead links: {}", links.join(", "))?;
        }
        if !self.dead_routers.is_empty() {
            let routers: Vec<String> = self.dead_routers.iter().map(|a| a.to_string()).collect();
            writeln!(f, "dead routers: {}", routers.join(", "))?;
        }
        if !self.dead_nodes.is_empty() {
            let nodes: Vec<String> = self.dead_nodes.iter().map(|n| n.to_string()).collect();
            writeln!(f, "dead nodes: {}", nodes.join(", "))?;
        }
        Ok(())
    }
}

/// The debugger's `trace` command: formats the last `last` packet-level
/// traces that touched `node`'s router as source or destination — every
/// route decision, link hop and buffer occupancy along each packet's
/// path. Requires [`System::enable_packet_trace`]; returns a hint when
/// packet tracing is off.
pub fn packet_trace_dump(system: &System, node: NodeId, last: usize) -> String {
    let Some(addr) = system.table().router_of(node) else {
        return format!("{node} is not part of this system\n");
    };
    let Some(tracer) = system.packet_trace() else {
        return "packet tracing is off — call System::enable_packet_trace first\n".to_string();
    };
    let traces = tracer.traces_for(addr, last);
    if traces.is_empty() {
        return format!("no traced packets touched {node} (router {addr})\n");
    }
    let mut out = String::new();
    for trace in traces {
        out.push_str(&trace.to_string());
    }
    out
}

/// Builds the wait-for graph of the blocked processors and reports
/// synchronization cycles and waits on dead nodes.
pub fn analyze_deadlock(system: &System) -> DeadlockReport {
    let mut report = DeadlockReport {
        dead_links: system.dead_links(),
        dead_routers: system.noc().dead_routers(),
        dead_nodes: system.dead_nodes().to_vec(),
        ..DeadlockReport::default()
    };
    let processors = system.processors();
    let mut wait_edge: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for &node in &processors {
        let Ok(Some(reason)) = system.block_reason(node) else {
            continue;
        };
        report.blocked.push(BlockedProcessor { node, reason });
        if let BlockReason::WaitFor(target) = reason {
            wait_edge.insert(node, target);
            // Waiting on a node that cannot ever notify?
            let dead = match system.processor_status(target) {
                Ok(ProcessorStatus::Inactive)
                | Ok(ProcessorStatus::Halted)
                | Ok(ProcessorStatus::Faulted) => true,
                Ok(_) => false,
                Err(_) => true, // not a processor (or not a node)
            };
            if dead {
                report
                    .waiting_on_dead
                    .push(BlockedProcessor { node, reason });
            }
        }
    }
    // Cycle detection: follow wait edges from each blocked node.
    let mut reported: BTreeSet<NodeId> = BTreeSet::new();
    for &start in wait_edge.keys() {
        if reported.contains(&start) {
            continue;
        }
        let mut path = vec![start];
        let mut here = start;
        while let Some(&next) = wait_edge.get(&here) {
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let cycle: Vec<NodeId> = path[pos..].to_vec();
                // Report each cycle only once, whichever node we entered
                // it from.
                if cycle.iter().all(|n| !reported.contains(n)) {
                    for &n in &cycle {
                        reported.insert(n);
                    }
                    report.cycles.push(cycle);
                }
                break;
            }
            path.push(next);
            here = next;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PROCESSOR_1, PROCESSOR_2, WAIT_ADDR};
    use r8::asm::assemble;

    fn wait_program(on: u16) -> Vec<u16> {
        assemble(&format!(
            "XOR R0, R0, R0\nLIW R8, {WAIT_ADDR}\nLIW R9, {on}\nST R9, R0, R8\nHALT"
        ))
        .unwrap()
        .words()
        .to_vec()
    }

    #[test]
    fn breakpoint_stops_before_later_instructions() {
        let mut system = System::paper_config().unwrap();
        let program = assemble("LIW R1, 5\nLIW R2, 6\nHALT").unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        let mut debugger = Debugger::new();
        debugger.add_breakpoint(PROCESSOR_1, 2);
        let stop = debugger.run(&mut system, 10_000).unwrap();
        assert_eq!(
            stop,
            StopReason::Breakpoint {
                node: PROCESSOR_1,
                pc: 2
            }
        );
        assert_eq!(system.cpu(PROCESSOR_1).unwrap().reg(1), 5);
        assert_eq!(system.cpu(PROCESSOR_1).unwrap().reg(2), 0);
        // Continuing runs to completion.
        let stop = debugger.run(&mut system, 10_000).unwrap();
        assert_eq!(stop, StopReason::AllHalted);
        assert_eq!(system.cpu(PROCESSOR_1).unwrap().reg(2), 6);
    }

    #[test]
    fn watchpoint_reports_the_change() {
        let mut system = System::paper_config().unwrap();
        let program =
            assemble("XOR R0, R0, R0\nLIW R1, 0x80\nLIW R2, 42\nST R2, R1, R0\nHALT").unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        let mut debugger = Debugger::new();
        debugger.add_watchpoint(PROCESSOR_1, 0x80);
        let stop = debugger.run(&mut system, 10_000).unwrap();
        assert_eq!(
            stop,
            StopReason::Watchpoint {
                node: PROCESSOR_1,
                addr: 0x80,
                old: 0,
                new: 42,
            }
        );
    }

    #[test]
    fn single_stepping_advances_one_instruction() {
        let mut system = System::paper_config().unwrap();
        // A long straight-line program so the core is still running when
        // we start stepping.
        let mut source = String::new();
        for _ in 0..100 {
            source.push_str("ADDI R1, 1\n");
        }
        source.push_str("HALT");
        let program = assemble(&source).unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        // Let the activation packet arrive first.
        system.run(50).unwrap();
        let mut debugger = Debugger::new();
        let before = system.cpu(PROCESSOR_1).unwrap().retired();
        assert!(debugger
            .step_instruction(&mut system, PROCESSOR_1, 1_000)
            .unwrap());
        assert_eq!(system.cpu(PROCESSOR_1).unwrap().retired(), before + 1);
    }

    #[test]
    fn mutual_wait_is_reported_as_a_cycle() {
        let mut system = System::paper_config().unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, &wait_program(PROCESSOR_2.as_u16()));
        system
            .memory_mut(PROCESSOR_2)
            .unwrap()
            .write_block(0, &wait_program(PROCESSOR_1.as_u16()));
        system.activate_directly(PROCESSOR_1).unwrap();
        system.activate_directly(PROCESSOR_2).unwrap();
        let mut debugger = Debugger::new();
        let stop = debugger.run(&mut system, 1_000_000).unwrap();
        assert_eq!(stop, StopReason::IdleBlocked);
        let report = analyze_deadlock(&system);
        assert!(report.has_deadlock());
        assert_eq!(report.cycles.len(), 1);
        let mut cycle = report.cycles[0].clone();
        cycle.sort();
        assert_eq!(cycle, vec![PROCESSOR_1, PROCESSOR_2]);
        assert!(report.to_string().contains("deadlock cycle"));
    }

    #[test]
    fn waiting_on_a_halted_peer_is_flagged() {
        let mut system = System::paper_config().unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, &wait_program(PROCESSOR_2.as_u16()));
        // P2 just halts without notifying.
        let halt = assemble("HALT").unwrap();
        system
            .memory_mut(PROCESSOR_2)
            .unwrap()
            .write_block(0, halt.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        system.activate_directly(PROCESSOR_2).unwrap();
        let mut debugger = Debugger::new();
        let stop = debugger.run(&mut system, 1_000_000).unwrap();
        assert_eq!(stop, StopReason::IdleBlocked);
        let report = analyze_deadlock(&system);
        assert!(report.has_deadlock());
        assert!(report.cycles.is_empty());
        assert_eq!(report.waiting_on_dead.len(), 1);
        assert_eq!(report.waiting_on_dead[0].node, PROCESSOR_1);
    }

    #[test]
    fn trace_dump_shows_a_nodes_packets() {
        let mut system = System::paper_config().unwrap();
        // Tracing off: the command explains itself instead of panicking.
        assert!(packet_trace_dump(&system, PROCESSOR_1, 5).contains("packet tracing is off"));
        system.enable_packet_trace(64);
        let program = assemble("LIW R1, 1\nHALT").unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        system.run_until_halted(100_000).unwrap();
        let dump = packet_trace_dump(&system, PROCESSOR_1, 5);
        assert!(
            dump.contains("packet"),
            "activation traffic was traced: {dump}"
        );
        assert!(dump.contains("route"), "route decisions appear in the dump");
        // A node outside the system is reported, not an error.
        assert!(packet_trace_dump(&system, NodeId(99), 5).contains("not part"));
    }

    #[test]
    fn healthy_system_reports_nothing() {
        let mut system = System::paper_config().unwrap();
        let program = assemble("LIW R1, 1\nHALT").unwrap();
        system
            .memory_mut(PROCESSOR_1)
            .unwrap()
            .write_block(0, program.words());
        system.activate_directly(PROCESSOR_1).unwrap();
        system.run_until_halted(100_000).unwrap();
        let report = analyze_deadlock(&system);
        assert!(!report.has_deadlock());
        assert!(report.blocked.is_empty());
        assert_eq!(report.to_string(), "no blocked processors");
    }
}

//! Corrupt-checkpoint hardening: a damaged snapshot file must come back
//! as a typed [`SnapshotError`] — never a panic, and never a silently
//! mis-restored system. The suite tampers with a real mid-flight system
//! checkpoint every way a file can rot (truncation, bit flips, a wrong
//! version stamp, a wrong payload kind, a mesh-shape mismatch, trailing
//! garbage) and finishes with a property test flipping arbitrary bytes.

use std::sync::OnceLock;

use hermes_noc::snapshot::{fletcher64, HEADER_LEN, SNAPSHOT_VERSION};
use hermes_noc::{FaultPlan, NocConfig, RouterAddr, Routing, SnapshotError};
use multinoc::{NodeId, System};
use proptest::prelude::*;
use r8::asm::assemble;

const P1: NodeId = NodeId(1);
const MEM: NodeId = NodeId(3);

/// One sealed checkpoint of a busy mid-flight system, built once and
/// shared by every tamper case.
fn base_checkpoint() -> &'static [u8] {
    static SNAP: OnceLock<Vec<u8>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut config = NocConfig::multinoc();
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .expect("paper layout");
        sys.set_fault_plan(FaultPlan::new(0xC0).with_drop_rate(0.2))
            .expect("plan");
        let base = sys
            .address_map(P1)
            .expect("map")
            .window_base(MEM)
            .expect("window");
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             XOR R0, R0, R0\n\
             LIW R2, 777\n\
             ST  R2, R1, R0\n\
             LD  R3, R1, R0\n\
             HALT"
        ))
        .expect("assembles");
        sys.memory_mut(P1)
            .expect("p1 memory")
            .write_block(0, program.words());
        sys.activate_directly(P1).expect("activate");
        sys.enable_trace(256);
        // Stop mid remote read, with flits in flight and timers armed.
        sys.run(60).expect("run");
        sys.checkpoint()
    })
}

/// Recomputes the outer container checksum after a deliberate tamper,
/// so the test reaches the *decoder's* validation, not the checksum.
fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let sum = fletcher64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn truncation_at_any_length_is_a_typed_error() {
    let snap = base_checkpoint();
    for cut in [0, 1, 4, 8, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 21] {
        assert!(
            matches!(System::restore(&snap[..cut]), Err(SnapshotError::Truncated)),
            "cut at {cut} bytes must be Truncated"
        );
    }
    // Cutting anywhere in the payload leaves header and length
    // disagreeing about the total size.
    for cut in [snap.len() - 1, snap.len() - 9, snap.len() / 2] {
        assert!(
            System::restore(&snap[..cut]).is_err(),
            "cut at {cut} bytes must fail"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = base_checkpoint().to_vec();
    bytes[0] ^= 0xFF;
    reseal(&mut bytes);
    assert!(matches!(
        System::restore(&bytes),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_version_is_rejected_not_guessed_at() {
    let mut bytes = base_checkpoint().to_vec();
    let future = SNAPSHOT_VERSION + 1;
    bytes[4..8].copy_from_slice(&future.to_le_bytes());
    reseal(&mut bytes);
    match System::restore(&bytes) {
        Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, future),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_payload_kind_is_rejected() {
    // A bare NoC snapshot is a valid container of the wrong kind; the
    // system decoder must refuse it instead of misreading the payload.
    let noc = hermes_noc::Noc::new(NocConfig::multinoc()).expect("noc");
    match System::restore(&noc.save_state()) {
        Err(SnapshotError::WrongKind { expected, found }) => {
            assert_eq!(expected, hermes_noc::snapshot::KIND_SYSTEM);
            assert_eq!(found, hermes_noc::snapshot::KIND_NOC);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
}

#[test]
fn checksum_guards_the_payload() {
    let mut bytes = base_checkpoint().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    assert!(matches!(
        System::restore(&bytes),
        Err(SnapshotError::ChecksumMismatch)
    ));
}

#[test]
fn mesh_shape_mismatch_is_rejected() {
    // The embedded NoC blob sits behind the outer header and an 8-byte
    // length prefix; its own payload opens with the topology tag and
    // then the mesh width. Grow the claimed width, reseal the inner
    // container, reseal the outer: both checksums pass, and only the
    // decoder's shape check is left to catch the lie.
    let mut bytes = base_checkpoint().to_vec();
    let inner_start = HEADER_LEN + 8;
    let inner_len = u64::from_le_bytes(bytes[HEADER_LEN..inner_start].try_into().unwrap()) as usize;
    let inner_end = inner_start + inner_len;
    assert_eq!(bytes[inner_start + HEADER_LEN], 0, "mesh topology tag");
    bytes[inner_start + HEADER_LEN + 1] = 4;
    let inner_body = inner_end - 8;
    let inner_sum = fletcher64(&bytes[inner_start..inner_body]);
    bytes[inner_body..inner_end].copy_from_slice(&inner_sum.to_le_bytes());
    reseal(&mut bytes);
    match System::restore(&bytes) {
        Err(SnapshotError::MeshMismatch { .. }) => {}
        other => panic!("expected MeshMismatch, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = base_checkpoint().to_vec();
    bytes.push(0xAB);
    assert!(
        System::restore(&bytes).is_err(),
        "extra bytes after the trailer must not pass"
    );
}

#[test]
fn intact_checkpoint_still_restores_after_all_that() {
    // Sanity anchor for the suite: the shared base checkpoint itself is
    // healthy, and restoring it reproduces the exact same bytes.
    let snap = base_checkpoint();
    let sys = System::restore(snap).expect("healthy restore");
    assert_eq!(sys.checkpoint(), snap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any single bit anywhere in the file either fails with a
    /// typed error or — if the flip lands somewhere truly inert — still
    /// restores a system whose own re-checkpoint round-trips. It must
    /// never panic.
    #[test]
    fn any_single_bit_flip_fails_cleanly_or_round_trips(
        pos in 0usize..1_000_000,
        bit in 0u32..8,
    ) {
        let mut bytes = base_checkpoint().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match System::restore(&bytes) {
            Err(_) => {} // typed rejection is the expected outcome
            Ok(sys) => {
                let again = sys.checkpoint();
                let back = System::restore(&again);
                prop_assert!(back.is_ok(), "restored system lost round-trip");
            }
        }
    }

    /// Same property under multi-byte damage: stomp a short run of
    /// bytes with arbitrary values.
    #[test]
    fn any_byte_stomp_fails_cleanly_or_round_trips(
        pos in 0usize..1_000_000,
        values in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = base_checkpoint().to_vec();
        let pos = pos % bytes.len();
        for (i, v) in values.iter().enumerate() {
            let at = (pos + i) % bytes.len();
            bytes[at] = *v;
        }
        match System::restore(&bytes) {
            Err(_) => {}
            Ok(sys) => {
                let again = sys.checkpoint();
                let back = System::restore(&again);
                prop_assert!(back.is_ok(), "restored system lost round-trip");
            }
        }
    }
}

//! Differential test of the system-level idle fast-forward: a run that
//! jumps timer-bound idle gaps (`run_until_halted` / `run`) must be
//! indistinguishable from single-stepping the same workload — identical
//! cycle counts, memory contents, utilization, retry work and service
//! statistics. The fast-forward may only change how fast the simulator
//! crosses a gap, never what the simulated system does.

use hermes_noc::{CycleWindow, FaultPlan, NocConfig, Port, RouterAddr, Routing};
use multinoc::processor::ProcessorStatus;
use multinoc::{NodeId, System};
use r8::asm::assemble;

const SERIAL: NodeId = NodeId(0);
const P1: NodeId = NodeId(1);
const P2: NodeId = NodeId(2);
const MEM: NodeId = NodeId(3);

/// Replicates `run_until_halted`'s exit condition while stepping one
/// cycle at a time, so any divergence is the fast-forward's fault.
fn step_until_halted(sys: &mut System, budget: u64) -> u64 {
    let start = sys.cycle();
    loop {
        if sys.all_halted() && sys.noc().is_idle() && sys.link().is_idle() && sys.net_quiet() {
            return sys.cycle() - start;
        }
        assert!(sys.cycle() - start < budget, "single-step budget exhausted");
        sys.step().expect("step");
    }
}

fn assert_observables_match(fast: &System, slow: &System, nodes: &[NodeId]) {
    assert_eq!(fast.cycle(), slow.cycle(), "cycle counts diverged");
    for &node in nodes {
        if let (Ok(a), Ok(b)) = (fast.memory(node), slow.memory(node)) {
            assert_eq!(
                a.read_block(0, a.words()),
                b.read_block(0, b.words()),
                "{node} memory diverged"
            );
        }
        if let (Ok(a), Ok(b)) = (fast.processor_status(node), slow.processor_status(node)) {
            assert_eq!(a, b, "{node} status diverged");
        }
        if let (Ok(a), Ok(b)) = (
            fast.processor_utilization(node),
            slow.processor_utilization(node),
        ) {
            assert_eq!(a, b, "{node} utilization diverged");
        }
    }
    assert_eq!(
        fast.retry_counters(),
        slow.retry_counters(),
        "reliability work diverged"
    );
    assert_eq!(
        fast.duplicates_dropped(),
        slow.duplicates_dropped(),
        "dedup work diverged"
    );
    assert_eq!(fast.noc_stats().packets_sent, slow.noc_stats().packets_sent);
    assert_eq!(
        fast.noc_stats().packets_delivered,
        slow.noc_stats().packets_delivered
    );
    assert_eq!(fast.noc_stats().flit_hops, slow.noc_stats().flit_hops);
    assert_eq!(fast.noc_stats().faults, slow.noc_stats().faults);
    assert_eq!(
        format!("{:?}", fast.service_counters()),
        format!("{:?}", slow.service_counters()),
        "service counters diverged"
    );
}

fn build(plan: Option<FaultPlan>) -> System {
    let mut config = NocConfig::multinoc();
    config.routing = Routing::FaultTolerantXy;
    let mut sys = System::builder()
        .noc(config)
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    if let Some(plan) = plan {
        sys.set_fault_plan(plan).expect("valid fault plan");
    }
    sys
}

/// P1 writes into remote memory and P2's memory, synchronizes with P2
/// via notify, and both halt. Remote reads stall the core; posted
/// writes ride the reliability layer with its retransmission timers.
fn load_workload(sys: &mut System) {
    let mem_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(MEM)
        .expect("window");
    let p2_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(P2)
        .expect("window");
    let p1 = assemble(&format!(
        "LIW R1, {mem_base}\n\
         XOR R0, R0, R0\n\
         LIW R2, 777\n\
         ST  R2, R1, R0\n\
         LD  R3, R1, R0\n\
         LIW R4, 0x20\n\
         ST  R3, R4, R0\n\
         LIW R5, {p2_base}\n\
         LIW R6, 0x5A5A\n\
         ST  R6, R5, R0\n\
         LIW R7, 0xFFFD\n\
         LIW R2, {}\n\
         ST  R2, R0, R7\n\
         HALT",
        P2.as_u16(),
    ))
    .expect("p1 assembles");
    let p2 = assemble(&format!(
        "LIW R2, 0xFFFE\n\
         XOR R0, R0, R0\n\
         LIW R3, {}\n\
         ST  R3, R0, R2\n\
         LD  R4, R0, R0\n\
         LIW R5, 0x40\n\
         ST  R4, R5, R0\n\
         HALT",
        P1.as_u16(),
    ))
    .expect("p2 assembles");
    sys.memory_mut(P1)
        .expect("p1 memory")
        .write_block(0, p1.words());
    sys.memory_mut(P2)
        .expect("p2 memory")
        .write_block(0, p2.words());
    sys.activate_directly(P1).expect("activate p1");
    sys.activate_directly(P2).expect("activate p2");
}

#[test]
fn healthy_workload_matches_single_stepping() {
    let mut fast = build(None);
    let mut slow = build(None);
    load_workload(&mut fast);
    load_workload(&mut slow);
    let a = fast.run_until_halted(1_000_000).expect("fast run halts");
    let b = step_until_halted(&mut slow, 1_000_000);
    assert_eq!(a, b, "elapsed cycles diverged");
    assert_observables_match(&fast, &slow, &[SERIAL, P1, P2, MEM]);
    assert_eq!(fast.memory(P1).expect("p1").read(0x20), 777);
    assert_eq!(fast.memory(P2).expect("p2").read(0x40), 0x5A5A);
}

#[test]
fn lossy_workload_matches_single_stepping() {
    // Packet drops force the reliability layer through its backoff
    // timers: exactly the gaps the fast-forward jumps. The shared seed
    // keeps both runs on the same random stream.
    let plan = || FaultPlan::new(0xFA57).with_drop_rate(0.2);
    let mut fast = build(Some(plan()));
    let mut slow = build(Some(plan()));
    load_workload(&mut fast);
    load_workload(&mut slow);
    let a = fast.run_until_halted(4_000_000).expect("fast run halts");
    let b = step_until_halted(&mut slow, 4_000_000);
    assert_eq!(a, b, "elapsed cycles diverged");
    assert_observables_match(&fast, &slow, &[SERIAL, P1, P2, MEM]);
    assert!(
        fast.retry_counters().retransmissions > 0,
        "the workload must actually exercise retransmission timers"
    );
}

#[test]
fn degraded_workload_matches_single_stepping() {
    // A permanent dead link: diagnosis, epoch wavefront, reroute and the
    // reliability layer's reroute resets must land on the same cycles.
    let plan = || {
        FaultPlan::new(11).with_link_down(
            RouterAddr::new(0, 1),
            Port::East,
            CycleWindow::open_ended(0),
        )
    };
    let mut fast = build(Some(plan()));
    let mut slow = build(Some(plan()));
    // Pre-seed so P1's read does not race its (retransmitted) write.
    fast.memory_mut(MEM).expect("mem").write(0, 777);
    slow.memory_mut(MEM).expect("mem").write(0, 777);
    load_workload(&mut fast);
    load_workload(&mut slow);
    let a = fast.run_until_halted(4_000_000).expect("fast run halts");
    let b = step_until_halted(&mut slow, 4_000_000);
    assert_eq!(a, b, "elapsed cycles diverged");
    assert_observables_match(&fast, &slow, &[SERIAL, P1, P2, MEM]);
    assert!(fast.degraded(), "the dead link was diagnosed");
    assert_eq!(fast.dead_links(), slow.dead_links());
}

#[test]
fn bounded_run_lands_on_the_exact_cycle() {
    // run(n) must advance exactly n cycles even when a timer deadline
    // lies beyond the budget: the jump is clamped, never overshoots.
    let mut sys = build(None);
    load_workload(&mut sys);
    for chunk in [1u64, 7, 100, 4_096, 50_000] {
        let before = sys.cycle();
        sys.run(chunk).expect("run");
        assert_eq!(sys.cycle() - before, chunk, "run({chunk}) overshot");
    }
}

#[test]
fn deadlocked_wait_still_reaches_idle_verdict() {
    // A processor parked forever in `wait` has no deadline; the
    // fast-forward must not spin or jump, and run_until_idle must still
    // classify the system as idle-with-a-blocked-core.
    let mut sys = build(None);
    let program = assemble(&format!(
        "LIW R2, 0xFFFE\nXOR R0, R0, R0\nLIW R3, {}\nST R3, R0, R2\nHALT",
        P2.as_u16(),
    ))
    .expect("assembles");
    sys.memory_mut(P1)
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.activate_directly(P1).expect("activate");
    sys.run_until_idle(100_000).expect("goes idle");
    assert_eq!(
        sys.processor_status(P1).expect("status"),
        ProcessorStatus::Blocked
    );
}

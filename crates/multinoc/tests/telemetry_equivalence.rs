//! Differential test of the causal service-span layer: for the same
//! program the combined Perfetto export — packet spans, service instants
//! and the span slices with their flow arrows — must be byte-identical
//! across kernels and batch windows, spans must record retransmissions
//! under a lossy network and redirects across a replicated-memory
//! failover, and a checkpoint/restore split must resume to the same
//! span log as the uninterrupted run.

use hermes_noc::fault::{CycleWindow, FaultPlan};
use hermes_noc::{KernelMode, NocConfig, RouterAddr, Routing};
use multinoc::{NodeId, System};
use r8::asm::assemble;

const PROCESSOR: NodeId = NodeId(1);

/// Kernels and batch windows every export is compared across.
const KERNELS: [KernelMode; 4] = [
    KernelMode::Reference,
    KernelMode::Active,
    KernelMode::Parallel { threads: 2 },
    KernelMode::Parallel { threads: 8 },
];
const BATCH_WINDOWS: [u32; 2] = [1, 16];

/// Eight remote stores then eight remote loads against the window at
/// 0x800: every iteration is a sequenced service round trip, so every
/// iteration opens and completes one span.
const REMOTE_WALK: &str = "LIW R2, 0x800\n\
     LIW R1, 8\n\
     XOR R0, R0, R0\n\
     wr: ST R1, R2, R0\n\
     ADDI R0, 1\n\
     SUBI R1, 1\n\
     JMPZD rd\n\
     JMPD wr\n\
     rd: LIW R1, 8\n\
     XOR R0, R0, R0\n\
     rl: LD R3, R2, R0\n\
     ADDI R0, 1\n\
     SUBI R1, 1\n\
     JMPZD done\n\
     JMPD rl\n\
     done: HALT";

/// What one run exports plus the span-log counters.
#[derive(Debug, PartialEq)]
struct Run {
    perfetto: String,
    spans_total: u64,
    completed: u64,
    retransmissions: u64,
    redirects: u64,
}

/// Boots the paper layout, walks the remote memory IP and returns the
/// exports. `plan` optionally makes the network lossy.
fn run_walk(kernel: KernelMode, window: u32, plan: Option<FaultPlan>) -> Run {
    let mut sys = System::builder()
        .noc(
            NocConfig::multinoc()
                .with_kernel_mode(kernel)
                .with_batch_window(window),
        )
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    sys.enable_trace(1_024);
    sys.enable_packet_trace(1_024);
    sys.enable_service_spans(1_024);
    if let Some(plan) = plan {
        sys.set_fault_plan(plan).expect("valid fault plan");
    }
    let program = assemble(REMOTE_WALK).expect("assembles");
    sys.memory_mut(PROCESSOR)
        .expect("p1 memory")
        .write_block(0, program.words());
    sys.activate_directly(PROCESSOR).expect("activates");
    sys.run_until_halted(10_000_000).expect("halts");
    let spans = sys.service_spans().expect("spans enabled");
    Run {
        spans_total: spans.spans_total(),
        completed: spans.completed(),
        retransmissions: spans.retransmissions(),
        redirects: spans.redirects(),
        perfetto: sys.perfetto_json(),
    }
}

/// Healthy walk: the span-bearing Perfetto document is byte-identical
/// across every kernel and batch window, carries the flow-arrow phases,
/// and completes one span per remote operation.
#[test]
fn span_exports_identical_across_kernels_and_windows() {
    let reference = run_walk(KERNELS[0], BATCH_WINDOWS[0], None);
    assert_eq!(
        reference.spans_total, 16,
        "8 stores + 8 loads, one span each"
    );
    assert_eq!(reference.completed, 16, "every request completed");
    for phase in ["\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\""] {
        assert!(
            reference.perfetto.contains(phase),
            "the export carries {phase} flow events"
        );
    }
    assert!(
        reference.perfetto.contains("multinoc spans"),
        "spans render on their own named process track"
    );
    for kernel in KERNELS {
        for window in BATCH_WINDOWS {
            assert_eq!(
                reference,
                run_walk(kernel, window, None),
                "span export diverged under {kernel:?} window {window}"
            );
        }
    }
}

/// A lossy network forces the reliable layer to retransmit; the spans
/// must attribute those retransmissions to their originating request,
/// deterministically across kernels. The drop window opens after the
/// (NoC-delivered) activation packet so the walk always starts.
#[test]
fn spans_record_retransmissions_under_faults() {
    let plan = || {
        Some(
            FaultPlan::new(0x0B5_FA17)
                .with_drop_rate(0.2)
                .with_drop_window(CycleWindow::new(50, 2_000)),
        )
    };
    let reference = run_walk(KERNELS[0], BATCH_WINDOWS[0], plan());
    assert!(
        reference.retransmissions > 0,
        "a 20% drop rate must force at least one retransmission"
    );
    assert_eq!(
        reference.completed, 16,
        "the reliable layer still completes every request"
    );
    for kernel in &KERNELS[1..] {
        assert_eq!(
            reference,
            run_walk(*kernel, 16, plan()),
            "faulted span export diverged under {kernel:?}"
        );
    }
}

/// Killing the serving replica mid-walk fails the group over; open spans
/// are redirected to the survivor so in-flight responses still complete
/// them — and the whole story exports byte-identically across kernels.
#[test]
fn failover_redirects_open_spans_deterministically() {
    let run = |kernel: KernelMode| {
        let mut config = NocConfig::mesh(3, 3);
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config.with_kernel_mode(kernel))
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .replicated_memory_at(RouterAddr::new(1, 1), RouterAddr::new(2, 2))
            .build()
            .expect("replicated layout");
        sys.enable_service_spans(1_024);
        sys.set_fault_plan(FaultPlan::new(0x0B5_D1E).with_router_down(RouterAddr::new(1, 1), 900))
            .expect("valid fault plan");
        let base = sys
            .address_map(PROCESSOR)
            .expect("map")
            .window_base(NodeId(2))
            .expect("replicated window");
        let program = assemble(&format!(
            "LIW R2, {base}\n\
             LIW R1, 24\n\
             XOR R0, R0, R0\n\
             wr: ST R1, R2, R0\n\
             ADDI R0, 1\n\
             SUBI R1, 1\n\
             JMPZD done\n\
             JMPD wr\n\
             done: HALT"
        ))
        .expect("assembles");
        sys.memory_mut(PROCESSOR)
            .expect("p memory")
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR).expect("activates");
        sys.run_until_halted(10_000_000)
            .expect("halts despite the death");
        let spans = sys.service_spans().expect("spans enabled");
        (
            spans.redirects(),
            spans.completed(),
            spans.spans_total(),
            sys.perfetto_json(),
        )
    };
    let reference = run(KernelMode::Reference);
    assert!(
        reference.0 > 0,
        "killing the serving replica must redirect at least one open span"
    );
    assert!(reference.1 > 0, "redirected requests still complete");
    for kernel in &KERNELS[1..] {
        assert_eq!(
            reference,
            run(*kernel),
            "failover span export diverged under {kernel:?}"
        );
    }
}

/// Checkpoint mid-walk, discard the live system, restore — same kernel
/// and cross-kernel — and finish: the final span log and Perfetto export
/// must match the uninterrupted run byte for byte (spans ride snapshot
/// v4).
#[test]
fn checkpoint_restore_resumes_the_span_log() {
    let boot = || {
        let mut sys = System::builder()
            .noc(NocConfig::multinoc())
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .expect("paper layout");
        sys.enable_service_spans(1_024);
        let program = assemble(REMOTE_WALK).expect("assembles");
        sys.memory_mut(PROCESSOR)
            .expect("p1 memory")
            .write_block(0, program.words());
        sys.activate_directly(PROCESSOR).expect("activates");
        sys
    };
    let finish = |sys: &mut System| {
        sys.run_until_halted(10_000_000).expect("halts");
        let spans = sys.service_spans().expect("spans survive the snapshot");
        (
            spans.spans_total(),
            spans.completed(),
            spans.retransmissions(),
            format!("{:?}", spans.spans().collect::<Vec<_>>()),
        )
    };
    let mut uninterrupted = boot();
    for _ in 0..600 {
        uninterrupted.step().expect("steps");
    }
    let bytes = uninterrupted.checkpoint();
    let expected = finish(&mut uninterrupted);
    assert!(expected.0 > 0, "the walk opened spans");

    let mut restored = System::restore(&bytes).expect("checkpoint restores");
    assert_eq!(
        expected,
        finish(&mut restored),
        "restored span log diverged from the uninterrupted run"
    );
    let mut cross = System::restore_with_kernel(&bytes, KernelMode::Parallel { threads: 2 })
        .expect("checkpoint restores into the parallel kernel");
    assert_eq!(
        expected,
        finish(&mut cross),
        "cross-kernel restored span log diverged"
    );
}

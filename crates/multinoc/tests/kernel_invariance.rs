//! Differential test of the NoC kernel knob at system level: the same
//! program-driven workload must produce identical observables — elapsed
//! cycles, memory contents, reliability retries, service counters and
//! the latency histogram — whichever simulation kernel the network runs
//! on and however many worker threads the parallel kernel shards over.

use hermes_noc::{FaultPlan, KernelMode, NocConfig, RouterAddr, Routing};
use multinoc::{NodeId, System};
use r8::asm::assemble;

const P1: NodeId = NodeId(1);
const P2: NodeId = NodeId(2);
const MEM: NodeId = NodeId(3);

fn build(kernel: KernelMode, plan: Option<FaultPlan>) -> System {
    let mut config = NocConfig::multinoc();
    config.routing = Routing::FaultTolerantXy;
    let mut sys = System::builder()
        .noc(config)
        .kernel(kernel)
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    if let Some(plan) = plan {
        sys.set_fault_plan(plan).expect("valid fault plan");
    }
    sys
}

/// P1 writes through remote memory, pokes P2's memory and notifies it;
/// P2 reads back and halts. Lossy delivery keeps the reliability layer's
/// retransmission timers busy.
fn load_workload(sys: &mut System) {
    let mem_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(MEM)
        .expect("window");
    let p2_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(P2)
        .expect("window");
    let p1 = assemble(&format!(
        "LIW R1, {mem_base}\n\
         XOR R0, R0, R0\n\
         LIW R2, 777\n\
         ST  R2, R1, R0\n\
         LD  R3, R1, R0\n\
         LIW R4, 0x20\n\
         ST  R3, R4, R0\n\
         LIW R5, {p2_base}\n\
         LIW R6, 0x5A5A\n\
         ST  R6, R5, R0\n\
         LIW R7, 0xFFFD\n\
         LIW R2, {}\n\
         ST  R2, R0, R7\n\
         HALT",
        P2.as_u16(),
    ))
    .expect("p1 assembles");
    let p2 = assemble(&format!(
        "LIW R2, 0xFFFE\n\
         XOR R0, R0, R0\n\
         LIW R3, {}\n\
         ST  R3, R0, R2\n\
         LD  R4, R0, R0\n\
         LIW R5, 0x40\n\
         ST  R4, R5, R0\n\
         HALT",
        P1.as_u16(),
    ))
    .expect("p2 assembles");
    sys.memory_mut(P1)
        .expect("p1 memory")
        .write_block(0, p1.words());
    sys.memory_mut(P2)
        .expect("p2 memory")
        .write_block(0, p2.words());
    sys.activate_directly(P1).expect("activate p1");
    sys.activate_directly(P2).expect("activate p2");
}

/// Everything the run should leave behind, rendered comparable.
fn fingerprint(sys: &System, elapsed: u64) -> (u64, u64, String, String, String, String) {
    (
        elapsed,
        sys.cycle(),
        format!("{:?}", sys.retry_counters()),
        format!("{:?}", sys.service_counters()),
        format!("{:?}", sys.noc_stats().faults),
        format!("{:?}", sys.noc_stats().latency_histogram()),
    )
}

#[test]
fn every_kernel_produces_the_same_system_run() {
    let kernels = [
        KernelMode::Reference,
        KernelMode::Active,
        KernelMode::Parallel { threads: 1 },
        KernelMode::Parallel { threads: 2 },
        KernelMode::Parallel { threads: 4 },
    ];
    let plan = || FaultPlan::new(0xFA57).with_drop_rate(0.15);
    let mut baseline = None;
    for kernel in kernels {
        let mut sys = build(kernel, Some(plan()));
        load_workload(&mut sys);
        let elapsed = sys.run_until_halted(4_000_000).expect("run halts");
        assert_eq!(sys.memory(P1).expect("p1").read(0x20), 777, "{kernel:?}");
        assert_eq!(sys.memory(P2).expect("p2").read(0x40), 0x5A5A, "{kernel:?}");
        let fp = fingerprint(&sys, elapsed);
        match &baseline {
            None => {
                assert!(
                    sys.retry_counters().retransmissions > 0,
                    "the workload must actually exercise retransmissions"
                );
                baseline = Some(fp);
            }
            Some(b) => assert_eq!(b, &fp, "observables diverged under {kernel:?}"),
        }
    }
}

#[test]
fn every_kernel_produces_the_same_failover() {
    // A replicated memory loses its serving primary mid-run: the death
    // diagnosis, the failover cycle, the survivor's contents and every
    // counter must be bit-identical whichever kernel the NoC runs on.
    let kernels = [
        KernelMode::Reference,
        KernelMode::Active,
        KernelMode::Parallel { threads: 1 },
        KernelMode::Parallel { threads: 2 },
        KernelMode::Parallel { threads: 4 },
    ];
    const PRIMARY: NodeId = NodeId(2);
    const BACKUP: NodeId = NodeId(3);
    let mut baseline = None;
    for kernel in kernels {
        let mut config = NocConfig::mesh(3, 3);
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .kernel(kernel)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .replicated_memory_at(RouterAddr::new(1, 1), RouterAddr::new(2, 2))
            .build()
            .expect("replicated layout");
        sys.set_fault_plan(FaultPlan::new(0xDEAD).with_router_down(RouterAddr::new(1, 1), 2500))
            .expect("valid fault plan");
        let base = sys
            .address_map(P1)
            .expect("map")
            .window_base(PRIMARY)
            .expect("window");
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             LIW R2, 555\n\
             XOR R0, R0, R0\n\
             ST R2, R1, R0\n\
             LIW R5, 4000\n\
             loop: SUBI R5, 1\n\
             JMPZD go\n\
             JMPD loop\n\
             go: LD R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST R3, R4, R0\n\
             LIW R6, 666\n\
             ADDI R1, 1\n\
             ST R6, R1, R0\n\
             HALT"
        ))
        .expect("assembles");
        sys.memory_mut(P1)
            .expect("p1 memory")
            .write_block(0, program.words());
        sys.activate_directly(P1).expect("activate p1");
        let elapsed = sys.run_until_halted(4_000_000).expect("run halts");
        assert_eq!(sys.memory(P1).expect("p1").read(0x20), 555, "{kernel:?}");
        assert_eq!(
            sys.memory(BACKUP).expect("backup").read(1),
            666,
            "{kernel:?}"
        );
        assert_eq!(sys.dead_nodes(), &[PRIMARY], "{kernel:?}");
        let fp = (
            fingerprint(&sys, elapsed),
            format!("{:?}", sys.failover_report()),
            sys.replication_writes(),
            sys.metrics_snapshot().to_prometheus(),
        );
        match &baseline {
            None => {
                assert_eq!(sys.failover_report().len(), 1);
                baseline = Some(fp);
            }
            Some(b) => assert_eq!(b, &fp, "failover observables diverged under {kernel:?}"),
        }
    }
}

#[test]
fn batch_window_never_changes_a_system_run() {
    // The batch-window knob is pure pacing: whatever window the parallel
    // kernel batches under, the program-driven run — memory contents,
    // retries, service counters, histogram — must match the per-cycle
    // active-set baseline exactly.
    let plan = || FaultPlan::new(0xFA57).with_drop_rate(0.15);
    let mut baseline = None;
    for (kernel, window) in [
        (KernelMode::Active, 0u32),
        (KernelMode::Parallel { threads: 2 }, 1),
        (KernelMode::Parallel { threads: 2 }, 5),
        (KernelMode::Parallel { threads: 2 }, 16),
        (KernelMode::Parallel { threads: 4 }, 16),
    ] {
        let mut config = NocConfig::multinoc();
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .kernel(kernel)
            .batch_window(window)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .expect("paper layout");
        sys.set_fault_plan(plan()).expect("valid fault plan");
        load_workload(&mut sys);
        let elapsed = sys.run_until_halted(4_000_000).expect("run halts");
        assert_eq!(
            sys.memory(P2).expect("p2").read(0x40),
            0x5A5A,
            "{kernel:?} window {window}"
        );
        let fp = fingerprint(&sys, elapsed);
        match &baseline {
            None => baseline = Some(fp),
            Some(b) => assert_eq!(
                b, &fp,
                "observables diverged under {kernel:?} with batch window {window}"
            ),
        }
    }
}

#[test]
fn topology_never_changes_kernel_invariance() {
    // The same program-driven workload on a torus and on a chiplet
    // mesh-of-meshes (both under fault-tolerant routing and a lossy
    // link): every kernel × thread count × batch window must reproduce
    // the per-topology baseline exactly, just like on the paper mesh.
    use hermes_noc::D2dChannel;
    let plan = || FaultPlan::new(0xFA57).with_drop_rate(0.1);
    for base in [
        NocConfig::torus(3, 3),
        NocConfig::chiplet(2, 2, D2dChannel::OffChipSerial),
    ] {
        let mut baseline = None;
        for (kernel, window) in [
            (KernelMode::Reference, 0u32),
            (KernelMode::Active, 0),
            (KernelMode::Parallel { threads: 1 }, 1),
            (KernelMode::Parallel { threads: 2 }, 16),
            (KernelMode::Parallel { threads: 8 }, 16),
        ] {
            let mut config = base.clone();
            config.routing = Routing::FaultTolerantXy;
            let mut sys = System::builder()
                .noc(config)
                .kernel(kernel)
                .batch_window(window)
                .serial_at(RouterAddr::new(0, 0))
                .processor_at(RouterAddr::new(0, 1))
                .processor_at(RouterAddr::new(1, 0))
                .memory_at(RouterAddr::new(1, 1))
                .build()
                .expect("the paper layout fits every topology");
            sys.set_fault_plan(plan()).expect("valid fault plan");
            load_workload(&mut sys);
            let elapsed = sys.run_until_halted(4_000_000).expect("run halts");
            assert_eq!(
                sys.memory(P2).expect("p2").read(0x40),
                0x5A5A,
                "{} {kernel:?}",
                base.topology
            );
            let fp = fingerprint(&sys, elapsed);
            match &baseline {
                None => baseline = Some(fp),
                Some(b) => assert_eq!(
                    b, &fp,
                    "{} diverged under {kernel:?} with batch window {window}",
                    base.topology
                ),
            }
        }
    }
}

#[test]
fn auto_kernel_builds_and_runs() {
    // `KernelMode::auto` picks by mesh size and host parallelism; on the
    // paper's 2×2 it must stay sequential, and whatever it picks must run.
    let auto = KernelMode::auto(2, 2);
    assert_eq!(auto, KernelMode::Active);
    let mut sys = build(auto, None);
    load_workload(&mut sys);
    sys.run_until_halted(1_000_000).expect("run halts");
    assert_eq!(sys.memory(P2).expect("p2").read(0x40), 0x5A5A);
}

//! Checkpoint/restore round-trip equivalence: a run resumed from a
//! checkpoint must be indistinguishable from the run that was never
//! interrupted — same final cycle, same memory images, same reliability
//! and service counters, same fault diagnosis, same metrics and trace
//! exports. The suite drives the same schedules the kernel-invariance
//! and fast-forward suites use, checkpoints them mid-flight (at *every*
//! cycle for the short healthy schedule), and compares the resumed
//! world against the uninterrupted one. It also covers the watchdog
//! restore hazard: a resumed run must never fire a DeadLink verdict the
//! uninterrupted run would not have fired.

use hermes_noc::{CycleWindow, FaultPlan, KernelMode, NocConfig, Port, RouterAddr, Routing};
use multinoc::memory::MemoryCore;
use multinoc::{NodeId, System};
use r8::asm::assemble;

const P1: NodeId = NodeId(1);
const P2: NodeId = NodeId(2);
const MEM: NodeId = NodeId(3);

fn build(kernel: KernelMode, plan: Option<FaultPlan>) -> System {
    let mut config = NocConfig::multinoc();
    config.routing = Routing::FaultTolerantXy;
    let mut sys = System::builder()
        .noc(config)
        .kernel(kernel)
        .serial_at(RouterAddr::new(0, 0))
        .processor_at(RouterAddr::new(0, 1))
        .processor_at(RouterAddr::new(1, 0))
        .memory_at(RouterAddr::new(1, 1))
        .build()
        .expect("paper layout");
    if let Some(plan) = plan {
        sys.set_fault_plan(plan).expect("valid fault plan");
    }
    sys
}

/// P1 writes through remote memory, pokes P2's memory and notifies it;
/// P2 reads back and halts. Remote reads stall the core; posted writes
/// ride the reliability layer with its retransmission timers.
fn load_workload(sys: &mut System) {
    let mem_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(MEM)
        .expect("window");
    let p2_base = sys
        .address_map(P1)
        .expect("map")
        .window_base(P2)
        .expect("window");
    let p1 = assemble(&format!(
        "LIW R1, {mem_base}\n\
         XOR R0, R0, R0\n\
         LIW R2, 777\n\
         ST  R2, R1, R0\n\
         LD  R3, R1, R0\n\
         LIW R4, 0x20\n\
         ST  R3, R4, R0\n\
         LIW R5, {p2_base}\n\
         LIW R6, 0x5A5A\n\
         ST  R6, R5, R0\n\
         LIW R7, 0xFFFD\n\
         LIW R2, {}\n\
         ST  R2, R0, R7\n\
         HALT",
        P2.as_u16(),
    ))
    .expect("p1 assembles");
    let p2 = assemble(&format!(
        "LIW R2, 0xFFFE\n\
         XOR R0, R0, R0\n\
         LIW R3, {}\n\
         ST  R3, R0, R2\n\
         LD  R4, R0, R0\n\
         LIW R5, 0x40\n\
         ST  R4, R5, R0\n\
         HALT",
        P1.as_u16(),
    ))
    .expect("p2 assembles");
    sys.memory_mut(P1)
        .expect("p1 memory")
        .write_block(0, p1.words());
    sys.memory_mut(P2)
        .expect("p2 memory")
        .write_block(0, p2.words());
    sys.activate_directly(P1).expect("activate p1");
    sys.activate_directly(P2).expect("activate p2");
}

/// FNV-1a over a memory image, so the fingerprint can cover every word
/// of every memory without dragging megabytes of debug text around.
fn mem_digest(mem: &MemoryCore) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for addr in 0..mem.words() {
        h ^= u64::from(mem.read(addr));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a finished run leaves behind, rendered comparable. This
/// deliberately spans every observable surface the repo exports:
/// counters, fault diagnosis, metrics text, the Perfetto trace and the
/// full memory images of every node.
fn fingerprint(sys: &System) -> Vec<String> {
    let mut fp = vec![
        format!("cycle={}", sys.cycle()),
        format!("retries={:?}", sys.retry_counters()),
        format!("services={:?}", sys.service_counters()),
        format!("faults={:?}", sys.noc_stats().faults),
        format!("latency={:?}", sys.noc_stats().latency_histogram()),
        format!("dead_links={:?}", sys.dead_links()),
        format!("dead_nodes={:?}", sys.dead_nodes()),
        format!("failover={:?}", sys.failover_report()),
        format!("dups={}", sys.duplicates_dropped()),
        sys.metrics_snapshot().to_prometheus(),
        sys.perfetto_json(),
    ];
    for i in 0..sys.table().len() {
        let node = NodeId(i as u8);
        if let Ok(mem) = sys.memory(node) {
            fp.push(format!("mem[{i}]={:#018x}", mem_digest(mem)));
        }
        if let Ok(util) = sys.processor_utilization(node) {
            fp.push(format!("util[{i}]={util:?}"));
        }
    }
    fp
}

#[test]
fn healthy_run_resumes_identically_from_every_cycle() {
    // The reference world: never interrupted.
    let mut reference = build(KernelMode::Active, None);
    load_workload(&mut reference);
    reference.run_until_halted(1_000_000).expect("run halts");
    let want = fingerprint(&reference);

    // The probed world: checkpointed at every single cycle. Each
    // checkpoint must (a) survive an immediate restore + re-checkpoint
    // byte-for-byte, and (b) resume to the exact reference fingerprint.
    let mut stepped = build(KernelMode::Active, None);
    load_workload(&mut stepped);
    let mut cycles_probed = 0u64;
    loop {
        let snap = stepped.checkpoint();
        let restored = System::restore(&snap).expect("restore");
        assert_eq!(
            restored.checkpoint(),
            snap,
            "checkpoint at cycle {} is not byte-stable across restore",
            stepped.cycle()
        );
        let mut resumed = restored;
        resumed
            .run_until_halted(1_000_000)
            .expect("resumed run halts");
        assert_eq!(
            fingerprint(&resumed),
            want,
            "resume from cycle {} diverged from the uninterrupted run",
            stepped.cycle()
        );
        if stepped.all_halted()
            && stepped.noc().is_idle()
            && stepped.link().is_idle()
            && stepped.net_quiet()
        {
            break;
        }
        assert!(cycles_probed < 100_000, "probe budget exhausted");
        stepped.step().expect("step");
        cycles_probed += 1;
    }
    assert_eq!(
        fingerprint(&stepped),
        want,
        "the per-cycle probing itself perturbed the run"
    );
    assert_eq!(sys_read(&reference, P1, 0x20), 777);
    assert_eq!(sys_read(&reference, P2, 0x40), 0x5A5A);
}

fn sys_read(sys: &System, node: NodeId, addr: u16) -> u16 {
    sys.memory(node).expect("memory").read(addr)
}

/// Runs the uninterrupted schedule once, then replays it with a single
/// mid-flight checkpoint at each of several cut points and asserts the
/// resumed world's final fingerprint matches the uninterrupted one.
fn assert_resumes_identically(
    make: impl Fn() -> System,
    prepare: impl Fn(&mut System),
    check: impl Fn(&System),
) {
    let mut reference = make();
    prepare(&mut reference);
    let elapsed = reference.run_until_halted(4_000_000).expect("run halts");
    check(&reference);
    let want = fingerprint(&reference);
    assert!(elapsed > 8, "schedule too short to cut mid-flight");
    for cut in [elapsed / 8, elapsed / 3, elapsed / 2, elapsed - 7] {
        let mut sys = make();
        prepare(&mut sys);
        sys.run(cut).expect("run to the cut point");
        let snap = sys.checkpoint();
        drop(sys); // the "crashed" world is gone; only the bytes survive
        let mut resumed = System::restore(&snap).expect("restore");
        assert_eq!(resumed.cycle(), cut);
        resumed
            .run_until_halted(4_000_000)
            .expect("resumed run halts");
        check(&resumed);
        assert_eq!(
            fingerprint(&resumed),
            want,
            "resume from cycle {cut} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn faulted_run_resumes_identically() {
    // Lossy delivery keeps retransmission timers, dedup state and seq
    // windows hot at every cut point; the trace log rides along too.
    assert_resumes_identically(
        || {
            let mut sys = build(
                KernelMode::Active,
                Some(FaultPlan::new(0xFA57).with_drop_rate(0.15)),
            );
            sys.enable_trace(4096);
            sys
        },
        load_workload,
        |sys| {
            assert!(
                sys.retry_counters().retransmissions > 0,
                "the workload must actually exercise retransmissions"
            );
            assert_eq!(sys_read(sys, P2, 0x40), 0x5A5A);
        },
    );
}

#[test]
fn degraded_run_resumes_identically() {
    // A permanent dead link: the diagnosis, reconfiguration epoch and
    // reroute state must all survive the checkpoint boundary.
    assert_resumes_identically(
        || {
            build(
                KernelMode::Active,
                Some(FaultPlan::new(11).with_link_down(
                    RouterAddr::new(0, 1),
                    Port::East,
                    CycleWindow::open_ended(0),
                )),
            )
        },
        |sys| {
            // Pre-seed so P1's read does not race its retransmitted write.
            sys.memory_mut(MEM).expect("mem").write(0, 777);
            load_workload(sys);
        },
        |sys| {
            assert!(sys.degraded(), "the dead link was diagnosed");
            assert_eq!(sys_read(sys, P2, 0x40), 0x5A5A);
        },
    );
}

#[test]
fn node_down_failover_resumes_identically() {
    // A replicated memory loses its primary mid-run; cut points land
    // both before and after the death, so the checkpoint must carry the
    // health monitors, the failover record and the rebound directory.
    const PRIMARY: NodeId = NodeId(2);
    const BACKUP: NodeId = NodeId(3);
    let make = || {
        let mut config = NocConfig::mesh(3, 3);
        config.routing = Routing::FaultTolerantXy;
        let mut sys = System::builder()
            .noc(config)
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .replicated_memory_at(RouterAddr::new(1, 1), RouterAddr::new(2, 2))
            .build()
            .expect("replicated layout");
        sys.set_fault_plan(FaultPlan::new(0xDEAD).with_router_down(RouterAddr::new(1, 1), 2500))
            .expect("valid fault plan");
        sys
    };
    let prepare = |sys: &mut System| {
        let base = sys
            .address_map(P1)
            .expect("map")
            .window_base(PRIMARY)
            .expect("window");
        let program = assemble(&format!(
            "LIW R1, {base}\n\
             LIW R2, 555\n\
             XOR R0, R0, R0\n\
             ST R2, R1, R0\n\
             LIW R5, 4000\n\
             loop: SUBI R5, 1\n\
             JMPZD go\n\
             JMPD loop\n\
             go: LD R3, R1, R0\n\
             LIW R4, 0x20\n\
             ST R3, R4, R0\n\
             LIW R6, 666\n\
             ADDI R1, 1\n\
             ST R6, R1, R0\n\
             HALT"
        ))
        .expect("assembles");
        sys.memory_mut(P1)
            .expect("p1 memory")
            .write_block(0, program.words());
        sys.activate_directly(P1).expect("activate p1");
    };
    assert_resumes_identically(make, prepare, |sys| {
        assert_eq!(sys_read(sys, P1, 0x20), 555);
        assert_eq!(sys_read(sys, BACKUP, 1), 666);
        assert_eq!(sys.dead_nodes(), &[PRIMARY]);
        assert_eq!(sys.failover_report().len(), 1);
    });
}

#[test]
fn checkpoint_and_restore_commute_with_the_kernel() {
    // The snapshot captures simulated state, not simulator state: a
    // checkpoint taken under the 8-thread parallel kernel must resume
    // identically under the reference kernel, and vice versa.
    let plan = || FaultPlan::new(0xFA57).with_drop_rate(0.15);
    let mut reference = build(KernelMode::Parallel { threads: 8 }, Some(plan()));
    load_workload(&mut reference);
    let elapsed = reference.run_until_halted(4_000_000).expect("run halts");
    let want = fingerprint(&reference);
    let swaps = [
        (
            KernelMode::Parallel { threads: 8 },
            KernelMode::Reference,
            "parallel → reference",
        ),
        (
            KernelMode::Reference,
            KernelMode::Parallel { threads: 8 },
            "reference → parallel",
        ),
    ];
    for (run_under, resume_under, label) in swaps {
        let mut sys = build(run_under, Some(plan()));
        load_workload(&mut sys);
        sys.run(elapsed / 2).expect("run to the cut point");
        let snap = sys.checkpoint();
        let mut resumed = System::restore_with_kernel(&snap, resume_under).expect("restore");
        resumed
            .run_until_halted(4_000_000)
            .expect("resumed run halts");
        assert_eq!(
            fingerprint(&resumed),
            want,
            "kernel swap {label} changed the simulated outcome"
        );
    }
}

#[test]
fn restored_watchdog_does_not_fire_a_false_dead_link() {
    // Regression for the restore-path determinism hazard: the watchdog's
    // idle/progress windows are checkpointed verbatim and must NOT be
    // re-armed from the restored world's current counters. At real baud
    // rates the Activate command takes far longer than the watchdog
    // window to trickle over the serial link; a restore taken during
    // that quiet stretch used to look like an instant stall once the
    // first packet entered the mesh.
    use multinoc::serial::{HostCommand, SerialConfig, SYNC_BYTE};
    let make = || {
        let mut sys = System::builder()
            .noc(NocConfig::multinoc())
            .serial(SerialConfig::from_baud(25.0e6, 115_200.0))
            .serial_at(RouterAddr::new(0, 0))
            .processor_at(RouterAddr::new(0, 1))
            .processor_at(RouterAddr::new(1, 0))
            .memory_at(RouterAddr::new(1, 1))
            .build()
            .expect("paper layout");
        // Any fault plan arms the watchdog; inject nothing.
        sys.set_fault_plan(FaultPlan::new(1)).expect("plan");
        let program = assemble("LIW R1, 1\nHALT").expect("assembles");
        sys.memory_mut(P1)
            .expect("p1 memory")
            .write_block(0, program.words());
        sys.link_mut().host_send(&[SYNC_BYTE]);
        sys.link_mut()
            .host_send(&HostCommand::Activate { node: 1 }.to_bytes());
        sys
    };
    let mut reference = make();
    let elapsed = reference
        .run_until_halted(1_000_000)
        .expect("slow serial is idle time, not a dead link");
    let want = fingerprint(&reference);
    // The quiet activation trickle must outlast the 4096-cycle watchdog
    // window for the probe to mean anything; checkpoint inside it, while
    // the host bytes are still in flight, including right before the
    // first packet finally enters the mesh.
    assert!(elapsed > 4_200, "trickle too fast to probe past the window");
    for cut in [2_000u64, 3_500, elapsed - 7] {
        let mut sys = make();
        sys.run(cut).expect("run to the cut point");
        let snap = sys.checkpoint();
        let mut resumed = System::restore(&snap).expect("restore");
        resumed
            .run_until_halted(1_000_000)
            .unwrap_or_else(|e| panic!("restore at cycle {cut} fired a false verdict: {e}"));
        assert_eq!(
            fingerprint(&resumed),
            want,
            "resume from cycle {cut} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn checkpoint_file_round_trips_atomically() {
    let dir = std::env::temp_dir().join(format!("multinoc-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mid_flight.mnsp");
    let mut sys = build(KernelMode::Active, None);
    load_workload(&mut sys);
    sys.run(40).expect("run");
    sys.checkpoint_to_file(&path).expect("write checkpoint");
    assert!(
        !dir.join("mid_flight.mnsp.tmp").exists(),
        "the temporary file must be renamed away"
    );
    let mut reference = sys;
    reference.run_until_halted(1_000_000).expect("run halts");
    let mut resumed = System::restore_from_file(&path).expect("restore from file");
    resumed
        .run_until_halted(1_000_000)
        .expect("resumed run halts");
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_checkpoint_writes_on_schedule_and_resumes() {
    let dir = std::env::temp_dir().join(format!("multinoc-autockpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("auto.mnsp");
    let mut reference = build(KernelMode::Active, None);
    load_workload(&mut reference);
    reference.run_until_halted(1_000_000).expect("run halts");
    let want = fingerprint(&reference);

    let mut sys = build(KernelMode::Active, None);
    load_workload(&mut sys);
    sys.enable_auto_checkpoint(&path, 25);
    sys.run(120).expect("run");
    assert!(
        sys.auto_checkpoints_written() >= 4,
        "expected a checkpoint every 25 cycles, saw {}",
        sys.auto_checkpoints_written()
    );
    // The file on disk is a valid resume point...
    let mut resumed = System::restore_from_file(&path).expect("restore auto checkpoint");
    resumed
        .run_until_halted(1_000_000)
        .expect("resumed run halts");
    assert_eq!(fingerprint(&resumed), want);
    // ...and the policy itself is runtime configuration: it is not
    // serialized, and disabling it stops the writes.
    assert_eq!(resumed.auto_checkpoints_written(), 0);
    sys.disable_auto_checkpoint();
    let written = sys.auto_checkpoints_written();
    sys.run_until_halted(1_000_000).expect("run halts");
    assert_eq!(sys.auto_checkpoints_written(), written);
    assert_eq!(fingerprint(&sys), want);
    std::fs::remove_dir_all(&dir).ok();
}

//! Value-generation strategies: the subset of `proptest::strategy` the
//! workspace tests use.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use prng::Rng64;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a seeded [`Rng64`].
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng64) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into a branch strategy. `depth`
    /// bounds the nesting; `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility but only guide the leaf/branch mix.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        // Branch with probability 1/(b+1) where b is the expected branch
        // fan-out, so the expected total tree size stays bounded (the
        // same idea as upstream proptest's sizing); a pure leaf level at
        // the bottom bounds the worst case by `depth`.
        let branch_out = expected_branch_size.max(1);
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::weighted(vec![(branch_out, leaf.clone()), (1, branch)]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type behind a cheaply clonable
    /// reference-counted handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng64) -> T {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Rng64) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut Rng64) -> U {
        (self.map)(self.source.sample(rng))
    }
}

/// Weighted choice between strategies of one value type; backs the
/// `prop_oneof!` macro and `prop_recursive`.
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Uniform choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|arm| (1, arm)).collect())
    }

    /// Weighted choice over `arms` (must be non-empty, weights > 0).
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union weights must not all be zero");
        Self { arms, total_weight }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng64) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        self.arms[self.arms.len() - 1].1.sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span + 1) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut Rng64) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng64::new(1);
        for _ in 0..500 {
            let v = (3u16..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i8..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = Rng64::new(2);
        let strat = Just(21u32).prop_map(|v| v * 2);
        assert_eq!(strat.sample(&mut rng), 42);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = Rng64::new(3);
        let union = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[usize::from(union.sample(&mut rng)) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // the payload only exercises generation
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = Rng64::new(4);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never branched");
        assert!(max_depth <= 4, "recursion exceeded its depth bound");
    }

    #[test]
    fn tuples_compose() {
        let mut rng = Rng64::new(5);
        let (a, b, c) = (0u8..4, Just(7u16), 0i8..=0).sample(&mut rng);
        assert!(a < 4);
        assert_eq!(b, 7);
        assert_eq!(c, 0);
    }
}

//! `any::<T>()` — default strategies for primitive types.

use std::fmt;
use std::marker::PhantomData;

use prng::Rng64;

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy, selected via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut Rng64) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut Rng64) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut Rng64) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut Rng64) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) > 0 {
            (0x20 + rng.below(0x5F)) as u8 as char
        } else {
            char::from_u32(rng.next_u32() % 0xD800).unwrap_or('\u{FFFD}')
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng64) -> T {
        T::arbitrary_value(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = Rng64::new(1);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(any::<bool>().sample(&mut rng))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn any_ints_are_full_range() {
        let mut rng = Rng64::new(2);
        let mut high = false;
        for _ in 0..1000 {
            if any::<u16>().sample(&mut rng) > 0x7FFF {
                high = true;
            }
        }
        assert!(high, "upper half of u16 never sampled");
    }

    #[test]
    fn chars_are_valid() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let c = any::<char>().sample(&mut rng);
            assert!(char::from_u32(c as u32).is_some());
        }
    }
}

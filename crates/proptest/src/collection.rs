//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use prng::Rng64;

use crate::strategy::Strategy;

/// An inclusive-exclusive element-count range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        Self {
            min: *range.start(),
            max_exclusive: *range.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` whose length is drawn from `size` and
/// whose elements are drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng64) -> Self::Value {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = Rng64::new(1);
        let strat = vec(0u8..10, 2..5);
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
            seen[v.len() - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exact_and_inclusive_sizes() {
        let mut rng = Rng64::new(2);
        assert_eq!(vec(0u8..5, 3).sample(&mut rng).len(), 3);
        for _ in 0..50 {
            let len = vec(0u8..5, 1..=2).sample(&mut rng).len();
            assert!((1..=2).contains(&len));
        }
    }
}

//! The case runner behind the `proptest!` macro.

use prng::{hash_str, Rng64};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// `prop_assert!`-style failure; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (see [`TestCaseError::Reject`]).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }

    /// A failure (see [`TestCaseError::Fail`]).
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `config.cases` successful cases of `case`, panicking (with the
/// generated inputs) on the first failure.
///
/// The RNG seed derives from the test name, so runs are reproducible;
/// set `PROPTEST_SEED` to explore a different deterministic stream.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut Rng64) -> (String, TestCaseResult),
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x4D75_6C74_694E_6F43); // "MultiNoC"
    let mut rng = Rng64::new(base ^ hash_str(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} while seeking {} cases); last: {reason}",
                    config.cases,
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s): \
                     {reason}\n  inputs: {inputs}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut calls = 0;
        run_proptest(&ProptestConfig::with_cases(17), "count", |_rng| {
            calls += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(calls, 17);
    }

    #[test]
    fn rejections_do_not_count_as_passes() {
        let mut calls = 0u32;
        run_proptest(&ProptestConfig::with_cases(4), "rejects", |_rng| {
            calls += 1;
            if calls.is_multiple_of(2) {
                (String::new(), Err(TestCaseError::reject("odd ones only")))
            } else {
                (String::new(), Ok(()))
            }
        });
        // Passes land on odd calls 1, 3, 5, 7; the rejects in between
        // are re-drawn without counting.
        assert_eq!(calls, 7);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_the_reason() {
        run_proptest(&ProptestConfig::default(), "fails", |_rng| {
            ("x = 1".into(), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume!")]
    fn endless_rejection_is_reported() {
        run_proptest(&ProptestConfig::with_cases(1), "starves", |_rng| {
            (String::new(), Err(TestCaseError::reject("never")))
        });
    }

    #[test]
    fn same_name_gives_same_stream() {
        let mut first = Vec::new();
        run_proptest(&ProptestConfig::with_cases(5), "stream", |rng| {
            first.push(rng.next_u64());
            (String::new(), Ok(()))
        });
        let mut second = Vec::new();
        run_proptest(&ProptestConfig::with_cases(5), "stream", |rng| {
            second.push(rng.next_u64());
            (String::new(), Ok(()))
        });
        assert_eq!(first, second);
    }
}

//! # Offline proptest subset
//!
//! An in-tree, dependency-free replacement for the parts of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses, so
//! `cargo test` works with **no network / registry access**. Test files
//! written against upstream proptest compile unchanged:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//! - [`Strategy`](strategy::Strategy) with `prop_map`, `prop_recursive`
//!   and `boxed`, plus range, tuple and [`collection::vec`] strategies,
//! - [`any`](arbitrary::any), [`Just`](strategy::Just), [`prop_oneof!`],
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Two deliberate simplifications: sampling is driven by the in-tree
//! SplitMix64 generator with a per-test seed derived from the test name
//! (reproducible; override with `PROPTEST_SEED`), and there is **no
//! shrinking** — a failure reports the exact generated inputs instead.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` function running the body over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                &($config),
                ::core::stringify!($name),
                |__proptest_rng| {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::sample(&($strat), __proptest_rng),)+
                    );
                    let __proptest_inputs = ::std::format!(
                        ::core::concat!($(::core::stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __proptest_outcome: $crate::test_runner::TestCaseResult =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    (__proptest_inputs, __proptest_outcome)
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Chooses between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// (with its inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        if !($left == $right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    $left,
                    $right,
                ),
            ));
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        if !($left == $right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` ({})\n  left: `{:?}`\n right: `{:?}`",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    ::std::format!($($fmt)+),
                    $left,
                    $right,
                ),
            ));
        }
    };
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        if $left == $right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: `{:?}`",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    $left,
                ),
            ));
        }
    };
}

/// Skips the current case (re-drawing fresh inputs) when an assumption
/// about the generated values does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Exercises the whole macro surface end to end.
        #[test]
        fn macro_round_trip(
            a in 0u16..100,
            b in any::<u8>(),
            items in crate::collection::vec(0u8..4, 0..5),
        ) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(u16::from(b) + a, a + u16::from(b), "commutativity for {}", a);
            prop_assert_ne!(a, 13);
            prop_assert!(items.len() < 5, "len was {}", items.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}

//! Smoke tests of the `r8cc` command-line compiler driver.

use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("r8cc-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn compiles_to_assembly() {
    let src = write_temp("p.r8c", "func main() { printf(40 + 2); }");
    let output = Command::new(env!("CARGO_BIN_EXE_r8cc"))
        .arg(&src)
        .output()
        .expect("run r8cc");
    assert!(output.status.success(), "{output:?}");
    let asm = String::from_utf8(output.stdout).unwrap();
    assert!(asm.contains("Lf_main"), "{asm}");
    // The emitted assembly must itself assemble.
    r8::asm::assemble(&asm).expect("compiler output assembles");
}

#[test]
fn compiles_to_object_text() {
    let src = write_temp("q.r8c", "func main() { poke(0x700, 7); }");
    let output = Command::new(env!("CARGO_BIN_EXE_r8cc"))
        .arg(&src)
        .arg("--obj")
        .output()
        .expect("run r8cc");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    let words = r8::objfile::from_text(&text).expect("valid object text");
    assert!(!words.is_empty());
}

#[test]
fn reports_compile_errors() {
    let src = write_temp("bad.r8c", "func main() {\n  x = 1;\n}");
    let output = Command::new(env!("CARGO_BIN_EXE_r8cc"))
        .arg(&src)
        .output()
        .expect("run r8cc");
    assert!(!output.status.success());
    let err = String::from_utf8(output.stderr).unwrap();
    assert!(err.contains("line 2") && err.contains("undefined"), "{err}");
}

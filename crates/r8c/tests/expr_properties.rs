//! Differential testing of the compiler: random expression trees are
//! compiled (at both optimization levels), executed on the R8 core, and
//! compared against a host-side reference interpreter with the exact
//! 16-bit semantics.

use proptest::prelude::*;
use r8::core::{Cpu, RamBus};
use r8c::ast::{BinOp, UnOp};
use r8c::fold::{eval_bin, eval_un};
use r8c::OptLevel;

/// A generated expression over two variables `a` and `b`.
#[derive(Debug, Clone)]
enum T {
    Num(u16),
    VarA,
    VarB,
    Un(UnOp, Box<T>),
    Bin(BinOp, Box<T>, Box<T>),
}

impl T {
    fn source(&self) -> String {
        match self {
            T::Num(n) => n.to_string(),
            T::VarA => "a".into(),
            T::VarB => "b".into(),
            T::Un(op, e) => {
                let symbol = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                format!("({symbol}{})", e.source())
            }
            T::Bin(op, l, r) => {
                let symbol = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::LogicAnd => "&&",
                    BinOp::LogicOr => "||",
                };
                format!("({} {symbol} {})", l.source(), r.source())
            }
        }
    }

    fn eval(&self, a: u16, b: u16) -> u16 {
        match self {
            T::Num(n) => *n,
            T::VarA => a,
            T::VarB => b,
            T::Un(op, e) => eval_un(*op, e.eval(a, b)),
            T::Bin(op, l, r) => eval_bin(*op, l.eval(a, b), r.eval(a, b)),
        }
    }
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::LogicAnd),
        Just(BinOp::LogicOr),
    ]
}

fn un_op() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)]
}

fn tree() -> impl Strategy<Value = T> {
    // Small literals keep runtime shift loops fast; the variables still
    // inject full-range values.
    let leaf = prop_oneof![(0u16..300).prop_map(T::Num), Just(T::VarA), Just(T::VarB),];
    leaf.prop_recursive(5, 24, 3, |inner| {
        prop_oneof![
            (un_op(), inner.clone()).prop_map(|(op, e)| T::Un(op, Box::new(e))),
            (bin_op(), inner.clone(), inner).prop_map(|(op, l, r)| T::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
        ]
    })
}

fn run_compiled(source: &str, opt: OptLevel) -> u16 {
    let assembly = r8c::compile_with(source, opt).expect("compiles");
    let program = r8::asm::assemble(&assembly).expect("assembles");
    let mut bus = RamBus::new(8192);
    bus.load(0, program.words());
    let mut cpu = Cpu::new();
    cpu.run(&mut bus, 50_000_000).expect("halts");
    bus.peek(0x700)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_match_the_reference(
        expr in tree(),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let source = format!(
            "func main() {{
                 var a = {a};
                 var b = {b};
                 poke(0x700, {});
             }}",
            expr.source()
        );
        let expected = expr.eval(a, b);
        for opt in [OptLevel::None, OptLevel::Basic] {
            let got = run_compiled(&source, opt);
            prop_assert_eq!(
                got,
                expected,
                "opt {:?}, expr {} with a={} b={}",
                opt,
                expr.source(),
                a,
                b
            );
        }
    }

    /// Folding never changes the observable result of a pure program.
    #[test]
    fn opt_levels_agree(expr in tree()) {
        let source = format!(
            "func main() {{
                 var a = 7;
                 var b = 40000;
                 poke(0x700, {});
             }}",
            expr.source()
        );
        prop_assert_eq!(
            run_compiled(&source, OptLevel::None),
            run_compiled(&source, OptLevel::Basic)
        );
    }
}

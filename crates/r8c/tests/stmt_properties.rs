//! Differential testing of statement-level code generation: random
//! programs of assignments and nested `if`/`else` over three variables,
//! executed on the R8 core and compared against a host-side interpreter.

use std::collections::BTreeMap;

use proptest::prelude::*;
use r8::core::{Cpu, RamBus};
use r8c::ast::BinOp;
use r8c::fold::eval_bin;
use r8c::OptLevel;

const VARS: [&str; 3] = ["a", "b", "c"];

/// A generated expression (kept simpler than the expression-level test:
/// the point here is statement structure).
#[derive(Debug, Clone)]
enum E {
    Num(u16),
    Var(usize),
    Bin(BinOp, Box<E>, Box<E>),
}

impl E {
    fn source(&self) -> String {
        match self {
            E::Num(n) => n.to_string(),
            E::Var(i) => VARS[*i].to_string(),
            E::Bin(op, l, r) => {
                let symbol = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Xor => "^",
                    BinOp::And => "&",
                    BinOp::Lt => "<",
                    BinOp::Eq => "==",
                    _ => unreachable!("generator is restricted"),
                };
                format!("({} {symbol} {})", l.source(), r.source())
            }
        }
    }

    fn eval(&self, env: &BTreeMap<usize, u16>) -> u16 {
        match self {
            E::Num(n) => *n,
            E::Var(i) => env[i],
            E::Bin(op, l, r) => eval_bin(*op, l.eval(env), r.eval(env)),
        }
    }
}

/// A generated statement.
#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    If(E, Vec<S>, Vec<S>),
}

impl S {
    fn source(&self, indent: usize) -> String {
        let pad = "    ".repeat(indent);
        match self {
            S::Assign(i, e) => format!("{pad}{} = {};\n", VARS[*i], e.source()),
            S::If(cond, then_body, else_body) => {
                let mut text = format!("{pad}if ({}) {{\n", cond.source());
                for s in then_body {
                    text.push_str(&s.source(indent + 1));
                }
                text.push_str(&format!("{pad}}} else {{\n"));
                for s in else_body {
                    text.push_str(&s.source(indent + 1));
                }
                text.push_str(&format!("{pad}}}\n"));
                text
            }
        }
    }

    fn eval(&self, env: &mut BTreeMap<usize, u16>) {
        match self {
            S::Assign(i, e) => {
                let v = e.eval(env);
                env.insert(*i, v);
            }
            S::If(cond, then_body, else_body) => {
                let body = if cond.eval(env) != 0 {
                    then_body
                } else {
                    else_body
                };
                for s in body {
                    s.eval(env);
                }
            }
        }
    }
}

fn expr() -> impl Strategy<Value = E> {
    let op = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Xor),
        Just(BinOp::And),
        Just(BinOp::Lt),
        Just(BinOp::Eq),
    ];
    let leaf = prop_oneof![(0u16..1000).prop_map(E::Num), (0usize..3).prop_map(E::Var)];
    leaf.prop_recursive(3, 12, 2, move |inner| {
        (op.clone(), inner.clone(), inner)
            .prop_map(|(op, l, r)| E::Bin(op, Box::new(l), Box::new(r)))
    })
}

fn stmt() -> impl Strategy<Value = S> {
    let assign = (0usize..3, expr()).prop_map(|(i, e)| S::Assign(i, e));
    assign.prop_recursive(3, 16, 4, |inner| {
        (
            expr(),
            proptest::collection::vec(inner.clone(), 0..3),
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(cond, then_body, else_body)| S::If(cond, then_body, else_body))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_statements_match_the_interpreter(
        stmts in proptest::collection::vec(stmt(), 1..8),
        a in any::<u16>(),
        b in any::<u16>(),
        c in any::<u16>(),
    ) {
        // Reference execution.
        let mut env = BTreeMap::from([(0, a), (1, b), (2, c)]);
        for s in &stmts {
            s.eval(&mut env);
        }
        // Compiled execution: final state poked into fixed addresses.
        let mut body = String::new();
        for s in &stmts {
            body.push_str(&s.source(1));
        }
        let source = format!(
            "func main() {{
                 var a = {a};
                 var b = {b};
                 var c = {c};
             {body}
                 poke(0x700, a);
                 poke(0x701, b);
                 poke(0x702, c);
             }}"
        );
        for opt in [OptLevel::None, OptLevel::Basic] {
            let assembly = r8c::compile_with(&source, opt).expect("compiles");
            let program = r8::asm::assemble(&assembly).expect("assembles");
            let mut bus = RamBus::new(16384);
            bus.load(0, program.words());
            let mut cpu = Cpu::new();
            cpu.run(&mut bus, 50_000_000).expect("halts");
            for (i, addr) in [(0usize, 0x700u16), (1, 0x701), (2, 0x702)] {
                prop_assert_eq!(
                    bus.peek(addr),
                    env[&i],
                    "variable {} at {:?} diverged in\n{}",
                    VARS[i],
                    opt,
                    source
                );
            }
        }
    }
}

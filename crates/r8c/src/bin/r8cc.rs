//! `r8cc` — compile R8C source to R8 assembly or object text.
//!
//! ```text
//! r8cc <input.r8c> [-o <output>] [--obj]
//! ```
//!
//! By default emits assembly; `--obj` assembles it and emits object
//! text (loadable by `r8sim` and the MultiNoC host).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut obj = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-o" => match iter.next() {
                Some(path) => output = Some(path.clone()),
                None => return usage("-o needs a path"),
            },
            "--obj" => obj = true,
            "-h" | "--help" => return usage(""),
            path if input.is_none() => input = Some(path.to_string()),
            extra => return usage(&format!("unexpected argument `{extra}`")),
        }
    }
    let Some(input) = input else {
        return usage("missing input file");
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("r8cc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = if obj {
        match r8c::build(&source) {
            Ok(program) => r8::objfile::program_to_text(&program),
            Err(e) => {
                eprintln!("r8cc: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match r8c::compile(&source) {
            Ok(assembly) => assembly,
            Err(e) => {
                eprintln!("r8cc: {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("r8cc: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("r8cc: {problem}");
    }
    eprintln!("usage: r8cc <input.r8c> [-o <output>] [--obj]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Lexical analysis.

use crate::error::{CompileError, ErrorKind};

/// A token with its source line (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds of the R8C language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier.
    Ident(String),
    /// A 16-bit number literal.
    Number(u16),
    /// `var`
    Var,
    /// `func`
    Func,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let text = match other {
                    TokenKind::Var => "var",
                    TokenKind::Func => "func",
                    TokenKind::If => "if",
                    TokenKind::Else => "else",
                    TokenKind::While => "while",
                    TokenKind::Return => "return",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Comma => ",",
                    TokenKind::Semicolon => ";",
                    TokenKind::Assign => "=",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Amp => "&",
                    TokenKind::Pipe => "|",
                    TokenKind::Caret => "^",
                    TokenKind::Tilde => "~",
                    TokenKind::Bang => "!",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    TokenKind::Eq => "==",
                    TokenKind::Ne => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Gt => ">",
                    TokenKind::Le => "<=",
                    TokenKind::Ge => ">=",
                    TokenKind::AndAnd => "&&",
                    TokenKind::OrOr => "||",
                    _ => unreachable!(),
                };
                f.write_str(text)
            }
        }
    }
}

/// Tokenizes R8C source. Comments run from `//` to end of line.
///
/// # Errors
///
/// [`CompileError`] on characters outside the language or number
/// literals that overflow 16 bits.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = parse_number(&text).ok_or(CompileError {
                    line,
                    kind: ErrorKind::BadNumber(text.clone()),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match text.as_str() {
                    "var" => TokenKind::Var,
                    "func" => TokenKind::Func,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "return" => TokenKind::Return,
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token { kind, line });
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semicolon,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '%' => TokenKind::Percent,
                    '^' => TokenKind::Caret,
                    '~' => TokenKind::Tilde,
                    '=' => {
                        if two(&mut chars, '=') {
                            TokenKind::Eq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            TokenKind::Ne
                        } else {
                            TokenKind::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '<') {
                            TokenKind::Shl
                        } else if two(&mut chars, '=') {
                            TokenKind::Le
                        } else {
                            TokenKind::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '>') {
                            TokenKind::Shr
                        } else if two(&mut chars, '=') {
                            TokenKind::Ge
                        } else {
                            TokenKind::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            TokenKind::AndAnd
                        } else {
                            TokenKind::Amp
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            TokenKind::OrOr
                        } else {
                            TokenKind::Pipe
                        }
                    }
                    other => {
                        return Err(CompileError {
                            line,
                            kind: ErrorKind::UnexpectedChar(other),
                        })
                    }
                };
                tokens.push(Token { kind, line });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn parse_number(text: &str) -> Option<u16> {
    let value = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = text.strip_prefix("0b").or_else(|| text.strip_prefix("0B")) {
        u32::from_str_radix(bin, 2).ok()?
    } else {
        text.parse::<u32>().ok()?
    };
    u16::try_from(value).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_function() {
        assert_eq!(
            kinds("func f(x) { return x + 1; }"),
            vec![
                TokenKind::Func,
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::Return,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Number(1),
                TokenKind::Semicolon,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= << >> && || = < >"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn number_bases() {
        assert_eq!(
            kinds("10 0x1F 0b101"),
            vec![
                TokenKind::Number(10),
                TokenKind::Number(0x1F),
                TokenKind::Number(5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let tokens = lex("1 // comment\n2").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn overflowing_number_is_an_error() {
        let e = lex("70000").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::BadNumber(_)));
    }

    #[test]
    fn stray_character_is_an_error() {
        let e = lex("a @ b").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::UnexpectedChar('@')));
    }
}

//! Compiler errors.

use std::error::Error;
use std::fmt;

/// A compilation failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// The ways compilation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// A character that starts no token.
    UnexpectedChar(char),
    /// A number literal that does not parse or exceeds 16 bits.
    BadNumber(String),
    /// The parser expected something else.
    Syntax {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// Use of an undefined variable or function.
    Undefined(String),
    /// A name defined twice in the same scope.
    Redefined(String),
    /// Wrong number of call arguments.
    Arity {
        /// The function called.
        name: String,
        /// Parameters it declares.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// Indexing a scalar or assigning to an array name.
    NotAnArray(String),
    /// Direct or indirect recursion (functions use static storage).
    Recursion(String),
    /// The program has no `main` function.
    NoMain,
    /// `return` outside a function body (unreachable via the grammar but
    /// kept for completeness).
    StrayReturn,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ErrorKind::BadNumber(s) => write!(f, "bad number literal `{s}`"),
            ErrorKind::Syntax { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ErrorKind::Undefined(name) => write!(f, "undefined name `{name}`"),
            ErrorKind::Redefined(name) => write!(f, "`{name}` is defined twice"),
            ErrorKind::Arity {
                name,
                expected,
                found,
            } => write!(f, "`{name}` takes {expected} argument(s), got {found}"),
            ErrorKind::NotAnArray(name) => write!(f, "`{name}` is not an array"),
            ErrorKind::Recursion(name) => {
                write!(f, "`{name}` is recursive; r8c functions use static storage")
            }
            ErrorKind::NoMain => write!(f, "program has no `main` function"),
            ErrorKind::StrayReturn => write!(f, "`return` outside a function"),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_detail() {
        let e = CompileError {
            line: 3,
            kind: ErrorKind::Undefined("foo".into()),
        };
        assert_eq!(e.to_string(), "line 3: undefined name `foo`");
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}

//! # r8c — a small C-like language for the R8 processor
//!
//! Section 5 of the MultiNoC paper names as future work "a C compiler to
//! automatically generate R8 assembly code, allowing faster software
//! implementation". This crate is that compiler: a compact, fully tested
//! C-like language (unsigned 16-bit integers, globals, arrays, functions,
//! `if`/`while`, the usual expression operators) compiled to the R8
//! assembly of the [`r8`] crate.
//!
//! ## Language
//!
//! ```text
//! // globals (u16) and arrays
//! var threshold = 40;
//! var histogram[16];
//!
//! func weight(x) {
//!     var acc = 0;
//!     while (x) {           // any nonzero value is true
//!         acc = acc + (x & 1);
//!         x = x >> 1;
//!     }
//!     return acc;
//! }
//!
//! func main() {
//!     var i = 0;
//!     while (i < 16) {
//!         histogram[i] = weight(i * 259);
//!         i = i + 1;
//!     }
//!     printf(histogram[7]); // send to the host monitor
//! }
//! ```
//!
//! - Every value is an unsigned 16-bit integer; comparisons yield 0/1.
//! - `&&` and `||` short-circuit; `!` is logical not, `~` bitwise not.
//! - Intrinsics map onto the MultiNoC platform: `printf(e)` / `scanf()`
//!   are the `0xFFFF` I/O port, and `peek(addr)` / `poke(addr, value)`
//!   give raw access to the NUMA address map — remote windows, and the
//!   `wait`/`notify` command addresses.
//! - Functions use static storage for parameters and locals (no
//!   recursion), the idiomatic choice for a 1K-word embedded memory;
//!   the compiler rejects recursive calls at compile time.
//!
//! ## Example
//!
//! ```rust
//! use r8::core::{Cpu, RamBus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let assembly = r8c::compile(
//!     "func main() {
//!          var a = 6;
//!          var b = 7;
//!          poke(0x200, a * b);
//!      }",
//! )?;
//! let program = r8::asm::assemble(&assembly)?;
//! let mut bus = RamBus::new(1024);
//! bus.load(0, program.words());
//! let mut cpu = Cpu::new();
//! cpu.run(&mut bus, 100_000)?;
//! assert_eq!(bus.peek(0x200), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod fold;
pub mod lexer;
pub mod parser;

pub use error::CompileError;

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Straight translation, no folding.
    None,
    /// Constant folding and algebraic simplification ([`fold`]); the
    /// default.
    #[default]
    Basic,
}

/// Compiles R8C source text to R8 assembly at the default optimization
/// level ([`OptLevel::Basic`]).
///
/// # Errors
///
/// Returns a [`CompileError`] with the source line for lexical, syntax
/// and semantic errors (unknown names, arity mismatches, recursion).
pub fn compile(source: &str) -> Result<String, CompileError> {
    compile_with(source, OptLevel::default())
}

/// Compiles at an explicit optimization level.
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with(source: &str, opt: OptLevel) -> Result<String, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    match opt {
        OptLevel::None => codegen::generate_with(&program, false),
        OptLevel::Basic => codegen::generate_with(&fold::fold_program(&program), true),
    }
}

/// Compiles and assembles in one step, yielding the loadable image.
///
/// # Errors
///
/// A [`CompileError`] from compilation; assembly of compiler output
/// failing is a compiler bug and panics with the offending assembly.
pub fn build(source: &str) -> Result<r8::Program, CompileError> {
    let assembly = compile(source)?;
    Ok(r8::asm::assemble(&assembly)
        .unwrap_or_else(|e| panic!("compiler emitted invalid assembly ({e}):\n{assembly}")))
}

#[cfg(test)]
mod tests {
    use r8::core::{Cpu, RamBus};

    /// Compiles and runs `source`, returning the memory bus afterwards.
    pub(crate) fn run(source: &str) -> (Cpu, RamBus) {
        let program = crate::build(source).expect("compiles");
        let mut bus = RamBus::new(4096);
        bus.load(0, program.words());
        let mut cpu = Cpu::new();
        cpu.run(&mut bus, 10_000_000).expect("halts");
        (cpu, bus)
    }

    #[test]
    fn end_to_end_smoke() {
        let (_, bus) = run("func main() { poke(0x300, 1 + 2 * 3); }");
        assert_eq!(bus.peek(0x300), 7);
    }
}

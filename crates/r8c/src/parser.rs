//! Recursive-descent parser.

use crate::ast::{BinOp, Expr, Func, Global, Program, Stmt, UnOp};
use crate::error::{CompileError, ErrorKind};
use crate::lexer::{Token, TokenKind};

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// [`CompileError`] with the offending line on any syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> &TokenKind {
        let kind = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, expected: &'static str) -> CompileError {
        CompileError {
            line: self.line(),
            kind: ErrorKind::Syntax {
                expected,
                found: self.peek().to_string(),
            },
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &'static str) -> Result<(), CompileError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, CompileError> {
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            self.advance();
            Ok(name)
        } else {
            Err(self.error(what))
        }
    }

    fn number(&mut self, what: &'static str) -> Result<u16, CompileError> {
        if let TokenKind::Number(value) = self.peek() {
            let value = *value;
            self.advance();
            Ok(value)
        } else {
            Err(self.error(what))
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Var => program.globals.push(self.global()?),
                TokenKind::Func => program.funcs.push(self.func()?),
                _ => return Err(self.error("`var` or `func` at top level")),
            }
        }
        Ok(program)
    }

    fn global(&mut self) -> Result<Global, CompileError> {
        let line = self.line();
        self.expect(TokenKind::Var, "`var`")?;
        let name = self.ident("a variable name")?;
        let (size, is_array) = if self.eat(&TokenKind::LBracket) {
            let size = self.number("an array size")?;
            self.expect(TokenKind::RBracket, "`]`")?;
            (size.max(1), true)
        } else {
            (1, false)
        };
        let init = if self.eat(&TokenKind::Assign) {
            if is_array {
                return Err(self.error("`;` (array initializers are not supported)"));
            }
            self.number("a constant initializer")?
        } else {
            0
        };
        self.expect(TokenKind::Semicolon, "`;`")?;
        Ok(Global {
            name,
            size,
            init,
            is_array,
            line,
        })
    }

    fn func(&mut self) -> Result<Func, CompileError> {
        let line = self.line();
        self.expect(TokenKind::Func, "`func`")?;
        let name = self.ident("a function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.ident("a parameter name")?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma, "`,` or `)`")?;
            }
        }
        let body = self.block()?;
        Ok(Func {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Var => {
                self.advance();
                let name = self.ident("a variable name")?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semicolon, "`;`")?;
                Ok(Stmt::Local { name, init, line })
            }
            TokenKind::If => {
                self.advance();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if *self.peek() == TokenKind::If {
                        vec![self.stmt()?] // else-if chains
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::While => {
                self.advance();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Return => {
                self.advance();
                let value = if *self.peek() == TokenKind::Semicolon {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semicolon, "`;`")?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Ident(name) => {
                // printf/poke statements, assignment, or a call statement.
                match name.as_str() {
                    "printf" if self.tokens[self.pos + 1].kind == TokenKind::LParen => {
                        self.advance();
                        self.advance();
                        let value = self.expr()?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        return Ok(Stmt::Printf(value));
                    }
                    "poke" if self.tokens[self.pos + 1].kind == TokenKind::LParen => {
                        self.advance();
                        self.advance();
                        let addr = self.expr()?;
                        self.expect(TokenKind::Comma, "`,`")?;
                        let value = self.expr()?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        return Ok(Stmt::Poke { addr, value });
                    }
                    // wait(n) / notify(n): sugar for stores to the
                    // memory-mapped synchronization command addresses
                    // (0xFFFE / 0xFFFD in the MultiNoC address map).
                    "wait" if self.tokens[self.pos + 1].kind == TokenKind::LParen => {
                        self.advance();
                        self.advance();
                        let peer = self.expr()?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        return Ok(Stmt::Poke {
                            addr: Expr::Number(0xFFFE),
                            value: peer,
                        });
                    }
                    "notify" if self.tokens[self.pos + 1].kind == TokenKind::LParen => {
                        self.advance();
                        self.advance();
                        let peer = self.expr()?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        return Ok(Stmt::Poke {
                            addr: Expr::Number(0xFFFD),
                            value: peer,
                        });
                    }
                    _ => {}
                }
                match &self.tokens[self.pos + 1].kind {
                    TokenKind::Assign => {
                        self.advance();
                        self.advance();
                        let value = self.expr()?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        Ok(Stmt::Assign { name, value, line })
                    }
                    TokenKind::LBracket => {
                        // Could be `a[i] = e;` — parse the index, then
                        // decide between assignment and expression.
                        let save = self.pos;
                        self.advance();
                        self.advance();
                        let index = self.expr()?;
                        self.expect(TokenKind::RBracket, "`]`")?;
                        if self.eat(&TokenKind::Assign) {
                            let value = self.expr()?;
                            self.expect(TokenKind::Semicolon, "`;`")?;
                            Ok(Stmt::AssignIndex {
                                name,
                                index,
                                value,
                                line,
                            })
                        } else {
                            // An expression statement starting with an
                            // index read; re-parse as a full expression.
                            self.pos = save;
                            let expr = self.expr()?;
                            self.expect(TokenKind::Semicolon, "`;`")?;
                            Ok(Stmt::Expr(expr))
                        }
                    }
                    _ => {
                        let expr = self.expr()?;
                        self.expect(TokenKind::Semicolon, "`;`")?;
                        Ok(Stmt::Expr(expr))
                    }
                }
            }
            TokenKind::LBrace => {
                // A bare block: flatten into an if(1) for simplicity.
                let body = self.block()?;
                Ok(Stmt::If {
                    cond: Expr::Number(1),
                    then_body: body,
                    else_body: Vec::new(),
                })
            }
            _ => Err(self.error("a statement")),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logic_or()
    }

    fn binary_level<F>(
        &mut self,
        next: F,
        table: &[(TokenKind, BinOp)],
    ) -> Result<Expr, CompileError>
    where
        F: Fn(&mut Self) -> Result<Expr, CompileError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (kind, op) in table {
                if self.peek() == kind {
                    self.advance();
                    let rhs = next(self)?;
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::logic_and, &[(TokenKind::OrOr, BinOp::LogicOr)])
    }

    fn logic_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_or, &[(TokenKind::AndAnd, BinOp::LogicAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_xor, &[(TokenKind::Pipe, BinOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::bit_and, &[(TokenKind::Caret, BinOp::Xor)])
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(Self::equality, &[(TokenKind::Amp, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::relational,
            &[(TokenKind::Eq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::shift,
            &[
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Gt, BinOp::Gt),
                (TokenKind::Ge, BinOp::Ge),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::additive,
            &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::multiplicative,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            TokenKind::Number(value) => {
                self.advance();
                Ok(Expr::Number(value))
            }
            TokenKind::LParen => {
                self.advance();
                let expr = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(expr)
            }
            TokenKind::Ident(name) => {
                self.advance();
                match name.as_str() {
                    "scanf" if self.eat(&TokenKind::LParen) => {
                        self.expect(TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Scanf);
                    }
                    "peek" if self.eat(&TokenKind::LParen) => {
                        let addr = self.expr()?;
                        self.expect(TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Peek(Box::new(addr)));
                    }
                    _ => {}
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma, "`,` or `)`")?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket, "`]`")?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.error("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_functions() {
        let p = parse_src("var a = 3;\nvar buf[8];\nfunc main() { a = 4; }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].name, "a");
        assert_eq!(p.globals[0].init, 3);
        assert!(p.globals[1].is_array);
        assert_eq!(p.globals[1].size, 8);
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse_src("func main() { var x = 1 + 2 * 3 == 7; }");
        let Stmt::Local { init: Some(e), .. } = &p.funcs[0].body[0] else {
            panic!("expected local");
        };
        // ((1 + (2 * 3)) == 7)
        let Expr::Binary {
            op: BinOp::Eq, lhs, ..
        } = e
        else {
            panic!("expected ==, got {e:?}");
        };
        assert!(matches!(**lhs, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn else_if_chains() {
        let p = parse_src("func main() { if (1) { } else if (2) { } else { } }");
        let Stmt::If { else_body, .. } = &p.funcs[0].body[0] else {
            panic!();
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn intrinsics() {
        let p = parse_src("func main() { printf(scanf() + peek(0xFFFD)); poke(1, 2); }");
        assert!(matches!(p.funcs[0].body[0], Stmt::Printf(_)));
        assert!(matches!(p.funcs[0].body[1], Stmt::Poke { .. }));
    }

    #[test]
    fn wait_notify_sugar() {
        let p = parse_src("func main() { wait(2); notify(1 + 1); }");
        let Stmt::Poke {
            addr: Expr::Number(0xFFFE),
            ..
        } = &p.funcs[0].body[0]
        else {
            panic!("wait should target 0xFFFE: {:?}", p.funcs[0].body[0]);
        };
        let Stmt::Poke {
            addr: Expr::Number(0xFFFD),
            value,
        } = &p.funcs[0].body[1]
        else {
            panic!("notify should target 0xFFFD");
        };
        assert!(matches!(value, Expr::Binary { .. }));
    }

    #[test]
    fn wait_notify_remain_usable_as_plain_names() {
        // Without parentheses they are ordinary identifiers.
        let p = parse_src("var wait = 3;\nfunc main() { wait = wait + 1; }");
        assert_eq!(p.globals[0].name, "wait");
    }

    #[test]
    fn array_assignment_vs_read() {
        let p = parse_src("func main() { buf[1] = 2; f(buf[1]); }");
        assert!(matches!(p.funcs[0].body[0], Stmt::AssignIndex { .. }));
        assert!(matches!(p.funcs[0].body[1], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let e = parse(&lex("func main() {\n  var = 3;\n}").unwrap()).unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse(&lex("func main() { if 1 { } }").unwrap()).unwrap_err();
        assert!(matches!(e.kind, ErrorKind::Syntax { .. }));
    }

    #[test]
    fn unterminated_block_is_an_error() {
        assert!(parse(&lex("func main() { var a = 1;").unwrap()).is_err());
    }
}

//! Constant folding and algebraic simplification.
//!
//! A small AST-to-AST pass run before code generation (at
//! [`OptLevel::Basic`](crate::OptLevel)): evaluates constant
//! subexpressions with the exact 16-bit semantics of the target, and
//! applies the safe algebraic identities (`x+0`, `x*1`, `x*0`, `x&0`,
//! `x|0`, `x^0`, shifts by 0). Short-circuit operands fold only when
//! that cannot change observable behaviour (the discarded side must be
//! effect-free).

use crate::ast::{BinOp, Expr, Func, Program, Stmt, UnOp};

/// Folds a whole program.
pub fn fold_program(program: &Program) -> Program {
    Program {
        globals: program.globals.clone(),
        funcs: program.funcs.iter().map(fold_func).collect(),
    }
}

fn fold_func(f: &Func) -> Func {
    Func {
        name: f.name.clone(),
        params: f.params.clone(),
        body: f.body.iter().map(fold_stmt).collect(),
        line: f.line,
    }
}

fn fold_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Local { name, init, line } => Stmt::Local {
            name: name.clone(),
            init: init.as_ref().map(fold_expr),
            line: *line,
        },
        Stmt::Assign { name, value, line } => Stmt::Assign {
            name: name.clone(),
            value: fold_expr(value),
            line: *line,
        },
        Stmt::AssignIndex {
            name,
            index,
            value,
            line,
        } => Stmt::AssignIndex {
            name: name.clone(),
            index: fold_expr(index),
            value: fold_expr(value),
            line: *line,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let cond = fold_expr(cond);
            // A constant condition selects one branch at compile time.
            if let Expr::Number(n) = cond {
                let body: Vec<Stmt> = if n != 0 {
                    then_body.iter().map(fold_stmt).collect()
                } else {
                    else_body.iter().map(fold_stmt).collect()
                };
                return Stmt::If {
                    cond: Expr::Number(1),
                    then_body: body,
                    else_body: Vec::new(),
                };
            }
            Stmt::If {
                cond,
                then_body: then_body.iter().map(fold_stmt).collect(),
                else_body: else_body.iter().map(fold_stmt).collect(),
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: fold_expr(cond),
            body: body.iter().map(fold_stmt).collect(),
        },
        Stmt::Return(value) => Stmt::Return(value.as_ref().map(fold_expr)),
        Stmt::Printf(value) => Stmt::Printf(fold_expr(value)),
        Stmt::Poke { addr, value } => Stmt::Poke {
            addr: fold_expr(addr),
            value: fold_expr(value),
        },
        Stmt::Expr(expr) => Stmt::Expr(fold_expr(expr)),
    }
}

/// Whether evaluating the expression can have side effects (calls, I/O,
/// raw memory reads).
fn has_effects(expr: &Expr) -> bool {
    match expr {
        Expr::Number(_) | Expr::Var(_) => false,
        Expr::Index { index, .. } => has_effects(index),
        Expr::Binary { lhs, rhs, .. } => has_effects(lhs) || has_effects(rhs),
        Expr::Unary { expr, .. } => has_effects(expr),
        Expr::Call { .. } | Expr::Scanf | Expr::Peek(_) => true,
    }
}

/// Exact 16-bit evaluation of a binary operator, mirroring the code
/// generator's semantics (including `DIV` by zero → `0xFFFF`).
pub fn eval_bin(op: BinOp, a: u16, b: u16) -> u16 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0xFFFF),
        BinOp::Rem => {
            // a - (a / b) * b with the DIV-by-zero rule above.
            let q = a.checked_div(b).unwrap_or(0xFFFF);
            a.wrapping_sub(q.wrapping_mul(b))
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 16 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 16 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Eq => u16::from(a == b),
        BinOp::Ne => u16::from(a != b),
        BinOp::Lt => u16::from(a < b),
        BinOp::Le => u16::from(a <= b),
        BinOp::Gt => u16::from(a > b),
        BinOp::Ge => u16::from(a >= b),
        BinOp::LogicAnd => u16::from(a != 0 && b != 0),
        BinOp::LogicOr => u16::from(a != 0 || b != 0),
    }
}

/// Exact 16-bit evaluation of a unary operator.
pub fn eval_un(op: UnOp, a: u16) -> u16 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => u16::from(a == 0),
        UnOp::BitNot => !a,
    }
}

fn fold_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Number(_) | Expr::Var(_) | Expr::Scanf => expr.clone(),
        Expr::Index { name, index } => Expr::Index {
            name: name.clone(),
            index: Box::new(fold_expr(index)),
        },
        Expr::Peek(addr) => Expr::Peek(Box::new(fold_expr(addr))),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(fold_expr).collect(),
        },
        Expr::Unary { op, expr } => {
            let inner = fold_expr(expr);
            if let Expr::Number(a) = inner {
                return Expr::Number(eval_un(*op, a));
            }
            Expr::Unary {
                op: *op,
                expr: Box::new(inner),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold_expr(lhs);
            let rhs = fold_expr(rhs);
            if let (Expr::Number(a), Expr::Number(b)) = (&lhs, &rhs) {
                return Expr::Number(eval_bin(*op, *a, *b));
            }
            // Short-circuit with a constant lhs.
            match (op, &lhs) {
                (BinOp::LogicAnd, Expr::Number(0)) => return Expr::Number(0),
                (BinOp::LogicOr, Expr::Number(n)) if *n != 0 => return Expr::Number(1),
                _ => {}
            }
            // Algebraic identities with an effect-free discarded side.
            let keep = |e: &Expr| e.clone();
            match (op, &lhs, &rhs) {
                (BinOp::Add, e, Expr::Number(0)) | (BinOp::Add, Expr::Number(0), e) => {
                    return keep(e)
                }
                (BinOp::Sub, e, Expr::Number(0)) => return keep(e),
                (BinOp::Mul, e, Expr::Number(1)) | (BinOp::Mul, Expr::Number(1), e) => {
                    return keep(e)
                }
                (BinOp::Mul, e, Expr::Number(0)) | (BinOp::Mul, Expr::Number(0), e)
                    if !has_effects(e) =>
                {
                    return Expr::Number(0)
                }
                (BinOp::Div, e, Expr::Number(1)) => return keep(e),
                (BinOp::And, e, Expr::Number(0)) | (BinOp::And, Expr::Number(0), e)
                    if !has_effects(e) =>
                {
                    return Expr::Number(0)
                }
                (BinOp::Or, e, Expr::Number(0)) | (BinOp::Or, Expr::Number(0), e) => {
                    return keep(e)
                }
                (BinOp::Xor, e, Expr::Number(0)) | (BinOp::Xor, Expr::Number(0), e) => {
                    return keep(e)
                }
                (BinOp::Shl, e, Expr::Number(0)) | (BinOp::Shr, e, Expr::Number(0)) => {
                    return keep(e)
                }
                _ => {}
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_one(expr: Expr) -> Expr {
        fold_expr(&expr)
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    #[test]
    fn constants_fold_exactly() {
        assert_eq!(
            fold_one(bin(BinOp::Add, Expr::Number(0xFFFF), Expr::Number(2))),
            Expr::Number(1)
        );
        assert_eq!(
            fold_one(bin(BinOp::Div, Expr::Number(5), Expr::Number(0))),
            Expr::Number(0xFFFF)
        );
        assert_eq!(
            fold_one(bin(BinOp::Shl, Expr::Number(1), Expr::Number(20))),
            Expr::Number(0)
        );
        assert_eq!(
            fold_one(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(Expr::Number(1))
            }),
            Expr::Number(0xFFFF)
        );
    }

    #[test]
    fn identities_preserve_variables() {
        let x = Expr::Var("x".into());
        assert_eq!(fold_one(bin(BinOp::Add, x.clone(), Expr::Number(0))), x);
        assert_eq!(fold_one(bin(BinOp::Mul, Expr::Number(1), x.clone())), x);
        assert_eq!(
            fold_one(bin(BinOp::Mul, x.clone(), Expr::Number(0))),
            Expr::Number(0)
        );
        assert_eq!(fold_one(bin(BinOp::Xor, Expr::Number(0), x.clone())), x);
    }

    #[test]
    fn effects_are_never_discarded() {
        // scanf() * 0 must keep the scanf.
        let folded = fold_one(bin(BinOp::Mul, Expr::Scanf, Expr::Number(0)));
        assert!(matches!(folded, Expr::Binary { .. }));
        // 0 && f() must fold (short-circuit wouldn't evaluate f anyway).
        let call = Expr::Call {
            name: "f".into(),
            args: vec![],
        };
        assert_eq!(
            fold_one(bin(BinOp::LogicAnd, Expr::Number(0), call.clone())),
            Expr::Number(0)
        );
        // f() && 0 must keep the call.
        let folded = fold_one(bin(BinOp::LogicAnd, call, Expr::Number(0)));
        assert!(matches!(folded, Expr::Binary { .. }));
    }

    #[test]
    fn nested_folding_cascades() {
        // (2 + 3) * (10 - 6) = 20
        let e = bin(
            BinOp::Mul,
            bin(BinOp::Add, Expr::Number(2), Expr::Number(3)),
            bin(BinOp::Sub, Expr::Number(10), Expr::Number(6)),
        );
        assert_eq!(fold_one(e), Expr::Number(20));
    }

    #[test]
    fn constant_if_selects_a_branch() {
        let stmt = Stmt::If {
            cond: bin(BinOp::Lt, Expr::Number(1), Expr::Number(2)),
            then_body: vec![Stmt::Return(Some(Expr::Number(1)))],
            else_body: vec![Stmt::Return(Some(Expr::Number(2)))],
        };
        let folded = fold_stmt(&stmt);
        let Stmt::If {
            cond: Expr::Number(1),
            then_body,
            else_body,
        } = folded
        else {
            panic!("expected selected branch");
        };
        assert_eq!(then_body.len(), 1);
        assert!(else_body.is_empty());
    }
}

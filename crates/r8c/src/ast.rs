//! Abstract syntax tree.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unsigned; division by zero yields `0xFFFF` like the R8 `DIV`)
    Div,
    /// `%` (computed as `a - (a / b) * b`)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (shift count taken modulo 16 at runtime)
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogicAnd,
    /// `||` (short-circuit)
    LogicOr,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation (two's complement).
    Neg,
    /// Logical not: 0 → 1, nonzero → 0.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Number(u16),
    /// A scalar variable read.
    Var(String),
    /// An array element read.
    Index {
        /// Array name.
        name: String,
        /// Element index.
        index: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// The `scanf()` intrinsic: one word of host input.
    Scanf,
    /// The `peek(addr)` intrinsic: raw memory/bus read.
    Peek(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var name = init;` — a local with static storage.
    Local {
        /// Variable name.
        name: String,
        /// Initializer (defaults to 0).
        init: Option<Expr>,
        /// Source line, for error messages.
        line: usize,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `name[index] = expr;`
    AssignIndex {
        /// Array name.
        name: String,
        /// Element index.
        index: Expr,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `printf(expr);` — one word to the host monitor.
    Printf(Expr),
    /// `poke(addr, value);` — raw memory/bus write.
    Poke {
        /// Target address.
        addr: Expr,
        /// Value to store.
        value: Expr,
    },
    /// An expression evaluated for its side effects (a call).
    Expr(Expr),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element count (`1` for scalars).
    pub size: u16,
    /// Initial value of element 0 (scalars only).
    pub init: u16,
    /// Whether declared with `[n]`.
    pub is_array: bool,
    /// Source line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Functions, in declaration order.
    pub funcs: Vec<Func>,
}

//! Small deterministic pseudo-random generators.
//!
//! The workspace must build and test with **no network access**, so it
//! cannot depend on the `rand` crate. This crate provides the two tiny
//! generators everything else shares:
//!
//! - [`Rng64`] — SplitMix64, the workhorse: traffic generation, the
//!   simulated-annealing floorplanner, the property-test runner and the
//!   NoC fault injector all draw from it. Runs are fully reproducible
//!   from the seed.
//! - [`Xorshift64`] — xorshift64*, kept as an independent second stream
//!   for consumers that want decorrelated randomness from the same seed.
//! - [`CounterRng`] — a counter-based (stateless) stream family: every
//!   draw is a pure hash of `(seed, stream, counter)`. Consumers that
//!   must produce the same random decision regardless of *evaluation
//!   order* — the NoC fault injector keying draws by link id and cycle,
//!   so sequential and multi-threaded simulation kernels agree bit for
//!   bit — use this instead of a sequential generator.
//!
//! All are plain value types: cloning snapshots the stream.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// SplitMix64: fast, 64 bits of state, passes BigCrush. The constants
/// are from Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` in `0..bound` (`bound > 0`).
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Derives an independent generator for substream `stream`, without
    /// disturbing this generator's sequence. Used to give each
    /// fault-injection site its own reproducible stream.
    pub fn fork(&self, stream: u64) -> Self {
        let mut mixer = Self::new(self.state ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Self::new(mixer.next_u64())
    }
}

/// xorshift64*: Marsaglia's xorshift with a multiplicative finalizer.
/// State must be non-zero; a zero seed is remapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed (`0` is remapped to a fixed
    /// non-zero constant, since xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixing function (every input
/// bit affects every output bit). Building block of [`CounterRng`].
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based splittable random stream family.
///
/// Unlike [`Rng64`], a `CounterRng` holds no mutable cursor: the value of
/// a draw is a pure function `hash(seed, stream, counter)`. Two callers
/// evaluating the same `(stream, counter)` pair get the same value no
/// matter how many other draws happened before, in what order, or on
/// which thread. That makes it the right generator whenever the *set* of
/// random decisions must be schedule-independent — e.g. per-link fault
/// decisions keyed by `(link id, cycle)` that must not shift when an
/// optimized kernel visits fewer routers or several threads visit them
/// concurrently.
///
/// The construction is a Philox-style keyed SplitMix64 finalizer chain:
/// `mix(mix(seed-key + stream·φ) + counter·φ′)` with the golden-ratio
/// increments from Steele, Lea & Flood (OOPSLA 2014). Each fixed stream,
/// viewed as a function of the counter, is exactly a SplitMix64-class
/// sequence, so statistical quality matches [`Rng64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Creates the stream family for `seed`.
    pub fn new(seed: u64) -> Self {
        Self { key: mix64(seed) }
    }

    /// The mixed key identifying this stream family. Two `CounterRng`s
    /// with equal keys produce identical draws forever, so a checkpoint
    /// that records the *seed* used to build one fully captures its
    /// state — there is no cursor to save. Exposed so restore paths can
    /// assert stream identity after rebuilding a generator.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The raw 64-bit value of draw `counter` on substream `stream`.
    #[inline]
    pub fn draw(&self, stream: u64, counter: u64) -> u64 {
        let s = mix64(
            self.key
                .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        mix64(s.wrapping_add(counter.wrapping_mul(0xD1B5_4A32_D192_ED03)))
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&self, stream: u64, counter: u64, bound: u64) -> u64 {
        self.draw(stream, counter) % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&self, stream: u64, counter: u64) -> f64 {
        (self.draw(stream, counter) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&self, stream: u64, counter: u64, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit(stream, counter) < p
        }
    }
}

/// Stable 64-bit FNV-1a hash of a byte string; used to derive seeds from
/// test or experiment names so each gets its own reproducible stream.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 (SplitMix64).
        let mut rng = Rng64::new(1234567);
        let first = rng.next_u64();
        let mut again = Rng64::new(1234567);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn unit_stays_in_range() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng64::new(9);
        for bound in [1u64, 2, 3, 17, 255, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = Rng64::new(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = rng.range_u64(10, 13);
            assert!((10..=13).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Degenerate and full ranges must not panic.
        assert_eq!(rng.range_u64(5, 5), 5);
        let _ = rng.range_u64(0, u64::MAX);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = Rng64::new(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fork_is_decorrelated_and_stable() {
        let rng = Rng64::new(100);
        let mut a = rng.fork(1);
        let mut b = rng.fork(2);
        let mut a2 = rng.fork(1);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero_seeded() {
        let mut a = Xorshift64::new(0);
        let mut b = Xorshift64::new(0);
        for _ in 0..100 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
        }
        let mut c = Xorshift64::new(77);
        let u = c.unit();
        assert!((0.0..1.0).contains(&u));
        assert!(c.below(10) < 10);
    }

    #[test]
    fn counter_rng_is_order_independent() {
        let rng = CounterRng::new(42);
        // Evaluate a grid of (stream, counter) pairs forwards...
        let forward: Vec<u64> = (0..8u64)
            .flat_map(|s| (0..64u64).map(move |c| (s, c)))
            .map(|(s, c)| rng.draw(s, c))
            .collect();
        // ...and the same pairs backwards, interleaved with unrelated
        // draws: every value must be identical.
        let mut backward = Vec::new();
        for s in (0..8u64).rev() {
            let _ = rng.draw(999, s); // unrelated draw must not disturb anything
            for c in (0..64u64).rev() {
                backward.push(rng.draw(s, c));
            }
        }
        backward.reverse();
        assert_eq!(forward, backward);
        // Spot-check a few against direct evaluation.
        assert_eq!(rng.draw(3, 17), forward[3 * 64 + 17]);
        assert_eq!(rng.draw(0, 0), forward[0]);
    }

    #[test]
    fn counter_rng_streams_and_counters_decorrelate() {
        let rng = CounterRng::new(7);
        // Neighbouring streams and counters should not collide.
        let mut seen = std::collections::HashSet::new();
        for s in 0..32u64 {
            for c in 0..32u64 {
                assert!(seen.insert(rng.draw(s, c)), "collision at ({s}, {c})");
            }
        }
        // Different seeds give different families.
        assert_ne!(CounterRng::new(1).draw(0, 0), CounterRng::new(2).draw(0, 0));
    }

    #[test]
    fn counter_rng_chance_matches_probability_roughly() {
        let rng = CounterRng::new(5);
        let hits = (0..100_000u64).filter(|&c| rng.chance(0, c, 0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.chance(1, 1, 0.0));
        assert!(rng.chance(1, 1, 1.0));
        for c in 0..1000 {
            let u = rng.unit(2, c);
            assert!((0.0..1.0).contains(&u));
            assert!(rng.below(3, c, 10) < 10);
        }
    }

    #[test]
    fn counter_rng_key_identifies_the_stream_family() {
        let a = CounterRng::new(42);
        let b = CounterRng::new(42);
        assert_eq!(a.key(), b.key());
        for c in 0..64 {
            assert_eq!(a.draw(0, c), b.draw(0, c));
        }
        assert_ne!(a.key(), CounterRng::new(43).key());
    }

    #[test]
    fn hash_str_is_stable_and_spreads() {
        assert_eq!(hash_str("abc"), hash_str("abc"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
        assert_ne!(hash_str(""), hash_str("a"));
    }
}

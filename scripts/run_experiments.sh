#!/usr/bin/env bash
# Regenerates every evaluation artifact of the paper (DESIGN.md, E1-E21).
# Usage: scripts/run_experiments.sh [output-directory]
set -euo pipefail

out="${1:-experiment-results}"
mkdir -p "$out"
cd "$(dirname "$0")/.."

experiments=(
    exp_latency
    exp_throughput
    exp_area
    exp_scaling
    exp_flow
    exp_edge_detection
    exp_cpi
    exp_buffer_sweep
    exp_arbitration
    exp_serial
    exp_load_sweep
    exp_compiler
    exp_services
    exp_sea_of_processors
    exp_reconfig
    exp_utilization
    exp_routing
    exp_fault_sweep
    exp_degradation
    exp_perf
    exp_observability
    exp_chaos
    exp_recovery
)

cargo build --release -p multinoc-bench --bins

for exp in "${experiments[@]}"; do
    echo "=== $exp ==="
    cargo run --release -q -p multinoc-bench --bin "$exp" | tee "$out/$exp.txt"
    echo
done

echo "all experiments written to $out/"

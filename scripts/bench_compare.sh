#!/usr/bin/env bash
# Warn-only benchmark-regression triage: regenerated BENCH_*.json files
# in the working tree are diffed against the baselines committed at HEAD
# and the numeric deltas printed as a table. Never fails the build —
# benchmark rates are wall-clock observations of the host, so a delta is
# a prompt for a human, not a gate. Determinism is asserted inside the
# experiments themselves.
# Usage: scripts/bench_compare.sh [BENCH_file.json ...]
#        (defaults to every BENCH_*.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(BENCH_*.json)
fi

cargo build --release -q --offline -p multinoc-bench --bin bench_compare

baseline_dir="$(mktemp -d)"
trap 'rm -rf "$baseline_dir"' EXIT

pairs=()
for f in "${files[@]}"; do
  name="$(basename "$f")"
  if git show "HEAD:$name" > "$baseline_dir/$name" 2>/dev/null; then
    pairs+=("$baseline_dir/$name" "$f")
  else
    echo "== $name: no committed baseline at HEAD, skipped"
  fi
done

if [ ${#pairs[@]} -eq 0 ]; then
  echo "nothing to compare"
  exit 0
fi

./target/release/bench_compare "${pairs[@]}"

#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints and the whole test suite.
# Everything runs offline — the workspace has no network dependencies.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "=== cargo test ==="
cargo test -q --offline --workspace

echo "=== fault-injection smoke checks (fixed seed) ==="
cargo run --release -q --offline -p multinoc-bench --bin exp_fault_sweep > /dev/null
cargo run --release -q --offline -p multinoc-bench --bin exp_degradation > /dev/null
echo "exp_fault_sweep and exp_degradation deterministic and green"

echo "all checks passed"

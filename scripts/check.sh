#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints and the whole test suite.
# Everything runs offline — the workspace has no network dependencies.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "=== cargo doc (deny warnings) ==="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "=== cargo test ==="
# Includes the differential kernel suites: hermes/tests/kernel_equivalence.rs
# (reference full scan vs active set vs parallel shards at 1/2/8 threads,
# cycle-identical, plus the batch-window sweep — every window size in
# {1,2,5,16} × every thread count bit-identical on healthy, faulted,
# degraded and router-killed schedules, with checkpoint/restore at
# arbitrary run split points), multinoc/tests/kernel_invariance.rs
# (thread-count and batch-window invariance at system level) and
# multinoc/tests/fast_forward_equivalence.rs (idle fast-forward vs
# single-stepping).
cargo test -q --offline --workspace

echo "=== fault-injection smoke checks (fixed seed) ==="
cargo run --release -q --offline -p multinoc-bench --bin exp_fault_sweep > /dev/null
cargo run --release -q --offline -p multinoc-bench --bin exp_degradation > /dev/null
echo "exp_fault_sweep and exp_degradation deterministic and green"

echo "=== kernel-performance smoke check (differential, fixed seed) ==="
# Sweeps the parallel kernel over powers-of-two thread counts clamped to
# the host's parallelism (plus one flagged oversubscribed point) and
# asserts bit-identical simulated outcomes before any rate is recorded.
# On hosts with at least 2 CPUs it additionally asserts the saturated
# 32x32 batched-window run at threads=2 is not slower than threads=1
# (EXP_PERF_NO_SPEEDUP_CHECK=1 disables that gate on pathological hosts).
EXP_PERF_SMOKE=1 cargo run --release -q --offline -p multinoc-bench --bin exp_perf > /dev/null
echo "exp_perf kernels (sequential and parallel) agree on all workloads"

echo "=== observability smoke check (byte-identical exports, fixed seed) ==="
# Exports (Perfetto trace with span flow arrows, Prometheus exposition,
# metrics JSON, the E25 time-series JSON/Prometheus pair and the run
# report) must be byte-identical across kernels and batch windows and
# pass the trace-event and time-series schema validators.
EXP_OBS_SMOKE=1 cargo run --release -q --offline -p multinoc-bench --bin exp_observability > /dev/null
echo "exp_observability exports identical across kernels and schema-valid"

echo "=== benchmark baseline comparison (warn-only) ==="
# Diffs regenerated BENCH_*.json files against the baselines committed
# at HEAD; informational only — wall-clock rates vary by host.
scripts/bench_compare.sh

echo "=== topology smoke check (mesh vs torus vs chiplet, fixed seed) ==="
# Matched-router-count sweep across the three topologies, serialized vs
# parallel off-chip d2d channel separation, and a 1024-router chiplet
# system on which the sequential and 8-thread parallel kernels must
# agree on every counter.
EXP_TOPOLOGY_SMOKE=1 cargo run --release -q --offline -p multinoc-bench --bin exp_topology > /dev/null
echo "exp_topology deterministic, d2d channels separated, 1024 routers green"

echo "=== chaos smoke check (node death + failover, fixed seed) ==="
# Randomized (but seeded) router/IP-core deaths against replicated
# memory: pre-death writes must survive, post-failover writes must land
# exactly once, and every kernel must produce the identical run.
EXP_CHAOS_SMOKE=1 cargo run --release -q --offline -p multinoc-bench --bin exp_chaos > /dev/null
echo "exp_chaos survived every node death with exactly-once semantics"

echo "=== crash-recovery smoke check (checkpoint, hard kill, fresh-process restore) ==="
# A faulted + degraded run is checkpointed mid-flight, the process image
# discarded, and a fresh process must resume bit-identically to the run
# that was never interrupted — including cross-kernel restores.
EXP_RECOVERY_SMOKE=1 cargo run --release -q --offline -p multinoc-bench --bin exp_recovery > /dev/null
echo "exp_recovery resumed bit-identically from a hard kill"

echo "all checks passed"
